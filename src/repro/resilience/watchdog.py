"""The control-plane watchdog: detect dead shards, drive recovery.

Failure detection is *pull*: every control server stamps a heartbeat word
on its shard board once per scan (a free shared-memory write), and the
watchdog -- an ordinary seeded calendar actor, exactly like the fault
injectors -- samples those words every ``check_period``.  A shard whose
word has not advanced within ``deadline`` (or whose board carries a crash
epoch, the simulated SIGCHLD) is declared **suspect**, and recovery
escalates deterministically:

1. **restart with exponential backoff** -- up to ``max_restarts``
   attempts, spaced ``restart_backoff * backoff_factor**attempt`` apart;
   a shard that then stays healthy for ``reset_after`` earns its retry
   budget back.  A *wedged* server (process alive, heartbeat stale) is
   killed first, then respawned.
2. **failover** -- once the budget is exhausted the shard is written off:
   :meth:`~repro.core.plane.ControlPlane.fail_over` removes it from the
   active set, so the survivors absorb its processor region and its
   applications are re-routed to live shards (the idle-region case of
   ROADMAP's cross-shard work stealing).
3. **degraded mode** -- when no shard survives, the watchdog emits one
   terminal ``watchdog.degraded`` record and stands down; the threads
   package's stale-target TTL then releases every orphaned application
   to full parallelism, which is the best the machine can do without a
   control plane.

Optionally (``policy_cold_ttl``) the watchdog also guards the *demand*
feedback loop: a shard running a demand-aware policy whose newest backlog
report has gone cold is hot-swapped to equipartition via
:meth:`~repro.core.server.ProcessControlServer.set_policy`, and swapped
back once telemetry warms up -- allocation should never follow telemetry
that nobody is producing.

Everything the watchdog does is a pure function of (scenario, seed,
fault plan): its randomness is one phase-offset draw from its own named
stream, and its actions are calendar events, so supervised runs replay
bit-identically.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Optional, Tuple, Union

from repro.core.allocation import AllocationPolicy, EquipartitionPolicy
from repro.sim.rand import RandomStreams

#: Environment knob consulted by ``run_scenario`` when the scenario leaves
#: ``supervise`` unset (the experiments CLI sets it from ``--supervise``).
SUPERVISE_ENV_VAR = "REPRO_SUPERVISE"


@dataclass
class WatchdogConfig:
    """Supervision timings, all in microseconds (``None`` = derived).

    Attributes:
        check_period: how often the watchdog samples the heartbeat words;
            defaults to half the server scan interval.
        deadline: heartbeat age past which a shard is suspect; defaults
            to ``deadline_factor`` scan intervals *plus* two scheduling
            quanta of dispatch slack.  A scan may legitimately land late
            under load -- a woken server waits behind CPU-bound workers
            for up to a full time slice per processor, so on a paper-era
            100ms-quantum machine an interval-only deadline would restart
            perfectly healthy servers.  (Crash detection does not wait
            for the deadline: a board crash epoch is suspect on the very
            next check.)
        deadline_factor: multiplier for the derived deadline.
        restart_backoff: base delay between restart attempts; defaults to
            ``check_period``.
        backoff_factor: exponential growth of the restart delay.
        max_restarts: restart attempts per shard before failover.
        reset_after: healthy time after which a shard's attempt counter
            resets; defaults to ``4 * deadline``.
        policy_cold_ttl: when set, a shard running a demand-aware policy
            whose newest backlog report is older than this is swapped to
            equipartition until telemetry warms up again.
    """

    check_period: Optional[int] = None
    deadline: Optional[int] = None
    deadline_factor: int = 3
    restart_backoff: Optional[int] = None
    backoff_factor: int = 2
    max_restarts: int = 3
    reset_after: Optional[int] = None
    policy_cold_ttl: Optional[int] = None

    def resolve(self, interval: int, slack: int = 0) -> "WatchdogConfig":
        """A fully-concrete copy, derived from the server scan interval.

        *slack* is the machine's worst-case dispatch delay (the watchdog
        passes two scheduling quanta); it widens only the *derived*
        deadline -- an explicit ``deadline`` is taken at face value.
        """
        check = self.check_period
        if check is None:
            check = max(1, interval // 2)
        deadline = self.deadline
        if deadline is None:
            deadline = self.deadline_factor * interval + max(0, slack)
        backoff = self.restart_backoff
        if backoff is None:
            backoff = check
        reset_after = self.reset_after
        if reset_after is None:
            reset_after = 4 * deadline
        if check <= 0 or deadline <= 0 or backoff <= 0 or reset_after <= 0:
            raise ValueError("watchdog timings must be positive")
        if self.max_restarts < 0:
            raise ValueError("max_restarts must be >= 0")
        return WatchdogConfig(
            check_period=check,
            deadline=deadline,
            deadline_factor=self.deadline_factor,
            restart_backoff=backoff,
            backoff_factor=self.backoff_factor,
            max_restarts=self.max_restarts,
            reset_after=reset_after,
            policy_cold_ttl=self.policy_cold_ttl,
        )


@dataclass
class _ShardHealth:
    """The watchdog's private view of one shard."""

    state: str = "healthy"  # healthy | suspect | restarting | failed
    #: Grace anchor for a shard that has never beaten (startup, or just
    #: restarted): its deadline ages from here, not from epoch 0.
    watch_since: int = 0
    suspected_at: Optional[int] = None
    restarts_attempted: int = 0
    last_restart_at: Optional[int] = None
    next_restart_at: Optional[int] = None
    #: The policy displaced by a cold-telemetry swap (restored on warmth).
    saved_policy: Optional[AllocationPolicy] = None


class Watchdog:
    """Supervise a :class:`~repro.core.plane.ControlPlane` (or one bare
    :class:`~repro.core.server.ProcessControlServer`).

    Create, then :meth:`start`; the watchdog lives on the calendar until
    :meth:`stop` or until it enters degraded mode (terminal -- with no
    control plane left there is nothing to supervise).

    *config* is either one :class:`WatchdogConfig` shared by every shard,
    or a mapping ``{shard_index: WatchdogConfig}`` giving individual
    shards their own timings (a latency-critical shard can carry a tight
    deadline while a batch shard keeps the lenient default).  Shards
    absent from the mapping get the global default config.  The sampling
    tick runs at the *fastest* per-shard ``check_period``; each shard is
    still judged against its own deadline and backoff.
    """

    def __init__(
        self,
        kernel: Any,
        plane: Any,
        config: Union[WatchdogConfig, Mapping[int, WatchdogConfig], None] = None,
        seed: int = 0,
    ) -> None:
        self.kernel = kernel
        self.plane = plane
        self.servers: List[Any] = list(getattr(plane, "servers", [plane]))
        if not self.servers:
            raise ValueError("nothing to supervise: plane has no servers")
        interval = self.servers[0].interval
        machine_config = getattr(getattr(kernel, "machine", None), "config", None)
        slack = 2 * machine_config.quantum if machine_config is not None else 0
        if isinstance(config, Mapping):
            for index in config:
                if not 0 <= index < len(self.servers):
                    raise ValueError(
                        f"watchdog config for unknown shard {index!r} "
                        f"(plane has {len(self.servers)} shard(s))"
                    )
            default = WatchdogConfig().resolve(interval, slack)
            self.configs: List[WatchdogConfig] = [
                (
                    config[index].resolve(interval, slack)
                    if index in config
                    else default
                )
                for index in range(len(self.servers))
            ]
        else:
            shared = (config or WatchdogConfig()).resolve(interval, slack)
            self.configs = [shared] * len(self.servers)
        #: Back-compat alias: the first shard's resolved config (identical
        #: to every other shard's unless a per-shard mapping was given).
        self.config = self.configs[0]
        #: The supervision tick runs at the fastest requested cadence.
        self.check_period = min(c.check_period for c in self.configs)
        self.rng = RandomStreams(seed).get("watchdog")
        self.health: List[_ShardHealth] = [
            _ShardHealth() for _ in self.servers
        ]
        self.degraded = False
        self.counters: Dict[str, int] = {
            "ticks": 0,
            "suspects": 0,
            "restarts": 0,
            "recoveries": 0,
            "failovers": 0,
            "policy_swaps": 0,
            "policy_restores": 0,
            "degraded": 0,
        }
        #: (time, kind, details) for every action -- report/replay checks.
        self.events: List[Tuple[int, str, Dict[str, Any]]] = []
        self._repeat = None
        self._started = False

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    def start(self) -> None:
        """Arm the supervision loop (idempotent-hostile: once only)."""
        if self._started:
            raise RuntimeError("watchdog already started")
        self._started = True
        now = self.kernel.now
        for health in self.health:
            health.watch_since = now
        # A deterministic phase offset desynchronizes the watchdog from
        # the servers' scan boundaries (and from sibling watchdogs in
        # multi-plane rigs): same seed, same phase, bit-identical run.
        offset = 1 + self.rng.randrange(self.check_period)
        self.kernel.engine.schedule(offset, self._first_tick, "watchdog-start")

    def _first_tick(self) -> None:
        if self._repeat is None and not self.degraded:
            self._tick()
        if not self.degraded:
            self._repeat = self.kernel.engine.schedule_every(
                self.check_period, self._tick, "watchdog-tick"
            )

    def config_for(self, index: int) -> WatchdogConfig:
        """The resolved supervision config governing shard *index*."""
        return self.configs[index]

    def stop(self) -> None:
        """Cancel the supervision loop."""
        if self._repeat is not None:
            self._repeat.cancel()
            self._repeat = None

    # ------------------------------------------------------------------
    # The supervision tick
    # ------------------------------------------------------------------

    def _log(self, kind: str, **details: Any) -> None:
        now = self.kernel.now
        self.events.append((now, kind, details))
        self.kernel.trace.emit(now, f"watchdog.{kind}", **details)

    def _tick(self) -> None:
        if self.degraded:
            return
        self.counters["ticks"] += 1
        now = self.kernel.now
        for index, server in enumerate(self.servers):
            health = self.health[index]
            if health.state == "failed":
                continue
            self._check_shard(index, server, health, now)
        if any(c.policy_cold_ttl is not None for c in self.configs):
            self._check_telemetry(now)

    def _heartbeat_age(self, server: Any, health: _ShardHealth, now: int) -> int:
        beat = server.board.heartbeat_at
        anchor = health.watch_since
        if beat is not None and beat > anchor:
            anchor = beat
        return now - anchor

    def _check_shard(
        self, index: int, server: Any, health: _ShardHealth, now: int
    ) -> None:
        config = self.configs[index]
        crashed_at = server.board.crashed_at
        age = self._heartbeat_age(server, health, now)
        suspect = crashed_at is not None or age > config.deadline
        if not suspect:
            if health.state != "healthy":
                health.state = "healthy"
                health.suspected_at = None
                health.next_restart_at = None
                self.counters["recoveries"] += 1
                self._log("recovered", shard=index, heartbeat_age=age)
            if (
                health.restarts_attempted
                and health.last_restart_at is not None
                and now - health.last_restart_at >= config.reset_after
            ):
                # Stable long enough: earn the retry budget back, so a
                # once-flaky shard is not one crash from failover forever.
                health.restarts_attempted = 0
            return
        if health.state == "healthy":
            health.state = "suspect"
            health.suspected_at = now
            self.counters["suspects"] += 1
            self._log(
                "suspect",
                shard=index,
                crashed=crashed_at is not None,
                heartbeat_age=age,
            )
        if health.restarts_attempted >= config.max_restarts:
            self._fail_over(index, server, health)
            return
        due = health.next_restart_at
        if due is None:
            due = health.suspected_at if health.suspected_at is not None else now
        if now < due:
            return
        self._restart_shard(index, server, health, now)

    def _restart_shard(
        self, index: int, server: Any, health: _ShardHealth, now: int
    ) -> None:
        config = self.configs[index]
        if server.pid is not None:
            # Alive but not beating: a wedged scan loop.  Kill it -- a
            # respawn is the only lever a supervisor has.
            server.crash()
        restart_shard = getattr(self.plane, "restart_shard", None)
        if restart_shard is not None and self.plane is not server:
            process = restart_shard(index)
        else:
            process = server.restart()
        health.restarts_attempted += 1
        health.last_restart_at = now
        health.next_restart_at = now + config.restart_backoff * (
            config.backoff_factor ** (health.restarts_attempted - 1)
        )
        health.state = "restarting"
        health.watch_since = now  # fresh deadline for the new incarnation
        self.counters["restarts"] += 1
        self._log(
            "restart",
            shard=index,
            pid=process.pid,
            attempt=health.restarts_attempted,
            next_retry_at=health.next_restart_at,
        )

    def _fail_over(self, index: int, server: Any, health: _ShardHealth) -> None:
        health.state = "failed"
        self.counters["failovers"] += 1
        fail_over = getattr(self.plane, "fail_over", None)
        if fail_over is not None and self.plane is not server:
            moves = fail_over(index)
        else:
            # Bare single server: nothing to fail over onto.
            if server.pid is not None:
                server.crash()
            moves = {}
        self._log("failover", shard=index, moves=dict(moves))
        if all(h.state == "failed" for h in self.health):
            self._enter_degraded()

    def _enter_degraded(self) -> None:
        self.degraded = True
        self.counters["degraded"] = 1
        self._log("degraded", shards=len(self.servers))
        # Terminal: the TTL in every threads package owns recovery now.
        self.stop()

    # ------------------------------------------------------------------
    # Demand-telemetry guard
    # ------------------------------------------------------------------

    def _check_telemetry(self, now: int) -> None:
        """Swap a demand policy out (and back) as its telemetry cools."""
        for index, server in enumerate(self.servers):
            ttl = self.configs[index].policy_cold_ttl
            health = self.health[index]
            if ttl is None or server.pid is None or health.state == "failed":
                continue
            reported = server.board.demand_reported_at
            newest = max(reported.values()) if reported else None
            cold = newest is None or now - newest > ttl
            policy_name = getattr(server.policy, "name", "")
            if cold and health.saved_policy is None and policy_name == "demand":
                health.saved_policy = server.set_policy(EquipartitionPolicy())
                self.counters["policy_swaps"] += 1
                self._log(
                    "policy_swap",
                    shard=index,
                    reason="telemetry-cold",
                    newest_report=newest,
                )
            elif not cold and health.saved_policy is not None:
                server.set_policy(health.saved_policy)
                health.saved_policy = None
                self.counters["policy_restores"] += 1
                self._log("policy_swap", shard=index, reason="telemetry-warm")

    # ------------------------------------------------------------------
    # Reporting
    # ------------------------------------------------------------------

    def summary(self) -> Dict[str, int]:
        """A copy of the action counters (for ``ScenarioResult``)."""
        return dict(self.counters)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        states = ",".join(h.state for h in self.health)
        return f"<Watchdog shards=[{states}] degraded={self.degraded}>"
