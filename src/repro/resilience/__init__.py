"""Self-healing for the control plane: heartbeats, watchdog, failover.

The paper's central server is a single point of failure; PR 4's sharding
multiplied the failure domains without automating recovery.  This package
adds the supervision loop: servers stamp a heartbeat word on their board
every scan (see :meth:`repro.kernel.ipc.ControlBoard.beat`), and a
:class:`Watchdog` -- a seeded calendar actor, like the fault injectors --
watches those words and drives restart -> failover -> degraded mode.
"""

from repro.resilience.watchdog import (
    SUPERVISE_ENV_VAR,
    Watchdog,
    WatchdogConfig,
)

__all__ = [
    "SUPERVISE_ENV_VAR",
    "Watchdog",
    "WatchdogConfig",
]
