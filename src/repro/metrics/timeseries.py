"""Step-function time series.

The kernel emits a ``kernel.runnable`` trace record whenever the runnable
census changes; :func:`runnable_series_from_trace` reconstructs the step
series Figure 5 plots (total runnable processes over time, and per
application).
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Tuple

from repro.sim.trace import TraceLog


class StepSeries:
    """A right-continuous step function sampled at change points."""

    def __init__(self, points: Optional[Iterable[Tuple[int, float]]] = None) -> None:
        self._points: List[Tuple[int, float]] = []
        if points is not None:
            for time, value in points:
                self.append(time, value)

    def append(self, time: int, value: float) -> None:
        """Record that the series takes *value* from *time* onward."""
        if self._points and time < self._points[-1][0]:
            raise ValueError(
                f"non-monotonic time {time} after {self._points[-1][0]}"
            )
        if self._points and self._points[-1][0] == time:
            self._points[-1] = (time, value)
        else:
            self._points.append((time, value))

    @property
    def points(self) -> List[Tuple[int, float]]:
        return list(self._points)

    def __len__(self) -> int:
        return len(self._points)

    def value_at(self, time: int) -> float:
        """Series value at *time* (0 before the first point)."""
        value = 0.0
        for point_time, point_value in self._points:
            if point_time > time:
                break
            value = point_value
        return value

    def sample(self, times: Iterable[int]) -> List[float]:
        """Values at each of *times* (each resolved independently)."""
        return [self.value_at(t) for t in times]

    def maximum(self) -> float:
        """Largest value the series ever takes (0 for an empty series)."""
        return max((v for _, v in self._points), default=0.0)

    def time_average(self, start: int, end: int) -> float:
        """Mean value over ``[start, end)`` weighted by duration."""
        if end <= start:
            raise ValueError("end must exceed start")
        total = 0.0
        current = self.value_at(start)
        last_time = start
        for point_time, point_value in self._points:
            if point_time <= start:
                continue
            if point_time >= end:
                break
            total += current * (point_time - last_time)
            current = point_value
            last_time = point_time
        total += current * (end - last_time)
        return total / (end - start)


def runnable_series_from_trace(
    trace: TraceLog,
) -> Tuple[StepSeries, Dict[str, StepSeries]]:
    """Rebuild Figure 5's series from ``kernel.runnable`` trace records.

    Returns ``(total, per_app)`` where ``per_app`` maps application id to
    its runnable-process step series.  Applications appear in ``per_app``
    from their first nonzero count; a final zero is recorded when they
    drop out of the census.
    """
    total = StepSeries()
    per_app: Dict[str, StepSeries] = {}
    # Dropout detection compares consecutive records instead of scanning
    # every application per record: an application whose series last read
    # nonzero must have been present in the *previous* record (that is
    # where the nonzero value came from), so the previous key set is the
    # only place a dropout can hide.  Keeps reconstruction linear in total
    # record volume -- the Figure 5 reader used to be O(records x apps),
    # which a 10k-application trace turns into minutes.
    prev_counts: Dict[str, int] = {}
    for record in trace.records("kernel.runnable"):
        time = record.time
        counts: Dict[str, int] = record.data["per_app"]
        total.append(time, record.data["total"])
        for app_id, count in counts.items():
            series = per_app.get(app_id)
            if series is None:
                series = StepSeries()
                per_app[app_id] = series
            series.append(time, count)
        for app_id in prev_counts:
            if app_id not in counts:
                points = per_app[app_id]._points
                if points and points[-1][1] != 0:
                    per_app[app_id].append(time, 0)
        prev_counts = counts
    return total, per_app
