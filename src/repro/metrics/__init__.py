"""Measurement utilities: step time series, speedup math, latency
accounting, report tables."""

from repro.metrics.timeseries import StepSeries, runnable_series_from_trace
from repro.metrics.speedup import speedup, efficiency
from repro.metrics.latency import (
    LatencyStats,
    RequestLog,
    format_latency_table,
    percentile,
    tier_stats,
)
from repro.metrics.report import (
    format_run_header,
    format_sanitizer_summary,
    format_table,
)

__all__ = [
    "StepSeries",
    "runnable_series_from_trace",
    "speedup",
    "efficiency",
    "LatencyStats",
    "RequestLog",
    "percentile",
    "tier_stats",
    "format_latency_table",
    "format_table",
    "format_run_header",
    "format_sanitizer_summary",
]
