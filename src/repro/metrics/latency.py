"""Request-latency accounting: percentiles, goodput, SLO violations.

The speedup module answers "how much faster did the batch job finish";
this module answers the service-side question: "what latency did the
requests see, and how many met their objective".  Everything is exact --
the percentile estimator sorts the sample list rather than approximating,
since a corpus case's request count is thousands at most and the numbers
feed golden assertions that must not drift with estimator tuning.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

#: Microseconds per second (goodput is reported in requests/second).
_US_PER_S = 1_000_000


def percentile(samples: Sequence[int], q: float) -> int:
    """The *q*-th percentile of *samples* by the nearest-rank method.

    ``percentile(xs, 99)`` is the smallest value >= 99% of the samples:
    ``sorted(xs)[ceil(q/100 * n) - 1]``.  Nearest-rank (no interpolation)
    keeps the result an actual observed latency, which is what an SLO
    report should quote.  Raises ``ValueError`` on an empty sample list
    or a *q* outside ``(0, 100]``.
    """
    if not samples:
        raise ValueError("percentile of an empty sample list")
    if not 0.0 < q <= 100.0:
        raise ValueError(f"percentile q must be in (0, 100], got {q}")
    ordered = sorted(samples)
    n = len(ordered)
    rank = q / 100.0 * n
    index = int(rank)
    if rank > index:  # ceil for fractional ranks
        index += 1
    return ordered[index - 1]


@dataclass(frozen=True)
class LatencyStats:
    """One application's (or tier's) request-latency summary.

    Times in microseconds.  ``goodput_per_s`` counts only requests that
    met the SLO, over the observation window -- the throughput a customer
    actually experienced, as opposed to raw completion throughput.
    """

    count: int
    p50: int
    p95: int
    p99: int
    mean: float
    max: int
    slo_us: int
    violations: int
    violation_rate: float
    goodput_per_s: float
    tier: str = "interactive"

    @classmethod
    def from_samples(
        cls,
        samples: Sequence[int],
        slo_us: int,
        window_us: int,
        tier: str = "interactive",
    ) -> "LatencyStats":
        """Reduce raw latency samples against an SLO and a window.

        *window_us* is the observation span (first arrival to last
        completion); it floors at 1 so a degenerate single-instant window
        cannot divide by zero.
        """
        if not samples:
            raise ValueError("no latency samples")
        if slo_us < 1:
            raise ValueError(f"slo_us must be >= 1, got {slo_us}")
        violations = sum(1 for s in samples if s > slo_us)
        met = len(samples) - violations
        window_us = max(window_us, 1)
        return cls(
            count=len(samples),
            p50=percentile(samples, 50),
            p95=percentile(samples, 95),
            p99=percentile(samples, 99),
            mean=sum(samples) / len(samples),
            max=max(samples),
            slo_us=slo_us,
            violations=violations,
            violation_rate=violations / len(samples),
            goodput_per_s=met * _US_PER_S / window_us,
            tier=tier,
        )


@dataclass
class RequestLog:
    """Accumulated per-request completions of one application.

    The threads package appends ``(request_id, arrival, completed)``
    triples as reduce tasks finish; :meth:`stats` reduces them.  Kept as
    a tiny class (rather than a bare list) so the latency-EWMA state the
    package piggybacks on its polls lives next to the samples it is
    derived from.
    """

    slo_us: int
    tier: str = "interactive"
    #: (request id, intended arrival, completion instant) per request.
    records: List[Tuple[int, int, int]] = field(default_factory=list)

    def append(self, rid: int, arrival: int, completed: int) -> int:
        """Record one completion; returns the latency in microseconds."""
        latency = completed - arrival
        self.records.append((rid, arrival, completed))
        return latency

    @property
    def latencies(self) -> List[int]:
        return [done - arrival for _, arrival, done in self.records]

    def stats(self) -> Optional[LatencyStats]:
        """The summary, or ``None`` when no request completed."""
        if not self.records:
            return None
        first_arrival = min(arrival for _, arrival, _ in self.records)
        last_done = max(done for _, _, done in self.records)
        return LatencyStats.from_samples(
            self.latencies,
            slo_us=self.slo_us,
            window_us=last_done - first_arrival,
            tier=self.tier,
        )


def tier_stats(
    per_app: Mapping[str, LatencyStats]
) -> Dict[str, LatencyStats]:
    """Aggregate per-application stats into per-tier stats.

    The tier summary is recomputed from the concatenated samples when the
    exact distributions are unavailable -- which they are here, so the
    aggregation merges counts and takes the conservative view: the tier's
    percentile is the worst member's (a tier meets its SLO only if every
    member does), the SLO is the tightest member's, and goodput sums.
    """
    tiers: Dict[str, List[LatencyStats]] = {}
    for stats in per_app.values():
        tiers.setdefault(stats.tier, []).append(stats)
    merged: Dict[str, LatencyStats] = {}
    for tier, members in tiers.items():
        count = sum(m.count for m in members)
        violations = sum(m.violations for m in members)
        merged[tier] = LatencyStats(
            count=count,
            p50=max(m.p50 for m in members),
            p95=max(m.p95 for m in members),
            p99=max(m.p99 for m in members),
            mean=sum(m.mean * m.count for m in members) / count,
            max=max(m.max for m in members),
            slo_us=min(m.slo_us for m in members),
            violations=violations,
            violation_rate=violations / count,
            goodput_per_s=sum(m.goodput_per_s for m in members),
            tier=tier,
        )
    return merged


def format_latency_table(per_app: Mapping[str, LatencyStats]) -> str:
    """A fixed-width per-application latency report (experiment output)."""
    from repro.metrics.report import format_table

    headers = [
        "app",
        "tier",
        "requests",
        "p50_ms",
        "p95_ms",
        "p99_ms",
        "max_ms",
        "slo_ms",
        "viol%",
        "goodput/s",
    ]
    rows = []
    for app_id in sorted(per_app):
        s = per_app[app_id]
        rows.append(
            [
                app_id,
                s.tier,
                s.count,
                f"{s.p50 / 1e3:.2f}",
                f"{s.p95 / 1e3:.2f}",
                f"{s.p99 / 1e3:.2f}",
                f"{s.max / 1e3:.2f}",
                f"{s.slo_us / 1e3:.2f}",
                f"{100.0 * s.violation_rate:.1f}",
                f"{s.goodput_per_s:.1f}",
            ]
        )
    return format_table(headers, rows)
