"""Plain-text report formatting for the experiment harnesses.

The benchmark scripts print the same rows/series the paper's figures show;
these helpers keep the output aligned and consistent.
"""

from __future__ import annotations

from typing import Iterable, List, Sequence


def format_table(headers: Sequence[str], rows: Iterable[Sequence[object]]) -> str:
    """Render an aligned ASCII table."""
    str_rows: List[List[str]] = [[_cell(value) for value in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        if len(row) != len(headers):
            raise ValueError(
                f"row has {len(row)} cells but table has {len(headers)} columns"
            )
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))
    lines = [
        "  ".join(h.ljust(widths[i]) for i, h in enumerate(headers)).rstrip(),
        "  ".join("-" * widths[i] for i in range(len(headers))),
    ]
    for row in str_rows:
        lines.append(
            "  ".join(cell.rjust(widths[i]) for i, cell in enumerate(row)).rstrip()
        )
    return "\n".join(lines)


def format_run_header(title: str, **params: object) -> str:
    """A one-line experiment banner, e.g. ``== Figure 3 (quantum=100ms) ==``."""
    if params:
        detail = ", ".join(f"{key}={value}" for key, value in sorted(params.items()))
        return f"== {title} ({detail}) =="
    return f"== {title} =="


def format_sanitizer_summary(result: object) -> str:
    """One line summarizing a run's sanitizer outcome.

    Accepts any object with ``sanitizer_violations`` and
    ``sanitizer_counters`` attributes (a
    :class:`~repro.workloads.runner.ScenarioResult`).  Returns
    ``"sanitizer: off"`` when the run was unsanitized, otherwise the
    violation total plus the most useful counters.
    """
    counters = getattr(result, "sanitizer_counters", None)
    if counters is None:
        return "sanitizer: off"
    violations = getattr(result, "sanitizer_violations", 0)
    state = "clean" if violations == 0 else f"{violations} violation(s)"
    detail = (
        f"{counters.get('checks', 0)} checks, "
        f"{counters.get('deep_checks', 0)} deep, "
        f"{counters.get('lock_holder_preemptions_witnessed', 0)} "
        f"lock-holder preemptions witnessed"
    )
    per_check = sorted(
        (key.split(".", 1)[1], count)
        for key, count in counters.items()
        if key.startswith("violations.") and count
    )
    if per_check:
        breakdown = ", ".join(f"{name}={count}" for name, count in per_check)
        return f"sanitizer: {state} ({detail}; {breakdown})"
    return f"sanitizer: {state} ({detail})"


def _cell(value: object) -> str:
    if isinstance(value, float):
        return f"{value:.2f}"
    return str(value)
