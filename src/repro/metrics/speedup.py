"""Speedup and efficiency, as the paper's figures report them.

Speedup for an application at P processes is the single-process wall time
divided by the wall time of the run under study (Figures 1 and 3 plot this
against the number of processes, on a fixed 16-processor machine).
"""

from __future__ import annotations


def speedup(t1: int, tp: int) -> float:
    """Classic speedup: single-process time over parallel time."""
    if t1 <= 0:
        raise ValueError(f"t1 must be positive, got {t1}")
    if tp <= 0:
        raise ValueError(f"tp must be positive, got {tp}")
    return t1 / tp


def efficiency(t1: int, tp: int, n_processes: int) -> float:
    """Speedup normalized by the process count."""
    if n_processes < 1:
        raise ValueError("n_processes must be >= 1")
    return speedup(t1, tp) / n_processes
