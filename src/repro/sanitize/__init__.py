"""SchedSanitizer: opt-in invariant checking for the simulator.

Three layers, all zero-cost when off (nothing here is imported into a hot
path and the kernel is never wrapped unless a sanitizer is attached):

* :mod:`repro.sanitize.invariants` -- :class:`SchedSanitizer`, an online
  checker that wraps the kernel's transition points (dispatch, preempt,
  block, wake, exit, enqueue, dequeue) and verifies scheduling invariants
  as the simulation runs.
* :mod:`repro.sanitize.lint` -- :func:`lint_trace`, a post-hoc pass that
  replays a :class:`~repro.sim.trace.TraceLog` and cross-checks causality
  (matching suspend/resume pairs, dispatches landing on idle processors,
  sane server decisions).
* :mod:`repro.sanitize.oracle` -- a differential harness running the
  epoch-normalized lazy-decay scheduler against a reference O(n) rescan,
  and the fused event loop against the plain one, asserting identical
  dispatch traces.  Imported on demand (``from repro.sanitize import
  oracle``); it pulls in the workload runner, which the other two layers
  deliberately do not.

Enable with ``REPRO_SANITIZE=1`` (strict: first violation raises), or
``REPRO_SANITIZE=record`` (accumulate violations and keep running), or the
``--sanitize`` flag of ``python -m repro.experiments``.
"""

from repro.sanitize.invariants import (
    SanitizerError,
    SchedSanitizer,
    Violation,
    sanitize_mode_from_env,
)
from repro.sanitize.lint import LintIssue, LintReport, lint_trace

__all__ = [
    "SanitizerError",
    "SchedSanitizer",
    "Violation",
    "sanitize_mode_from_env",
    "LintIssue",
    "LintReport",
    "lint_trace",
]
