"""Differential oracles for the simulator's two risky optimizations.

The engine is deterministic (integer clock, FIFO tie-breaks, no OS
entropy), so any two runs of the same scenario must produce *bit-identical*
event sequences.  That determinism turns optimized/reference pairs into
cheap end-to-end oracles:

* **Scheduler oracle** -- the epoch-normalized, lazily-invalidated min-heap
  of :class:`~repro.kernel.scheduler.decay.PriorityDecayScheduler` against
  the plain-list O(n) rescan of
  :class:`~repro.kernel.scheduler.decay_ref.ReferenceDecayScheduler`.
* **Loop oracle** -- the fused ``Engine.run_until_done`` loop (inlined
  step, exit-gated predicate) against the plain ``step()`` loop.

Both compare the full dispatch trace -- the ``(time, pid, cpu)`` sequence
of every ``kernel.dispatch`` record -- which pins down scheduling order,
timing, and placement at once.  Any divergence is a bug in one side.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import List, Optional, Sequence, Tuple

from repro.sim import TraceLog
from repro.workloads.runner import run_scenario
from repro.workloads.scenario import Scenario

#: A dispatch event, as compared by the oracles.
DispatchEvent = Tuple[int, int, int]  # (time_us, pid, cpu)


@dataclass(frozen=True)
class OracleMismatch:
    """First point where two dispatch traces diverge."""

    seed: int
    index: int
    expected: Optional[DispatchEvent]
    actual: Optional[DispatchEvent]

    def __str__(self) -> str:
        return (
            f"seed {self.seed}: dispatch #{self.index} diverged: "
            f"reference {self.expected} vs optimized {self.actual}"
        )


@dataclass
class OracleReport:
    """Outcome of one differential comparison across seeds."""

    label: str
    seeds: Tuple[int, ...] = ()
    events_compared: int = 0
    mismatches: List[OracleMismatch] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.mismatches

    def summary(self) -> str:
        state = "identical" if self.ok else f"{len(self.mismatches)} mismatch(es)"
        return (
            f"oracle[{self.label}]: {state} over {self.events_compared} "
            f"dispatches, seeds {list(self.seeds)}"
        )


def dispatch_trace(trace: TraceLog) -> List[DispatchEvent]:
    """The ``(time, pid, cpu)`` sequence of every dispatch in *trace*."""
    return [
        (record.time, record.data["pid"], record.data["cpu"])
        for record in trace.records("kernel.dispatch")
    ]


def _run_dispatches(scenario: Scenario, engine_loop: str) -> List[DispatchEvent]:
    # A dedicated dispatch-only trace keeps memory flat on long runs; the
    # sanitizer stays off so the oracle isolates exactly one variable.
    trace = TraceLog(categories=("kernel.dispatch",))
    run_scenario(scenario, trace=trace, sanitize=False, engine_loop=engine_loop)
    return dispatch_trace(trace)


def _compare(
    report: OracleReport, seed: int, expected: List[DispatchEvent], actual: List[DispatchEvent]
) -> None:
    report.events_compared += max(len(expected), len(actual))
    limit = max(len(expected), len(actual))
    for index in range(limit):
        left = expected[index] if index < len(expected) else None
        right = actual[index] if index < len(actual) else None
        if left != right:
            report.mismatches.append(OracleMismatch(seed, index, left, right))
            return  # everything after the first divergence is noise


def check_decay_oracle(
    scenario_factory,
    seeds: Sequence[int] = (1, 2, 3),
) -> OracleReport:
    """Run lazy-decay vs the O(n) reference on each seeded scenario.

    *scenario_factory(seed)* must build a fresh :class:`Scenario`; its
    ``scheduler`` field is overridden on each side.
    """
    report = OracleReport(label="decay-vs-reference", seeds=tuple(seeds))
    for seed in seeds:
        # A fresh scenario per side: application factories may close over
        # per-build state, and the oracle must not share any of it.
        reference = _run_dispatches(
            replace(scenario_factory(seed), scheduler="decay-ref"),
            engine_loop="fused",
        )
        optimized = _run_dispatches(
            replace(scenario_factory(seed), scheduler="decay"),
            engine_loop="fused",
        )
        _compare(report, seed, reference, optimized)
    return report


def check_loop_oracle(
    scenario_factory,
    seeds: Sequence[int] = (1, 2, 3),
) -> OracleReport:
    """Run the fused event loop vs the plain ``step()`` loop per seed."""
    report = OracleReport(label="fused-vs-plain-loop", seeds=tuple(seeds))
    for seed in seeds:
        reference = _run_dispatches(scenario_factory(seed), engine_loop="plain")
        optimized = _run_dispatches(scenario_factory(seed), engine_loop="fused")
        _compare(report, seed, reference, optimized)
    return report
