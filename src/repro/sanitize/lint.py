"""Post-hoc trace linting.

:func:`lint_trace` replays a finished :class:`~repro.sim.trace.TraceLog`
in record order and cross-checks causality between events:

* time is monotonically non-decreasing;
* processor occupancy is consistent: every dispatch lands on an idle
  processor and a not-already-running pid; preempt/yield/block/exit only
  remove pids that are actually running; a wake never targets a running
  pid and always follows a block;
* the process-control suspension protocol pairs up: every ``pc.resume``
  names a currently parked pid, every ``pc.wake`` consumes either a resume
  in flight (``pc-resume`` payload) or a parked pid (``pc-finish``
  payload, the shutdown path that legitimately skips ``pc.resume``);
* server decisions are sane: every published target is at least 1 and the
  targets sum to at most ``max(P, number of applications)`` processors
  (the water-filling policy grants every application at least one
  processor, so with more applications than processors the sum legally
  exceeds P);
* a witnessed ``spin.holder_preempted`` record names a holder that is
  indeed off-processor at that moment;
* any ``sanitize.violation`` the online checker recorded (record mode) is
  surfaced as a lint issue, so bugs that are invisible in a legal-looking
  event stream -- e.g. a policy duplicating queue entries internally --
  still fail the lint pass.

Each check group is gated on :meth:`TraceLog.wants` for every category it
consumes: a log that *filtered out* a category cannot be linted against it
(missing records are indistinguishable from dropped ones), so the group is
skipped rather than reporting false positives.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.sim.trace import TraceLog
from repro.threads.control import FINISH, RESUME

#: Categories the occupancy tracker consumes; all must pass ``wants``.
_OCCUPANCY_CATEGORIES = (
    "kernel.dispatch",
    "kernel.preempt",
    "kernel.block",
    "kernel.wake",
    "kernel.exit",
    "kernel.yield",
)

#: Categories the suspension-protocol tracker consumes.
_SUSPENSION_CATEGORIES = ("pc.suspend", "pc.resume", "pc.wake")


@dataclass(frozen=True)
class LintIssue:
    """One causality problem found in a trace."""

    time: int
    check: str
    message: str


@dataclass
class LintReport:
    """Outcome of one :func:`lint_trace` pass."""

    issues: List[LintIssue] = field(default_factory=list)
    records_checked: int = 0
    checks_enabled: Tuple[str, ...] = ()

    @property
    def ok(self) -> bool:
        return not self.issues

    def summary(self) -> str:
        state = "clean" if self.ok else f"{len(self.issues)} issue(s)"
        return (
            f"lint: {state} over {self.records_checked} records "
            f"(groups: {', '.join(self.checks_enabled) or 'none'})"
        )


class _Linter:
    def __init__(self, trace: TraceLog, n_processors: Optional[int]) -> None:
        self.trace = trace
        self.n_processors = n_processors
        self.issues: List[LintIssue] = []
        self.check_occupancy = all(trace.wants(c) for c in _OCCUPANCY_CATEGORIES)
        self.check_suspension = all(trace.wants(c) for c in _SUSPENSION_CATEGORIES)
        self.check_server = trace.wants("server.update")
        self.check_spin = self.check_occupancy and trace.wants("spin.holder_preempted")
        # Occupancy state.
        self.running: Dict[int, int] = {}  # pid -> cpu
        self.on_cpu: Dict[int, int] = {}  # cpu -> pid
        self.blocked: set = set()
        # Suspension-protocol state.
        self.parked: set = set()  # pc.suspend seen, no resume/wake yet
        self.resume_in_flight: set = set()  # pc.resume seen, no pc.wake yet

    def issue(self, time: int, check: str, message: str) -> None:
        self.issues.append(LintIssue(time, check, message))

    # -- occupancy ---------------------------------------------------------

    def _remove_running(self, time: int, pid: int, check: str, what: str) -> None:
        cpu = self.running.pop(pid, None)
        if cpu is None:
            self.issue(time, check, f"{what} of pid {pid}, which is not running")
        else:
            self.on_cpu.pop(cpu, None)

    def dispatch(self, time: int, pid: int, cpu: int) -> None:
        occupant = self.on_cpu.get(cpu)
        if occupant is not None:
            self.issue(
                time,
                "dispatch-busy-cpu",
                f"pid {pid} dispatched onto cpu {cpu} still occupied by "
                f"pid {occupant}",
            )
        if pid in self.running:
            self.issue(
                time,
                "dispatch-while-running",
                f"pid {pid} dispatched onto cpu {cpu} while running on cpu "
                f"{self.running[pid]}",
            )
        if self.n_processors is not None and not 0 <= cpu < self.n_processors:
            self.issue(
                time, "dispatch-bad-cpu", f"pid {pid} dispatched onto cpu {cpu}"
            )
        self.blocked.discard(pid)
        self.running[pid] = cpu
        self.on_cpu[cpu] = pid

    def preempt(self, time: int, pid: int, cpu: int, kind: str) -> None:
        tracked = self.running.get(pid)
        if tracked != cpu:
            self.issue(
                time,
                f"{kind}-not-running",
                f"{kind} of pid {pid} on cpu {cpu}, but it is "
                + ("not running" if tracked is None else f"on cpu {tracked}"),
            )
        self._remove_running(time, pid, f"{kind}-not-running", kind)

    def block(self, time: int, pid: int) -> None:
        self._remove_running(time, pid, "block-not-running", "block")
        self.blocked.add(pid)

    def wake(self, time: int, pid: int) -> None:
        if pid in self.running:
            self.issue(
                time,
                "wake-running",
                f"wake of pid {pid} while running on cpu {self.running[pid]}",
            )
        elif pid not in self.blocked:
            self.issue(
                time, "wake-without-block", f"wake of pid {pid} with no prior block"
            )
        self.blocked.discard(pid)

    def exit(self, time: int, pid: int) -> None:
        self._remove_running(time, pid, "exit-not-running", "exit")

    # -- suspension protocol ----------------------------------------------

    def pc_suspend(self, time: int, pid: int) -> None:
        if pid in self.parked:
            self.issue(
                time, "double-suspend", f"pid {pid} suspended while already parked"
            )
        self.parked.add(pid)

    def pc_resume(self, time: int, pid: int) -> None:
        if pid not in self.parked:
            self.issue(
                time,
                "resume-without-suspend",
                f"pid {pid} resumed without a matching suspend",
            )
        self.parked.discard(pid)
        self.resume_in_flight.add(pid)

    def pc_wake(self, time: int, pid: int, payload: object) -> None:
        if payload == RESUME:
            if pid not in self.resume_in_flight:
                self.issue(
                    time,
                    "wake-without-resume",
                    f"pid {pid} woke from suspension without a pc.resume",
                )
            self.resume_in_flight.discard(pid)
        elif payload == FINISH:
            # Shutdown wakes bypass pc.resume by design, but still require
            # the worker to actually have been parked.
            if pid not in self.parked and pid not in self.resume_in_flight:
                self.issue(
                    time,
                    "wake-without-suspend",
                    f"pid {pid} got a finish wake without being parked",
                )
            self.parked.discard(pid)
            self.resume_in_flight.discard(pid)
        else:
            self.issue(
                time,
                "unknown-wake-payload",
                f"pid {pid} woke with unrecognized payload {payload!r}",
            )

    # -- server decisions --------------------------------------------------

    def server_update(self, time: int, targets: Dict[str, int]) -> None:
        for app_id, target in targets.items():
            if target < 1:
                self.issue(
                    time,
                    "zero-target",
                    f"server granted application {app_id!r} {target} processors",
                )
        if self.n_processors is not None and targets:
            total = sum(targets.values())
            bound = max(self.n_processors, len(targets))
            if total > bound:
                self.issue(
                    time,
                    "oversubscribed-decision",
                    f"server granted {total} processors across "
                    f"{len(targets)} applications on a "
                    f"{self.n_processors}-processor machine",
                )


def lint_trace(trace: TraceLog, n_processors: Optional[int] = None) -> LintReport:
    """Replay *trace* and report causality problems.

    *n_processors* enables the bounds checks (cpu ids, server decision
    sums); omit it and those checks are skipped.
    """
    linter = _Linter(trace, n_processors)
    last_time = None
    count = 0
    for record in trace:
        count += 1
        time, category, data = record.time, record.category, record.data
        if last_time is not None and time < last_time:
            linter.issue(
                time,
                "monotonic-time",
                f"record at {time}us follows one at {last_time}us",
            )
        last_time = time
        if category == "sanitize.violation":
            linter.issue(
                time,
                "online-violation",
                f"online checker recorded [{data.get('check')}]: "
                f"{data.get('message')}",
            )
        elif linter.check_occupancy:
            if category == "kernel.dispatch":
                linter.dispatch(time, data["pid"], data["cpu"])
            elif category == "kernel.preempt":
                linter.preempt(time, data["pid"], data["cpu"], "preempt")
            elif category == "kernel.yield":
                linter.preempt(time, data["pid"], data["cpu"], "yield")
            elif category == "kernel.block":
                linter.block(time, data["pid"])
            elif category == "kernel.wake":
                linter.wake(time, data["pid"])
            elif category == "kernel.exit":
                linter.exit(time, data["pid"])
            elif category == "spin.holder_preempted" and linter.check_spin:
                holder = data.get("holder")
                if holder in linter.running:
                    linter.issue(
                        time,
                        "holder-running",
                        f"lock {data.get('lock')!r} reported holder "
                        f"{holder} preempted, but it is running on cpu "
                        f"{linter.running[holder]}",
                    )
        if linter.check_suspension:
            if category == "pc.suspend":
                linter.pc_suspend(time, data["pid"])
            elif category == "pc.resume":
                linter.pc_resume(time, data["pid"])
            elif category == "pc.wake":
                linter.pc_wake(time, data["pid"], data.get("payload"))
        if linter.check_server and category == "server.update":
            linter.server_update(time, data.get("targets", {}))

    enabled = ["monotonic-time", "online-violations"]
    if linter.check_occupancy:
        enabled.append("occupancy")
    if linter.check_suspension:
        enabled.append("suspension-protocol")
    if linter.check_server:
        enabled.append("server-decisions")
    if linter.check_spin:
        enabled.append("spin-witness")
    return LintReport(
        issues=linter.issues,
        records_checked=count,
        checks_enabled=tuple(enabled),
    )
