"""Online scheduling-invariant checker.

:class:`SchedSanitizer` wraps a live :class:`~repro.kernel.kernel.Kernel`
(and its policy) with checking shims installed as *instance* attributes, so
an unattached kernel pays nothing.  The shims maintain shadow state -- a
census of queued pids and a pid->cpu map of running processes -- and verify
at every transition that the simulation still satisfies the structural
invariants the experiments silently rely on:

* every process is in exactly one state, on at most one run queue, and on
  at most one processor;
* run-queue handoffs are sane: no double enqueue, no dequeue of a process
  that was never enqueued, no dispatch onto a busy processor;
* suspension (the process-control ``WaitSignal`` protocol) only happens at
  task-queue safe points -- never while holding a spinlock or spinning;
* lock-holder preemption is accounted as a *witnessed* event (the shim saw
  ``locks_held > 0`` at the preemption itself) and cross-checked at
  :meth:`~SchedSanitizer.finish` against the kernel's inferred statistics;
* the event calendar stays consistent: ``pending_count`` matches the live
  heap entries and no live event is scheduled in the past;
* once a control server is watched, no application sustains more runnable
  workers than its granted share beyond a compliance window (workers only
  obey at safe points, so momentary overruns are legal).

Cheap checks (monotonic time, shadow-state bookkeeping) run at every shim;
expensive ones (census cross-check via
:meth:`~repro.kernel.scheduler.base.SchedulerPolicy.queued_census`, full
state-machine and calendar scans) run every ``deep_period`` transitions and
only at *safe points* -- transition boundaries where no process is legally
in flight between a queue and a processor.

Modes: ``"strict"`` raises :class:`SanitizerError` at the first violation;
``"record"`` accumulates :class:`Violation` entries (and emits
``sanitize.violation`` trace records) while the run continues, which is
what the lint pass consumes post-hoc.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from repro.kernel.process import ProcessState
from repro.sim.engine import SimulationError

#: Environment knob consulted by ``run_scenario`` (and the experiments CLI,
#: which sets it from ``--sanitize``).
SANITIZE_ENV_VAR = "REPRO_SANITIZE"

_OFF_VALUES = {"", "0", "off", "false", "no", "none"}
_STRICT_VALUES = {"1", "on", "true", "yes", "strict"}
_RECORD_VALUES = {"record", "warn"}


def sanitize_mode_from_env(environ: Optional[Dict[str, str]] = None) -> Optional[str]:
    """Resolve :data:`SANITIZE_ENV_VAR` to ``None``/``"strict"``/``"record"``."""
    source = os.environ if environ is None else environ
    raw = source.get(SANITIZE_ENV_VAR, "").strip().lower()
    if raw in _OFF_VALUES:
        return None
    if raw in _STRICT_VALUES:
        return "strict"
    if raw in _RECORD_VALUES:
        return "record"
    raise ValueError(
        f"unrecognized {SANITIZE_ENV_VAR}={raw!r}; use 1/strict, record, or 0"
    )


class SanitizerError(SimulationError):
    """A scheduling invariant was violated (strict mode)."""


@dataclass(frozen=True)
class Violation:
    """One invariant violation.

    Attributes:
        time: simulation time in microseconds.
        check: kebab-case name of the failed check, e.g. ``"double-enqueue"``.
        message: human-readable description.
        pid: the process involved, when one is identifiable.
    """

    time: int
    check: str
    message: str
    pid: Optional[int] = None


class SchedSanitizer:
    """Attachable invariant checker for one kernel instance.

    Usage::

        sanitizer = SchedSanitizer(kernel, mode="strict")
        sanitizer.attach()
        ... run the simulation ...
        sanitizer.finish()    # end-of-run cross-checks
        sanitizer.detach()    # optional: restore the unwrapped kernel
    """

    def __init__(
        self,
        kernel,
        mode: str = "strict",
        deep_period: int = 64,
    ) -> None:
        if mode not in ("strict", "record"):
            raise ValueError(f"mode must be 'strict' or 'record', got {mode!r}")
        if deep_period < 1:
            raise ValueError("deep_period must be >= 1")
        self.kernel = kernel
        self.mode = mode
        self.deep_period = deep_period
        self.violations: list = []
        self.counters: Dict[str, int] = {
            "checks": 0,
            "deep_checks": 0,
            "violations": 0,
            "lock_holder_preemptions_witnessed": 0,
        }
        self._attached = False
        # Shadow state, rebuilt from the sanitizer's own observations.
        self._queued: Dict[int, bool] = {}  # pid -> has a live queue entry
        self._running: Dict[int, int] = {}  # pid -> cpu
        self._last_time = 0
        self._ops = 0
        self._next_deep = deep_period
        self._baseline_cs_preemptions = 0
        self._saved: Dict[Tuple[int, str], object] = {}
        # Server-share watching (armed via watch_server / watch_packages).
        self._server = None
        self._compliance_window: Optional[int] = None
        self._overrun_since: Dict[str, Tuple[int, int]] = {}
        self._packages: list = []

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    @property
    def ok(self) -> bool:
        """True while no violation has been observed."""
        return not self.violations

    def attach(self) -> "SchedSanitizer":
        """Install the checking shims.  Idempotence is an error (attach
        twice and the second set of shims would wrap the first)."""
        if self._attached:
            raise RuntimeError("sanitizer is already attached")
        kernel = self.kernel
        policy = kernel.policy
        self._last_time = kernel.engine.now
        self._baseline_cs_preemptions = sum(
            p.stats.preemptions_in_critical_section
            for p in kernel.processes.values()
        )
        # Seed shadow state from whatever already exists (attaching before
        # the first spawn leaves both empty).
        census = policy.queued_census()
        if census:
            for pid in census:
                self._queued[pid] = True
        for process in kernel.processes.values():
            if process.state is ProcessState.RUNNING and process.cpu is not None:
                self._running[process.pid] = process.cpu

        self._wrap_policy_enqueue()
        self._wrap_policy_dequeue()
        self._wrap_kernel("_dispatch", self._make_dispatch)
        self._wrap_kernel("_undispatch", self._make_undispatch)
        self._wrap_kernel("_preempt", self._make_preempt)
        self._wrap_kernel("_block_current", self._make_block)
        self._wrap_kernel("_wake", self._make_wake)
        self._wrap_kernel("_exit_current", self._make_exit)
        self._wrap_kernel("_terminate_off_cpu", self._make_terminate)
        self._attached = True
        return self

    def detach(self) -> None:
        """Remove every shim, restoring the kernel's original fast paths."""
        if not self._attached:
            return
        kernel = self.kernel
        policy = kernel.policy
        for (target, name), original in self._saved.items():
            obj = kernel if target == "kernel" else policy
            if original is _MISSING:
                obj.__dict__.pop(name, None)
            else:
                setattr(obj, name, original)
        self._saved.clear()
        self._attached = False

    def watch_server(self, server, poll_interval: int, compliance_factor: int = 4) -> None:
        """Arm the runnable-share check against *server*'s control board.

        Workers only obey targets at task-queue safe points, and resumes
        briefly overshoot, so an overrun only counts as a violation when it
        persists longer than ``compliance_factor * poll_interval``.
        """
        if poll_interval <= 0:
            raise ValueError("poll_interval must be positive")
        self._server = server
        self._compliance_window = compliance_factor * poll_interval

    def watch_packages(self, packages) -> None:
        """Tell the share check about the application packages.

        Graceful degradation lets a package *release* a stale target
        (``control.target is None`` after the TTL) and restore full
        parallelism while the board still shows the dead server's last
        word; that is legal, so such applications are exempted from the
        share-overrun check until they re-adopt a fresh target.
        """
        self._packages = list(packages)

    def finish(self) -> "SchedSanitizer":
        """End-of-run checks: a final deep pass plus the witnessed
        lock-holder-preemption count against the kernel's statistics."""
        self.deep_check()
        inferred = (
            sum(
                p.stats.preemptions_in_critical_section
                for p in self.kernel.processes.values()
            )
            - self._baseline_cs_preemptions
        )
        witnessed = self.counters["lock_holder_preemptions_witnessed"]
        if witnessed != inferred:
            self._report(
                "witness-mismatch",
                f"witnessed {witnessed} lock-holder preemptions but the "
                f"kernel accounted {inferred}: a preemption bypassed the "
                f"sanitizer",
            )
        return self

    # ------------------------------------------------------------------
    # Violation plumbing
    # ------------------------------------------------------------------

    def _report(self, check: str, message: str, pid: Optional[int] = None) -> None:
        now = self.kernel.engine.now
        self.violations.append(Violation(now, check, message, pid))
        self.counters["violations"] += 1
        key = f"violations.{check}"
        self.counters[key] = self.counters.get(key, 0) + 1
        self.kernel.trace.emit(
            now, "sanitize.violation", check=check, message=message, pid=pid
        )
        if self.mode == "strict":
            raise SanitizerError(f"[sanitize:{check}] t={now}us: {message}")

    def _pre(self) -> None:
        """Per-shim cheap checks: monotonic time, operation counting."""
        now = self.kernel.engine.now
        if now < self._last_time:
            self._report(
                "monotonic-time",
                f"clock moved backwards: {self._last_time}us -> {now}us",
            )
        self._last_time = now
        self.counters["checks"] += 1
        self._ops += 1

    def _maybe_deep(self) -> None:
        if self._ops >= self._next_deep:
            self._next_deep = self._ops + self.deep_period
            self.deep_check()

    # ------------------------------------------------------------------
    # Shims
    # ------------------------------------------------------------------

    def _wrap_kernel(self, name: str, factory) -> None:
        kernel = self.kernel
        original = getattr(kernel, name)
        self._saved[("kernel", name)] = kernel.__dict__.get(name, _MISSING)
        setattr(kernel, name, factory(original))

    def _wrap_policy_enqueue(self) -> None:
        kernel = self.kernel
        policy = kernel.policy
        original = policy.enqueue
        shim = self._make_enqueue(original)
        self._saved[("policy", "enqueue")] = policy.__dict__.get("enqueue", _MISSING)
        policy.enqueue = shim
        # The kernel caches the bound method at construction; repoint the
        # cache so the preempt/wake paths go through the shim too.
        self._saved[("kernel", "_policy_enqueue")] = kernel.__dict__.get(
            "_policy_enqueue", _MISSING
        )
        kernel._policy_enqueue = shim

    def _wrap_policy_dequeue(self) -> None:
        kernel = self.kernel
        policy = kernel.policy
        original = policy.dequeue
        shim = self._make_dequeue(original)
        self._saved[("policy", "dequeue")] = policy.__dict__.get("dequeue", _MISSING)
        policy.dequeue = shim
        self._saved[("kernel", "_policy_dequeue")] = kernel.__dict__.get(
            "_policy_dequeue", _MISSING
        )
        kernel._policy_dequeue = shim

    def _make_enqueue(self, original):
        def enqueue(process, reason):
            self._pre()
            pid = process.pid
            if pid in self._queued:
                self._report(
                    "double-enqueue",
                    f"process {pid} enqueued ({reason!r}) while it already "
                    f"has a live queue entry",
                    pid,
                )
            if process.state is not ProcessState.READY:
                self._report(
                    "enqueue-non-ready",
                    f"process {pid} enqueued in state {process.state.name}",
                    pid,
                )
            original(process, reason)
            self._queued[pid] = True
            self._maybe_deep()

        return enqueue

    def _make_dequeue(self, original):
        def dequeue(cpu):
            self._pre()
            process = original(cpu)
            if process is not None:
                pid = process.pid
                if self._queued.pop(pid, None) is None:
                    self._report(
                        "phantom-dequeue",
                        f"dequeue on cpu {cpu} returned process {pid}, which "
                        f"has no live queue entry",
                        pid,
                    )
                if process.state is not ProcessState.READY:
                    self._report(
                        "dequeue-non-ready",
                        f"dequeue returned process {pid} in state "
                        f"{process.state.name}",
                        pid,
                    )
            # No deep check here: the caller is about to dispatch, so the
            # returned process is legally READY-but-unqueued right now.
            return process

        return dequeue

    def _make_dispatch(self, original):
        def _dispatch(cpu, process):
            self._pre()
            pid = process.pid
            if self.kernel.machine.processors[cpu].current is not None:
                self._report(
                    "dispatch-busy-cpu", f"dispatch of {pid} onto busy cpu {cpu}", pid
                )
            if not self.kernel.cpu_is_online(cpu):
                self._report(
                    "dispatch-offline-cpu",
                    f"dispatch of {pid} onto offline cpu {cpu}",
                    pid,
                )
            elsewhere = self._running.get(pid)
            if elsewhere is not None:
                self._report(
                    "dispatch-while-running",
                    f"process {pid} dispatched on cpu {cpu} while already "
                    f"running on cpu {elsewhere}",
                    pid,
                )
            if process.state is not ProcessState.READY:
                self._report(
                    "dispatch-non-ready",
                    f"dispatch of process {pid} in state {process.state.name}",
                    pid,
                )
            if pid in self._queued:
                self._report(
                    "dispatch-queued",
                    f"process {pid} dispatched while still holding a live "
                    f"queue entry",
                    pid,
                )
            original(cpu, process)
            self._running[pid] = cpu
            self._maybe_deep()

        return _dispatch

    def _make_undispatch(self, original):
        def _undispatch(cpu):
            self._pre()
            current = self.kernel.machine.processors[cpu].current
            if current is None:
                self._report("undispatch-idle-cpu", f"undispatch of idle cpu {cpu}")
            process = original(cpu)
            tracked = self._running.pop(process.pid, None)
            if tracked != cpu:
                self._report(
                    "state-machine",
                    f"process {process.pid} undispatched from cpu {cpu} but "
                    f"the sanitizer tracked it on {tracked}",
                    process.pid,
                )
            # No deep check: the caller now owns a RUNNING-detached process
            # and will re-queue, block, or terminate it.
            return process

        return _undispatch

    def _make_preempt(self, original):
        def _preempt(cpu, reason):
            self._pre()
            process = self.kernel.machine.processors[cpu].current
            locks_held = process.locks_held if process is not None else 0
            original(cpu, reason=reason)
            if process is not None and locks_held > 0:
                # Witnessed, not inferred: the shim saw the lock count at
                # the moment of preemption itself.
                self.counters["lock_holder_preemptions_witnessed"] += 1
                self.kernel.trace.emit(
                    self.kernel.engine.now,
                    "sanitize.lock_holder_preempted",
                    pid=process.pid,
                    cpu=cpu,
                    locks_held=locks_held,
                    reason=reason,
                )
            self._maybe_deep()

        return _preempt

    def _make_block(self, original):
        def _block_current(cpu, reason):
            self._pre()
            process = self.kernel.machine.processors[cpu].current
            if process is not None and reason == "signal":
                # WaitSignal is the process-control suspension mechanism;
                # per Section 5 it may only happen at task-queue safe
                # points, where no spinlock is held and nothing spins.
                if process.locks_held > 0:
                    self._report(
                        "unsafe-suspension",
                        f"process {process.pid} suspended while holding "
                        f"{process.locks_held} spinlock(s)",
                        process.pid,
                    )
                if process.spinning_on is not None:
                    self._report(
                        "unsafe-suspension",
                        f"process {process.pid} suspended while spinning on "
                        f"{process.spinning_on.name!r}",
                        process.pid,
                    )
            result = original(cpu, reason)
            self._maybe_deep()
            return result

        return _block_current

    def _make_wake(self, original):
        def _wake(process):
            self._pre()
            pid = process.pid
            if process.state is not ProcessState.BLOCKED:
                self._report(
                    "wake-non-blocked",
                    f"wake of process {pid} in state {process.state.name}",
                    pid,
                )
            if pid in self._running:
                self._report(
                    "state-machine",
                    f"wake of process {pid} while tracked as running on "
                    f"cpu {self._running[pid]}",
                    pid,
                )
            original(process)
            self._maybe_deep()

        return _wake

    def _make_exit(self, original):
        def _exit_current(cpu):
            self._pre()
            process = self.kernel.machine.processors[cpu].current
            original(cpu)
            if process is not None:
                # The policy dropped its entries in on_process_exit; a
                # terminated process must not linger in the shadow census.
                self._queued.pop(process.pid, None)
            self._maybe_deep()

        return _exit_current

    def _make_terminate(self, original):
        def _terminate_off_cpu(process):
            self._pre()
            pid = process.pid
            if pid in self._running:
                self._report(
                    "state-machine",
                    f"off-cpu termination of process {pid} while tracked as "
                    f"running on cpu {self._running[pid]}",
                    pid,
                )
            original(process)
            # Same cleanup as the exit shim: the policy dropped any queue
            # entry the killed process still had.
            self._queued.pop(pid, None)
            self._maybe_deep()

        return _terminate_off_cpu

    # ------------------------------------------------------------------
    # Deep (safe-point) checks
    # ------------------------------------------------------------------

    def deep_check(self) -> None:
        """Full-state invariants, run only at transition boundaries."""
        self.counters["deep_checks"] += 1
        self._check_census()
        self._check_state_machine()
        self._check_calendar()
        if self._server is not None:
            self._check_server_share()

    def _check_census(self) -> None:
        census = self.kernel.policy.queued_census()
        if census is None:
            return
        for pid, entries in census.items():
            if entries != 1:
                self._report(
                    "census-mismatch",
                    f"process {pid} has {entries} live run-queue entries",
                    pid,
                )
            elif pid not in self._queued:
                self._report(
                    "census-mismatch",
                    f"process {pid} is on the run queue but was never "
                    f"enqueued (phantom entry)",
                    pid,
                )
        for pid in self._queued:
            if pid not in census:
                self._report(
                    "census-mismatch",
                    f"process {pid} was enqueued but has no live run-queue "
                    f"entry (lost entry)",
                    pid,
                )

    def _check_state_machine(self) -> None:
        kernel = self.kernel
        on_cpu: Dict[int, int] = {}
        for processor in kernel.machine.processors:
            current = processor.current
            if current is None:
                continue
            pid = current.pid
            if not kernel.cpu_is_online(processor.cpu_id):
                self._report(
                    "offline-cpu-busy",
                    f"offline cpu {processor.cpu_id} still runs process {pid}",
                    pid,
                )
            if pid in on_cpu:
                self._report(
                    "state-machine",
                    f"process {pid} is current on cpus {on_cpu[pid]} and "
                    f"{processor.cpu_id}",
                    pid,
                )
            on_cpu[pid] = processor.cpu_id
            if current.state is not ProcessState.RUNNING:
                self._report(
                    "state-machine",
                    f"process {pid} is current on cpu {processor.cpu_id} in "
                    f"state {current.state.name}",
                    pid,
                )
            if current.cpu != processor.cpu_id:
                self._report(
                    "state-machine",
                    f"process {pid} on cpu {processor.cpu_id} records "
                    f"cpu={current.cpu}",
                    pid,
                )
        if on_cpu != self._running:
            self._report(
                "state-machine",
                f"sanitizer running-map {self._running} disagrees with the "
                f"machine {on_cpu}",
            )
        for process in kernel.processes.values():
            pid = process.pid
            state = process.state
            if state is ProcessState.RUNNING:
                if pid not in on_cpu:
                    self._report(
                        "state-machine",
                        f"process {pid} is RUNNING but on no processor",
                        pid,
                    )
            elif state is ProcessState.READY:
                # Safe-point invariant: a READY process always has exactly
                # one live queue entry (shims never deep-check mid-handoff).
                if pid not in self._queued:
                    self._report(
                        "state-machine",
                        f"process {pid} is READY but on no run queue",
                        pid,
                    )
            else:
                if pid in self._queued:
                    self._report(
                        "state-machine",
                        f"process {pid} is {state.name} but still has a "
                        f"live queue entry",
                        pid,
                    )
                if pid in on_cpu:
                    self._report(
                        "state-machine",
                        f"process {pid} is {state.name} but current on cpu "
                        f"{on_cpu[pid]}",
                        pid,
                    )

    def _check_calendar(self) -> None:
        engine = self.kernel.engine
        now = engine.now
        live = 0
        for time, handle in engine.calendar_entries():
            if handle.callback is None:
                continue
            live += 1
            if time < now:
                self._report(
                    "calendar-past-event",
                    f"live event {handle.label!r} scheduled at {time}us but "
                    f"the clock is at {now}us",
                )
        if live != engine.pending_count:
            self._report(
                "calendar-count",
                f"pending_count says {engine.pending_count} live events but "
                f"the calendar holds {live}",
            )

    def _in_policy_transition(self, app_id: str, now: int) -> bool:
        """True while *app_id*'s responsible server digests a policy swap.

        The tolerance lasts one server interval (the swapped rule's first
        scan) plus the usual compliance window (the packages' re-poll
        slack) from the recorded ``policy_swapped_at``.  With a control
        plane the app's own shard is consulted; unrouted apps (or a bare
        server) fall back to every watched server's stamp.
        """
        server = self._server
        shards = getattr(server, "servers", None)
        if shards is not None:
            index = getattr(server, "assignment", {}).get(app_id)
            if index is not None and 0 <= index < len(shards):
                candidates = [shards[index]]
            else:
                candidates = list(shards)
        else:
            candidates = [server]
        for candidate in candidates:
            swapped_at = getattr(candidate, "policy_swapped_at", None)
            if swapped_at is None:
                continue
            interval = getattr(candidate, "interval", 0) or 0
            if now - swapped_at <= interval + self._compliance_window:
                return True
        return False

    def _check_server_share(self) -> None:
        # Ask the watched server (or control plane) what the active policy
        # has actually published -- with sharded servers this merges every
        # shard's board, with each application judged by its own shard's
        # word.  Bare boards (hand-built test rigs) are read directly.
        published = getattr(self._server, "published_targets", None)
        if published is not None:
            targets_map = published()
        else:
            targets_map = self._server.board.targets
        if not targets_map:
            return
        kernel = self.kernel
        now = kernel.engine.now
        runnable: Dict[str, int] = {}
        for process in kernel.processes.values():
            if process.controllable and process.runnable and process.app_id:
                runnable[process.app_id] = runnable.get(process.app_id, 0) + 1
        # A package is accountable to the target it has actually *adopted*
        # (``control.target``), not to whatever the board says this instant:
        # targets only bind once read at a poll, and during a control-plane
        # outage (dropped polls, crashed server) the package cannot see the
        # board's newer word at all.  Failure to refresh is policed by the
        # stale-target TTL, not by this check.  An adopted target of ``None``
        # means the control released it (TTL expiry) and the application
        # legitimately runs at full parallelism until the next fresh poll.
        # Applications without a watched package fall back to the board word.
        adopted = {
            package.app_id: package.control.target
            for package in self._packages
        }
        for app_id, target in targets_map.items():
            if app_id in adopted:
                if adopted[app_id] is None:
                    self._overrun_since.pop(app_id, None)
                    continue
                target = adopted[app_id]
            granted = max(target, 1)
            count = runnable.get(app_id, 0)
            if count <= granted:
                self._overrun_since.pop(app_id, None)
                continue
            if self._in_policy_transition(app_id, now):
                # A hot policy swap (server.set_policy) was taken within
                # the last scan-plus-compliance window: the board may
                # still carry the *old* rule's word while packages have
                # adopted it, so a transient overrun against the new
                # rule's tighter grant is legitimate until the swapped
                # server has scanned and the packages have re-polled.
                self._overrun_since.pop(app_id, None)
                continue
            previous = self._overrun_since.get(app_id)
            if previous is None or previous[0] != target:
                # New overrun (or the grant changed): start the clock.
                self._overrun_since[app_id] = (target, now)
            elif now - previous[1] > self._compliance_window:
                self._report(
                    "share-overrun",
                    f"application {app_id!r} has {count} runnable workers, "
                    f"above its granted {granted}, sustained for "
                    f"{now - previous[1]}us",
                )
                self._overrun_since[app_id] = (target, now)


#: Sentinel distinguishing "no instance attribute existed" in detach().
_MISSING = object()
