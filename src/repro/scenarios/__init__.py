"""Declarative scenario corpus + co-simulation oracle.

This package turns the repo's test surface into data:

- :mod:`~repro.scenarios.spec` -- :class:`ScenarioCase` records (machine
  shape, apps, scheduler x policy x shards x faults coordinates, seed)
  with declared :class:`Expect` invariants; round-trips through dicts/YAML.
- :mod:`~repro.scenarios.catalog` -- the seeded corpus (~70 cases across
  eight families), filterable by coordinate.
- :mod:`~repro.scenarios.runner` -- the one runner executing cases for
  pytest, the CLI, and CI, serially or over the parallel sweep harness.
- :mod:`~repro.scenarios.builders` -- the shared machine/application
  builders (hoisted from the test suite's conftest).
- :mod:`~repro.scenarios.golden` -- golden-pin storage with a first-class
  ``REPRO_UPDATE_GOLDEN`` regeneration path and uniform mismatch messages.
- :mod:`~repro.scenarios.cosim` -- the co-simulation oracle: the same
  task-queue workload through the simulator and through
  :mod:`repro.realsys` OS processes, timelines diffed within declared
  tolerance bands.

See ``docs/SCENARIOS.md`` for the schema and how to add a case.
"""

from repro.scenarios.catalog import (
    all_cases,
    case_names,
    coverage_summary,
    filter_cases,
    get_case,
)
from repro.scenarios.runner import (
    CaseOutcome,
    CatalogReport,
    run_case,
    run_catalog,
)
from repro.scenarios.spec import CaseApp, Expect, ScenarioCase

__all__ = [
    "CaseApp",
    "CaseOutcome",
    "CatalogReport",
    "Expect",
    "ScenarioCase",
    "all_cases",
    "case_names",
    "coverage_summary",
    "filter_cases",
    "get_case",
    "run_case",
    "run_catalog",
]
