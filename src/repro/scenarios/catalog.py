"""The seeded scenario corpus.

Everything here is *data construction*: each function emits
:class:`~repro.scenarios.spec.ScenarioCase` records for one family, and
:func:`build_catalog` concatenates them into the corpus the pytest
parametrization, the ``python -m repro scenarios`` CLI, and the CI
``scenario-corpus`` job all execute through the one runner in
:mod:`repro.scenarios.runner`.

Families:

- ``cross``     -- every scheduler x allocation-policy combination (plus
                   the partition scheduler's ``space`` policy and sharded
                   variants), under moderate overload.  Digest-pinned.
- ``overload``  -- arrival ramps that push the machine far past capacity.
- ``bursty``    -- simultaneous-arrival bursts and two-wave patterns.
- ``gang``      -- adversarial gang/barrier patterns for the coscheduling
                   and group schedulers, including a greedy uncontrolled
                   tenant.
- ``hotplug``   -- cpu hot-plug storms (capacity churn under control).
- ``failover``  -- server crashes, shard-targeted crashes, supervised
                   failover, and crash-under-arrival-churn.
- ``storm``     -- message-level chaos: poll/channel drop/dup/delay,
                   clock jitter, preemption storms.
- ``service``   -- open-arrival request streams with tail-latency SLOs
                   next to a batch tenant: steady state, overload,
                   bursty waves, the slo/demand/equal policy cross, and
                   a shard crash under live load.
- ``runtime``   -- mixed threads-package runtimes: fork-join tenants that
                   adopt targets only at phase barriers, pipelines with
                   structural one-worker-per-stage floors, and the
                   equal-vs-compliance policy cross over the mix, with
                   adoption-lag bands pinning the deferred-adoption
                   contract.
- ``locks``     -- lock-saturation collapse: an oversubscribed lock tenant
                   unrestricted vs concurrency-restricted (spin and
                   blocking), restriction composed with processor control
                   over an overcommitted machine, scenario-wide admission
                   through the queue lock, and a cpu-offline fault under
                   contention.  Restricted cases carry a passivation
                   census proving culling actually engaged.
- ``fuzz``      -- workloads drawn from the seeded random generator, half
                   of them with random fault plans layered on top.

Adding coverage is an append to one of these lists (or a YAML corpus via
:func:`repro.scenarios.spec.load_cases_yaml`); no new runner code.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Dict, List, Optional, Sequence

from repro.core.allocation import POLICY_NAMES
from repro.faults.plan import random_fault_spec
from repro.scenarios.spec import CaseApp, Expect, ScenarioCase
from repro.sim import units
from repro.workloads.generator import GeneratedWorkloadConfig, generate_arrivals
from repro.workloads.schedulers import SCHEDULER_NAMES

ms = units.ms

#: Poll/server cadence used corpus-wide: fast enough that every case sees
#: several control decisions before its applications finish.
_INTERVAL = ms(10)


def _case(name: str, family: str, apps: Sequence[CaseApp], **kw) -> ScenarioCase:
    kw.setdefault("server_interval", _INTERVAL)
    kw.setdefault("poll_interval", _INTERVAL)
    return ScenarioCase(name=name, family=family, apps=tuple(apps), **kw)


def _overloaded_trio(seed: int = 0) -> List[CaseApp]:
    """Three applications totalling 18 workers (on 8 CPUs): the standard
    moderate-overload workload of the cross family.  Arrivals are packed
    tightly and each application carries ~60 ms of work, so all three
    overlap for several server intervals and process control visibly
    engages (the cross family asserts at least one suspension)."""
    return [
        CaseApp("uniform", n_processes=6, arrival=0, n_tasks=40, task_cost=ms(4)),
        CaseApp("csection", n_processes=6, arrival=ms(4), n_tasks=40, task_cost=ms(4)),
        CaseApp("uniform", n_processes=6, arrival=ms(8), n_tasks=32, task_cost=ms(4)),
    ]


# -- cross family --------------------------------------------------------------


def cross_cases() -> List[ScenarioCase]:
    """Every scheduler x policy cross, digest-pinned.

    ``decay-ref`` is included deliberately: it must stay bit-identical to
    ``decay`` (the sanitizer's differential-oracle contract), and pinning
    both digests makes that contract visible as corpus data.
    """
    cases: List[ScenarioCase] = []
    expect = Expect(pin_digest=True, min_total_suspensions=1)
    for scheduler in SCHEDULER_NAMES:
        for policy in POLICY_NAMES:
            cases.append(
                _case(
                    f"cross-{scheduler}-{policy}",
                    "cross",
                    _overloaded_trio(),
                    scheduler=scheduler,
                    policy=policy,
                    expect=expect,
                )
            )
    # The space policy wraps the live partition scheduler; it is the only
    # scheduler it is legal for.
    cases.append(
        _case(
            "cross-partition-space",
            "cross",
            _overloaded_trio(),
            scheduler="partition",
            policy="space",
            expect=expect,
        )
    )
    # Sharded control-plane variants of the cross (shards=2 must keep every
    # invariant; its digest is pinned separately from the 1-shard world).
    for scheduler in ("fifo", "decay", "partition"):
        cases.append(
            _case(
                f"cross-{scheduler}-equal-shards2",
                "cross",
                _overloaded_trio(),
                scheduler=scheduler,
                policy="equal",
                shards=2,
                expect=expect,
            )
        )
    return cases


# -- overload family -----------------------------------------------------------


def overload_cases() -> List[ScenarioCase]:
    """Arrival ramps: each new application is bigger than the last, on a
    4-CPU machine -- by the end the load is ~7x capacity."""
    ramp = [
        CaseApp(
            "uniform",
            n_processes=2 + 2 * i,
            arrival=ms(10) * i,
            n_tasks=24,
            task_cost=ms(3),
        )
        for i in range(5)
    ]
    combos = [
        ("fifo", "equal", 1),
        ("decay", "equal", 1),
        ("decay", "demand", 1),
        ("nopreempt", "weighted", 1),
        ("partition", "space", 1),
        ("decay", "equal", 2),
    ]
    expect = Expect(pin_digest=True, min_total_suspensions=2)
    return [
        _case(
            f"overload-ramp-{scheduler}-{policy}"
            + ("-shards2" if shards > 1 else ""),
            "overload",
            ramp,
            n_processors=4,
            scheduler=scheduler,
            policy=policy,
            shards=shards,
            expect=expect,
        )
        for scheduler, policy, shards in combos
    ]


# -- bursty family -------------------------------------------------------------


def bursty_cases() -> List[ScenarioCase]:
    """Simultaneous arrivals: the worst case for any incremental
    allocation path (every registration lands in one server interval)."""
    burst = [
        CaseApp("uniform", 4, n_tasks=20, task_cost=ms(3)),
        CaseApp("csection", 4, n_tasks=20, task_cost=ms(3)),
        CaseApp("uniform", 4, n_tasks=14, task_cost=ms(3)),
        CaseApp("barrier", 4, n_tasks=5, task_cost=ms(1)),
    ]
    two_waves = [
        CaseApp("uniform", 4, arrival=0, n_tasks=16, task_cost=ms(3)),
        CaseApp("uniform", 4, arrival=0, n_tasks=16, task_cost=ms(3)),
        CaseApp("csection", 4, arrival=ms(50), n_tasks=16, task_cost=ms(3)),
        CaseApp("uniform", 4, arrival=ms(50), n_tasks=16, task_cost=ms(3)),
    ]
    expect = Expect(pin_digest=True)
    cases = [
        _case(
            f"bursty-one-wave-{scheduler}",
            "bursty",
            burst,
            scheduler=scheduler,
            policy="equal",
            expect=expect,
        )
        for scheduler in ("fifo", "decay", "affinity", "groups")
    ]
    cases += [
        _case(
            f"bursty-two-waves-{scheduler}",
            "bursty",
            two_waves,
            scheduler=scheduler,
            policy="demand",
            expect=expect,
        )
        for scheduler in ("decay", "affinity")
    ]
    return cases


# -- gang family ---------------------------------------------------------------


def gang_cases() -> List[ScenarioCase]:
    """Adversarial gang patterns: barrier applications whose gang size
    equals the machine, so two can never co-run; plus a greedy tenant that
    refuses process control next to a polite one."""
    machine_gangs = [
        CaseApp("barrier", 4, n_tasks=6, task_cost=ms(2)),
        CaseApp("barrier", 4, arrival=ms(8), n_tasks=6, task_cost=ms(2)),
    ]
    greedy_mix = [
        CaseApp("uniform", 4, n_tasks=24, task_cost=ms(3)),
        CaseApp("uniform", 6, n_tasks=24, task_cost=ms(3), control="off"),
    ]
    expect = Expect(pin_digest=True)
    cases = [
        _case(
            f"gang-machine-size-{scheduler}",
            "gang",
            machine_gangs,
            n_processors=4,
            scheduler=scheduler,
            policy="equal",
            expect=expect,
        )
        for scheduler in ("coscheduling", "groups", "fifo")
    ]
    cases += [
        _case(
            f"gang-greedy-tenant-{scheduler}",
            "gang",
            greedy_mix,
            n_processors=4,
            scheduler=scheduler,
            policy="equal",
            expect=expect,
        )
        for scheduler in ("coscheduling", "decay", "partition")
    ]
    return cases


# -- fault families ------------------------------------------------------------

#: Loose completion-inflation bound for faulted runs: faults remove
#: capacity or delay control messages, but graceful degradation must keep
#: the slowdown bounded (the chaos campaign's historical worst is ~1.12x;
#: these corpus workloads are smaller, so the band is wider).
_FAULT_EXPECT = Expect(
    pin_digest=False, min_total_suspensions=0, max_inflation=6.0
)


def hotplug_cases() -> List[ScenarioCase]:
    """CPU hot-plug storms: capacity collapses and returns while the
    control plane keeps partitioning what remains."""
    apps = [
        CaseApp("uniform", 4, n_tasks=22, task_cost=ms(3)),
        CaseApp("csection", 4, arrival=ms(10), n_tasks=22, task_cost=ms(3)),
    ]
    storm = ";".join(
        f"cpu-offline:cpu={cpu},at={10 + 7 * cpu}ms,duration={30 + 5 * cpu}ms"
        for cpu in (1, 2, 3)
    )
    single = "cpu-offline:cpu=0,at=15ms,duration=60ms"
    flap = (
        "cpu-offline:cpu=1,at=10ms,duration=12ms;"
        "cpu-offline:cpu=1,at=40ms,duration=12ms;"
        "cpu-offline:cpu=2,at=25ms,duration=12ms"
    )
    cases = []
    for scheduler in ("fifo", "decay"):
        cases.append(
            _case(
                f"hotplug-storm-{scheduler}",
                "hotplug",
                apps,
                n_processors=4,
                scheduler=scheduler,
                policy="equal",
                faults=storm,
                expect=_FAULT_EXPECT,
            )
        )
        cases.append(
            _case(
                f"hotplug-single-{scheduler}",
                "hotplug",
                apps,
                n_processors=4,
                scheduler=scheduler,
                policy="demand",
                faults=single,
                expect=_FAULT_EXPECT,
            )
        )
    cases.append(
        _case(
            "hotplug-flapping-decay",
            "hotplug",
            apps,
            n_processors=4,
            scheduler="decay",
            policy="equal",
            faults=flap,
            expect=_FAULT_EXPECT,
        )
    )
    cases.append(
        _case(
            "hotplug-storm-partition-space",
            "hotplug",
            apps,
            n_processors=4,
            scheduler="partition",
            policy="space",
            faults=storm,
            expect=_FAULT_EXPECT,
        )
    )
    return cases


def failover_cases() -> List[ScenarioCase]:
    """Server and shard crashes, with and without the watchdog, including
    crashes that land while new applications are still arriving."""
    # 8 workers on 4 CPUs, ~240 ms of work per application: long enough
    # that the post-crash poll backoff reaches the stale-target TTL while
    # work remains, so the release-to-full-parallelism path actually runs.
    apps = [
        CaseApp("uniform", 4, n_tasks=80, task_cost=ms(3)),
        CaseApp("uniform", 4, arrival=ms(15), n_tasks=80, task_cost=ms(3)),
    ]
    churn = apps + [
        CaseApp("csection", 4, arrival=ms(45), n_tasks=24, task_cost=ms(3)),
    ]
    # The crash lands just *after* the throttled {2,2} targets were
    # adopted, and down=200ms far exceeds the runner-derived stale-target
    # TTL (4 x 10ms intervals = 40ms) -- so unsupervised cases must walk
    # the full degradation staircase: failed polls, TTL expiry, release
    # back to full parallelism.
    crash = "server-crash:at=35ms,down=200ms"
    shard_crash = "server-crash:at=35ms,down=200ms,shard=1"
    cases = [
        _case(
            "failover-crash-unsupervised",
            "failover",
            apps,
            n_processors=4,
            scheduler="decay",
            policy="equal",
            faults=crash,
            expect=replace(
                _FAULT_EXPECT, min_total_suspensions=1, min_target_expiries=1
            ),
        ),
        _case(
            "failover-crash-supervised",
            "failover",
            apps,
            n_processors=4,
            scheduler="decay",
            policy="equal",
            faults=crash,
            supervise=True,
            expect=_FAULT_EXPECT,
        ),
        _case(
            "failover-shard-crash",
            "failover",
            apps,
            n_processors=4,
            scheduler="decay",
            policy="equal",
            shards=2,
            faults=shard_crash,
            expect=_FAULT_EXPECT,
        ),
        _case(
            "failover-shard-crash-supervised",
            "failover",
            apps,
            n_processors=4,
            scheduler="decay",
            policy="equal",
            shards=2,
            faults=shard_crash,
            supervise=True,
            expect=_FAULT_EXPECT,
        ),
        _case(
            "failover-crash-under-churn",
            "failover",
            churn,
            n_processors=4,
            scheduler="fifo",
            policy="demand",
            faults=crash,
            expect=_FAULT_EXPECT,
        ),
        _case(
            "failover-shard-crash-under-churn",
            "failover",
            churn,
            n_processors=4,
            scheduler="decay",
            policy="demand",
            shards=2,
            faults=shard_crash,
            supervise=True,
            expect=_FAULT_EXPECT,
        ),
    ]
    return cases


def storm_cases() -> List[ScenarioCase]:
    """Message-level chaos: the control loop's traffic is dropped,
    duplicated, delayed, and jittered while the workload runs."""
    apps = [
        CaseApp("uniform", 4, n_tasks=30, task_cost=ms(3)),
        CaseApp("csection", 4, arrival=ms(10), n_tasks=30, task_cost=ms(3)),
    ]
    specs = {
        "poll-drop": "poll-drop:at=10ms,duration=80ms,p=0.6",
        "poll-delay": "poll-delay:at=10ms,duration=80ms,delay=7ms",
        "poll-dup": "poll-dup:at=10ms,duration=80ms",
        "chan-drop": "chan-drop:at=10ms,duration=80ms,p=0.6",
        "chan-dup": "chan-dup:at=10ms,duration=80ms,p=0.6",
        "clock-jitter": "clock-jitter:at=5ms,duration=100ms,amp=2ms",
        "preempt-storm": "preempt-storm:at=10ms,duration=60ms,period=4ms",
        "combined": (
            "poll-drop:at=10ms,duration=60ms,p=0.5;"
            "chan-dup:at=20ms,duration=60ms,p=0.5;"
            "preempt-storm:at=30ms,duration=40ms,period=5ms"
        ),
    }
    return [
        _case(
            f"storm-{label}",
            "storm",
            apps,
            n_processors=4,
            scheduler="decay" if index % 2 else "fifo",
            policy="equal",
            faults=spec,
            expect=_FAULT_EXPECT,
        )
        for index, (label, spec) in enumerate(sorted(specs.items()))
    ]


# -- service family ------------------------------------------------------------


def _service_mix(
    rate_per_s: float = 300.0,
    fanout: int = 3,
    stage_cost: int = ms(3),
    slo_us: int = ms(25),
    burst_factor: Optional[float] = None,
) -> List[CaseApp]:
    """An interactive request stream next to a uniform batch tenant.

    Sized so the policies actually diverge: the stream offers ~3.2 of 8
    CPUs (plus dispatch overhead, it backs up at its 4-CPU equipartition
    share), the batch tenant brings 400 ms of work so the machine stays
    contended past the whole ~200 ms arrival window, and the window is
    long enough that the SLO policy's pressure estimate -- fed by QoS
    reports that only start once requests complete -- ramps up with most
    of the stream still ahead of it.
    """
    return [
        CaseApp(
            "service",
            n_processes=6,
            name="svc",
            task_cost=stage_cost,
            rate_per_s=rate_per_s,
            n_requests=60,
            fanout=fanout,
            slo_us=slo_us,
            burst_factor=burst_factor,
        ),
        CaseApp("uniform", n_processes=6, name="bg", n_tasks=100, task_cost=ms(4)),
    ]


def service_cases() -> List[ScenarioCase]:
    """Open-arrival services under every interesting coordinate.

    All cases run the blocking (``idle_spin=False``) threads package: a
    busy-wait worker deep in its idle backoff picks up a fresh request
    just as late as a blocked one, but adds milliseconds of noise that
    would wash out the latency bands.  Bands carry ~2x headroom over the
    measured seed values; digests pin the exact world.
    """
    cases: List[ScenarioCase] = []
    # The slo/demand/equal policy cross on the same steady mix.  The slo
    # arm must hold a much tighter tail band than equal, and demand --
    # which misreads an open stream's between-arrivals backlog snapshot
    # as idleness -- only has to finish (its tail is unbounded by design).
    policy_bands = {
        "slo": Expect(
            pin_digest=True,
            min_total_suspensions=1,
            min_requests=60,
            max_p99=ms(45),
            max_violation_rate=0.85,
        ),
        "equal": Expect(
            pin_digest=True,
            min_total_suspensions=1,
            min_requests=60,
            max_p99=ms(65),
        ),
        "demand": Expect(
            pin_digest=True, min_total_suspensions=1, min_requests=60
        ),
    }
    for policy, expect in policy_bands.items():
        cases.append(
            _case(
                f"service-steady-fifo-{policy}",
                "service",
                _service_mix(),
                policy=policy,
                idle_spin=False,
                expect=expect,
            )
        )
    cases.append(
        _case(
            "service-steady-decay-slo",
            "service",
            _service_mix(),
            scheduler="decay",
            policy="slo",
            idle_spin=False,
            expect=policy_bands["slo"],
        )
    )
    # Overload: the stream alone offers ~6 of 8 CPUs; with the batch
    # tenant the machine is past capacity, so the band only asserts
    # completion and the request census, not a tail.
    cases.append(
        _case(
            "service-overload-slo",
            "service",
            _service_mix(rate_per_s=450.0, fanout=4, stage_cost=ms(3), slo_us=ms(40)),
            policy="slo",
            idle_spin=False,
            expect=Expect(
                pin_digest=True, min_total_suspensions=1, min_requests=60
            ),
        )
    )
    # Bursty wave: same average rate as steady, but the p99 lives inside
    # the bursts -- the workload that separates tail-aware from mean-aware.
    cases.append(
        _case(
            "service-bursty-wave-slo",
            "service",
            _service_mix(burst_factor=4.0),
            policy="slo",
            idle_spin=False,
            expect=Expect(
                pin_digest=True,
                min_total_suspensions=1,
                min_requests=60,
                max_p99=ms(80),
            ),
        )
    )
    # A control-plane shard crashes mid-stream; requests must keep
    # completing (bounded inflation, full census), exercising the QoS
    # reports' survival across the degraded window.
    cases.append(
        _case(
            "service-shard-crash-slo",
            "service",
            _service_mix(),
            policy="slo",
            shards=2,
            idle_spin=False,
            faults="server-crash:at=30ms,down=120ms,shard=1",
            expect=replace(_FAULT_EXPECT, min_requests=60),
        )
    )
    # Chaos-under-service: a random fault plan drawn from the same
    # generator the fuzz family uses, targeting the service mix through
    # the ordinary spec-validation path.
    cases.append(
        _case(
            "service-fuzz-faulted-slo",
            "service",
            _service_mix(),
            policy="slo",
            idle_spin=False,
            faults=random_fault_spec(
                seed=31, horizon=units.ms(150), n_faults=2, cpus=8
            ),
            expect=replace(_FAULT_EXPECT, min_requests=60),
        )
    )
    return cases


# -- runtime family ------------------------------------------------------------


def runtime_cases() -> List[ScenarioCase]:
    """Mixed threads-package runtimes under process control.

    The fork-join cases must record at least one *completed adoption*
    (publish-to-conformance cycle) with a bounded lag -- the deferred-
    adoption contract as corpus data.  The pipeline cases pin the
    structural floor world: one worker per stage never suspends, and the
    census still completes every stage crossing.  The mixed cases run
    the whole continuum (taskqueue / forkjoin / pipeline / an
    uncontrolled tenant) under both the paper's equipartition and the
    compliance policy, digest-pinned.
    """
    adoption_expect = Expect(
        pin_digest=True,
        min_total_suspensions=1,
        min_adoptions=1,
        # A fork-join runtime adopts within a phase: 4-task phases at
        # ~3 ms across >= 2 granted workers, plus poll cadence -- tens of
        # ms.  The band carries ~2x headroom over the measured seed.
        max_adoption_lag=ms(60),
    )
    cases = [
        _case(
            "runtime-forkjoin-adoption",
            "runtime",
            [
                CaseApp(
                    "barrier",
                    n_processes=6,
                    n_tasks=8,
                    task_cost=ms(3),
                    runtime="forkjoin",
                ),
                CaseApp("uniform", n_processes=6, n_tasks=40, task_cost=ms(4)),
                CaseApp(
                    "uniform",
                    n_processes=6,
                    arrival=ms(4),
                    n_tasks=32,
                    task_cost=ms(4),
                ),
            ],
            policy="equal",
            expect=adoption_expect,
        ),
        _case(
            "runtime-pipeline-floor",
            "runtime",
            [
                CaseApp(
                    "pipeline",
                    n_processes=6,
                    n_tasks=32,
                    task_cost=ms(2),
                    runtime="pipeline",
                ),
                CaseApp("uniform", n_processes=6, n_tasks=40, task_cost=ms(4)),
                CaseApp(
                    "uniform",
                    n_processes=6,
                    arrival=ms(4),
                    n_tasks=32,
                    task_cost=ms(4),
                ),
            ],
            policy="equal",
            expect=Expect(pin_digest=True, min_total_suspensions=1),
        ),
    ]
    # The full continuum -- taskqueue, forkjoin, pipeline, and a greedy
    # uncontrolled tenant -- under equipartition vs the compliance policy.
    continuum = [
        CaseApp("uniform", n_processes=5, n_tasks=32, task_cost=ms(4)),
        CaseApp(
            "barrier",
            n_processes=5,
            arrival=ms(2),
            n_tasks=6,
            task_cost=ms(3),
            runtime="forkjoin",
        ),
        CaseApp(
            "pipeline",
            n_processes=5,
            arrival=ms(4),
            n_tasks=24,
            task_cost=ms(2),
            runtime="pipeline",
        ),
        CaseApp(
            "uniform",
            n_processes=4,
            arrival=ms(6),
            n_tasks=24,
            task_cost=ms(4),
            control="off",
        ),
    ]
    for policy in ("equal", "compliance"):
        cases.append(
            _case(
                f"runtime-continuum-{policy}",
                "runtime",
                continuum,
                policy=policy,
                expect=Expect(pin_digest=True, min_total_suspensions=1),
            )
        )
    return cases


# -- locks family --------------------------------------------------------------


def locks_cases() -> List[ScenarioCase]:
    """Lock-saturation collapse and concurrency restriction as corpus data.

    Ten lock threads on eight CPUs with the standard collapse shape
    (600 us think / 150 us critical section / 40 us-per-spinner hand-off
    surcharge) keep the lock saturated for the whole run, so the
    restricted cases must actually cull (the passivation census).  No
    kill faults here: a killed spinlock *holder* would deadlock the rest
    of the app by design, which is a sync-edge unit test, not a corpus
    invariant.
    """

    def lock_app(**kw) -> CaseApp:
        kw.setdefault("n_tasks", 48)
        kw.setdefault("task_cost", 600)
        kw.setdefault("cs_cost", 150)
        kw.setdefault("contention_penalty", 40)
        return CaseApp("locks", n_processes=10, name="locks", **kw)

    restricted = Expect(pin_digest=True, min_passivations=1)
    cases = [
        # The bare collapse: no process control, no restriction -- the
        # pinned world the telemetry narrates (peak spinner storms).
        _case(
            "locks-collapse-unrestricted",
            "locks",
            [lock_app()],
            control=None,
            policy="equal",
            expect=Expect(pin_digest=True),
        ),
        # Restriction alone fixes the storm without any control plane.
        _case(
            "locks-restricted-spin",
            "locks",
            [lock_app(admission=1)],
            control=None,
            policy="equal",
            expect=restricted,
        ),
        # The blocking variant: culled mutex waiters readmit LIFO.
        _case(
            "locks-restricted-mutex",
            "locks",
            [lock_app(admission=2, blocking=True)],
            control=None,
            policy="equal",
            expect=restricted,
        ),
        # Waiter control composed with processor control over an
        # overcommitted machine (a compute tenant shares the 8 CPUs).
        _case(
            "locks-combined-control",
            "locks",
            [
                lock_app(admission=1),
                CaseApp("uniform", 6, name="bg", n_tasks=24, task_cost=ms(3)),
            ],
            policy="equal",
            expect=replace(restricted, min_total_suspensions=1),
        ),
        # Scenario-wide admission: the case-level knob must reach the
        # app lock *and* the task-queue lock without per-app settings.
        _case(
            "locks-scenario-admission",
            "locks",
            [lock_app()],
            lock_admission=2,
            policy="equal",
            expect=restricted,
        ),
        # Capacity loss under contention: a CPU goes away mid-storm and
        # comes back; bounded inflation, full census.
        _case(
            "locks-cpu-offline",
            "locks",
            [lock_app(admission=1)],
            faults="cpu-offline:cpu=1,at=5ms,duration=25ms",
            policy="equal",
            expect=replace(_FAULT_EXPECT, min_passivations=1),
        ),
    ]
    return cases


# -- fuzz family ---------------------------------------------------------------

#: The generator draws arrivals from this mix of *synthetic* templates
#: (cheap and census-checkable), with small machines and short windows so
#: a dozen fuzz cases cost pytest seconds, not minutes.
_FUZZ_CONFIG = GeneratedWorkloadConfig(
    window=units.ms(120),
    arrival_rate_per_s=40.0,
    mix={"uniform": 2.0, "csection": 1.0, "barrier": 1.0},
    process_counts=(3, 4, 6),
    scale_range=(0.2, 0.6),
    min_apps=3,
)

_FUZZ_SEEDS = range(12)


def _fuzz_apps(seed: int) -> List[CaseApp]:
    apps: List[CaseApp] = []
    for generated in generate_arrivals(_FUZZ_CONFIG, seed=seed):
        if generated.template == "barrier":
            n_tasks = 3 + int(generated.scale * 6)  # phases
            cost = ms(1)
        else:
            n_tasks = 10 + int(generated.scale * 25)
            cost = ms(3)
        apps.append(
            CaseApp(
                generated.template,
                n_processes=generated.n_processes,
                arrival=generated.arrival,
                name=generated.app_id,
                n_tasks=n_tasks,
                task_cost=cost,
            )
        )
    return apps


def fuzz_cases() -> List[ScenarioCase]:
    """Seeded random workloads; odd seeds additionally draw a random fault
    plan from the same seed, so half the family is chaos-under-fuzz."""
    cases: List[ScenarioCase] = []
    schedulers = ("fifo", "decay", "partition", "coscheduling")
    policies = ("equal", "demand", "weighted")
    for seed in _FUZZ_SEEDS:
        scheduler = schedulers[seed % len(schedulers)]
        policy = policies[seed % len(policies)]
        if scheduler == "partition" and seed % 2 == 0:
            policy = "space"
        faults: Optional[str] = None
        expect = Expect(pin_digest=True)
        if seed % 2 == 1:
            faults = random_fault_spec(
                seed=seed, horizon=units.ms(150), n_faults=2, cpus=8
            )
            expect = _FAULT_EXPECT
        cases.append(
            _case(
                f"fuzz-{seed:02d}-{scheduler}-{policy}"
                + ("-faulted" if faults else ""),
                "fuzz",
                _fuzz_apps(seed),
                scheduler=scheduler,
                policy=policy,
                faults=faults,
                seed=seed,
                expect=expect,
            )
        )
    return cases


# -- the corpus ----------------------------------------------------------------


def build_catalog() -> List[ScenarioCase]:
    """The full corpus, in stable order, with unique names."""
    cases = (
        cross_cases()
        + overload_cases()
        + bursty_cases()
        + gang_cases()
        + hotplug_cases()
        + failover_cases()
        + storm_cases()
        + service_cases()
        + runtime_cases()
        + locks_cases()
        + fuzz_cases()
    )
    names = [case.name for case in cases]
    duplicates = {name for name in names if names.count(name) > 1}
    if duplicates:  # pragma: no cover - catalog construction bug
        raise ValueError(f"duplicate case names in catalog: {sorted(duplicates)}")
    return cases


_CATALOG_CACHE: Optional[List[ScenarioCase]] = None


def all_cases() -> List[ScenarioCase]:
    """The corpus (built once per process; records are immutable)."""
    global _CATALOG_CACHE
    if _CATALOG_CACHE is None:
        _CATALOG_CACHE = build_catalog()
    return list(_CATALOG_CACHE)


def case_names() -> List[str]:
    return [case.name for case in all_cases()]


def get_case(name: str) -> ScenarioCase:
    for case in all_cases():
        if case.name == name:
            return case
    raise KeyError(
        f"no catalog case named {name!r}; see `python -m repro scenarios list`"
    )


def filter_cases(
    cases: Optional[Sequence[ScenarioCase]] = None,
    scheduler: Optional[str] = None,
    policy: Optional[str] = None,
    fault: Optional[str] = None,
    family: Optional[str] = None,
    name: Optional[str] = None,
) -> List[ScenarioCase]:
    """Select corpus entries by coordinate.

    ``fault`` matches an injector kind (``"server-crash"``) or the special
    values ``"any"`` (only faulted cases) / ``"none"`` (only healthy ones);
    ``name`` is a substring match on the case name.
    """
    selected = list(all_cases() if cases is None else cases)
    if scheduler is not None:
        selected = [c for c in selected if c.scheduler == scheduler]
    if policy is not None:
        selected = [c for c in selected if c.policy_label == policy]
    if family is not None:
        selected = [c for c in selected if c.family == family]
    if fault is not None:
        if fault == "any":
            selected = [c for c in selected if c.fault_kinds]
        elif fault == "none":
            selected = [c for c in selected if not c.fault_kinds]
        else:
            selected = [c for c in selected if fault in c.fault_kinds]
    if name is not None:
        selected = [c for c in selected if name in c.name]
    return selected


def coverage_summary(cases: Optional[Sequence[ScenarioCase]] = None) -> Dict[str, int]:
    """Small corpus census: cases per family plus cross-coverage counts."""
    selected = list(all_cases() if cases is None else cases)
    summary: Dict[str, int] = {"total": len(selected)}
    for case in selected:
        summary[f"family:{case.family}"] = summary.get(f"family:{case.family}", 0) + 1
        for kind in set(case.fault_kinds):
            summary[f"fault:{kind}"] = summary.get(f"fault:{kind}", 0) + 1
    summary["schedulers"] = len({c.scheduler for c in selected})
    summary["policies"] = len({c.policy_label for c in selected})
    summary["digest_pinned"] = sum(1 for c in selected if c.expect.pin_digest)
    return summary
