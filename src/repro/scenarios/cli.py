"""``python -m repro scenarios`` -- the corpus front end.

Subcommands:

- ``list`` -- enumerate catalog cases (with coordinate filters);
- ``show <case>`` -- dump one case record in full;
- ``run [case ...]`` -- execute cases (or a filtered subset, or the whole
  corpus) through the shared catalog runner, with digest-pin checking;
- ``cosim [case ...]`` -- run the simulator-vs-real-processes oracle.

All execution goes through :func:`repro.scenarios.runner.run_catalog`, so
the CLI, pytest, and CI observe identical semantics.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.scenarios import catalog
from repro.scenarios.runner import open_golden_store, run_catalog
from repro.scenarios.spec import FAMILIES, ScenarioCase


def _add_filter_arguments(parser: argparse.ArgumentParser) -> None:
    group = parser.add_argument_group("filters")
    group.add_argument(
        "--scheduler", help="only cases using this kernel scheduler"
    )
    group.add_argument(
        "--policy",
        help="only cases pinning this allocation policy "
        "('default' for unpinned)",
    )
    group.add_argument(
        "--fault",
        help="only cases injecting this fault kind "
        "('any' = all faulted, 'none' = healthy only)",
    )
    group.add_argument(
        "--family", choices=FAMILIES, help="only cases of this family"
    )
    group.add_argument(
        "--filter",
        dest="name_filter",
        metavar="SUBSTRING",
        help="only cases whose name contains SUBSTRING",
    )


def _select(args: argparse.Namespace, names: List[str]) -> List[ScenarioCase]:
    if names:
        cases: List[ScenarioCase] = [catalog.get_case(name) for name in names]
    else:
        cases = catalog.all_cases()
    policy = args.policy
    if policy == "default":
        cases = [case for case in cases if case.policy is None]
        policy = None
    return catalog.filter_cases(
        cases,
        scheduler=args.scheduler,
        policy=policy,
        fault=args.fault,
        family=args.family,
        name=args.name_filter,
    )


def _command_list(args: argparse.Namespace) -> int:
    cases = _select(args, [])
    for case in cases:
        faults = ",".join(case.fault_kinds) or "-"
        print(
            f"{case.name:<38} {case.family:<9} {case.scheduler:<13} "
            f"{case.policy_label:<9} shards={case.shards} faults={faults}"
        )
    summary = catalog.coverage_summary(cases)
    print(
        f"\n{summary['total']} cases, {summary['schedulers']} schedulers, "
        f"{summary['policies']} policy labels, "
        f"{summary['digest_pinned']} digest-pinned"
    )
    return 0


def _command_show(args: argparse.Namespace) -> int:
    case = catalog.get_case(args.case)
    record = case.to_dict()
    for key, value in record.items():
        print(f"{key}: {value!r}")
    print(f"fault_kinds: {case.fault_kinds}")
    print(f"expected_census: {case.expected_census()}")
    return 0


def _command_run(args: argparse.Namespace) -> int:
    cases = _select(args, args.cases)
    if not cases:
        print("no catalog cases match the given filters", file=sys.stderr)
        return 2
    sanitize = "record" if args.sanitize else None
    golden = None if args.no_digests else open_golden_store()
    report = run_catalog(
        cases,
        jobs=args.jobs,
        sanitize=sanitize,
        golden=golden,
        check_digests=not args.no_digests,
    )
    print(report.format_report(verbose=args.verbose))
    return 0 if report.ok else 1


def _command_cosim(args: argparse.Namespace) -> int:
    # Imported lazily: the oracle spawns OS processes and is only needed
    # by this subcommand.
    from repro.scenarios import cosim

    if args.list:
        for case in cosim.SMOKE_CASES:
            pools = ", ".join(
                f"{p.name}({p.n_workers}w x {p.n_tasks}t)" for p in case.pools
            )
            print(f"{case.name:<24} {case.n_cpus} cpus: {pools}")
        return 0
    selected = (
        [cosim.get_smoke_case(name) for name in args.cases]
        if args.cases
        else list(cosim.SMOKE_CASES)
    )
    failed = 0
    for case in selected:
        report = cosim.run_cosim(case)
        print(report.format_report())
        print()
        if not report.ok:
            failed += 1
    return 1 if failed else 0


def add_scenarios_parser(subparsers) -> None:
    """Attach the ``scenarios`` subcommand tree to ``python -m repro``."""
    parser = subparsers.add_parser(
        "scenarios",
        help="declarative scenario corpus: list, show, run, cosim",
        description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    commands = parser.add_subparsers(dest="scenario_command", required=True)

    list_parser = commands.add_parser("list", help="enumerate catalog cases")
    _add_filter_arguments(list_parser)
    list_parser.set_defaults(handler=_command_list)

    show_parser = commands.add_parser("show", help="dump one case record")
    show_parser.add_argument("case", help="catalog case name")
    show_parser.set_defaults(handler=_command_show)

    run_parser = commands.add_parser(
        "run", help="execute catalog cases and check their invariants"
    )
    run_parser.add_argument(
        "cases", nargs="*", help="case names (default: all, post-filter)"
    )
    _add_filter_arguments(run_parser)
    run_parser.add_argument(
        "--jobs",
        type=int,
        default=None,
        help="parallel worker processes (default: REPRO_JOBS or serial)",
    )
    run_parser.add_argument(
        "--sanitize",
        action="store_true",
        help="attach the invariant sanitizer in record mode",
    )
    run_parser.add_argument(
        "--no-digests",
        action="store_true",
        help="skip golden digest-pin checking",
    )
    run_parser.add_argument(
        "--verbose", action="store_true", help="print every case outcome"
    )
    run_parser.set_defaults(handler=_command_run)

    cosim_parser = commands.add_parser(
        "cosim",
        help="co-simulate: the same workload on the simulator and on "
        "real OS processes, diffed within tolerance bands",
    )
    cosim_parser.add_argument(
        "cases", nargs="*", help="smoke case names (default: all)"
    )
    cosim_parser.add_argument(
        "--list", action="store_true", help="list smoke cases and exit"
    )
    cosim_parser.set_defaults(handler=_command_cosim)


def run_from_args(args: argparse.Namespace) -> int:
    """Dispatch a parsed ``scenarios`` invocation (shared with tests)."""
    handler = getattr(args, "handler", None)
    if handler is None:  # pragma: no cover - argparse enforces a subcommand
        raise SystemExit(2)
    return handler(args)


def main(argv: Optional[List[str]] = None) -> int:
    """Standalone entry point (``python -m repro.scenarios.cli``)."""
    parser = argparse.ArgumentParser(prog="python -m repro.scenarios.cli")
    subparsers = parser.add_subparsers(dest="command", required=True)
    add_scenarios_parser(subparsers)
    return run_from_args(parser.parse_args(argv))


if __name__ == "__main__":
    raise SystemExit(main())
