"""Shared machine and application builders.

These used to live in ``tests/conftest.py`` (and before that were
copy-pasted per test module); the scenario catalog needs the exact same
construction path, so they are hoisted here and the test suite re-exports
them.  One source of truth means a catalog case and a hand-written test
that describe "the same machine" really do build the same machine.

The template registry maps short declarative names (``"uniform"``,
``"csection"``, ``"fft"``, ...) to application factories, so a
:class:`~repro.scenarios.spec.CaseApp` record can name its workload as
data instead of carrying a closure.
"""

from __future__ import annotations

from typing import Callable, Dict, Optional

from repro.apps import (
    FFT,
    BarrierHeavyApp,
    CriticalSectionApp,
    Gauss,
    LockSaturationApp,
    MatMul,
    MergeSort,
    PipelineApp,
    ServiceApp,
    UniformApp,
)
from repro.machine import MachineConfig
from repro.sim import units


def scenario_machine(
    n_processors: int = 4, quantum: int = units.ms(10), **overrides
) -> MachineConfig:
    """A scenario machine with the paper-default switch costs.

    Extra keyword arguments pass straight through to :class:`MachineConfig`.
    """
    return MachineConfig(n_processors=n_processors, quantum=quantum, **overrides)


def small_machine(n_processors: int = 4, **overrides) -> MachineConfig:
    """:func:`scenario_machine` with cheap, exact-time-friendly costs.

    Context switches cost a flat 100 us-units and the cache model is off,
    so tests (and digest-pinned catalog cases) can reason about precise
    completion times.
    """
    overrides.setdefault("context_switch_cost", 100)
    overrides.setdefault("cache_affinity_enabled", False)
    return scenario_machine(n_processors, **overrides)


def uniform(name: str = "u", n_tasks: int = 20, cost: int = units.ms(5)):
    """An application factory: each call of the returned lambda builds a
    fresh :class:`UniformApp` (scenario re-runs must not share app state)."""
    return lambda: UniformApp(app_id=name, n_tasks=n_tasks, task_cost=cost)


# -- the declarative template registry -----------------------------------------
#
# Each entry: name -> builder(app_id, n_tasks, task_cost, scale, seed,
# **service_kwargs) that returns a *fresh* Application.  ``n_tasks``/
# ``task_cost`` parametrize the synthetic templates; ``scale`` the paper
# applications; the keyword-only service fields (rate_per_s, n_requests,
# fanout, slo_us, tier, burst_factor) parametrize the open-arrival
# ``service`` template and are ignored by every other builder.  The
# builder also reports the expected completed-task count when it is
# knowable up front (None otherwise), which the catalog runner uses as
# its census assertion.


def _uniform(app_id, n_tasks, task_cost, scale, seed, **_service):
    return UniformApp(
        app_id=app_id, n_tasks=n_tasks, task_cost=task_cost, seed=seed
    )


def _csection(app_id, n_tasks, task_cost, scale, seed, **_service):
    return CriticalSectionApp(
        app_id=app_id, n_tasks=n_tasks, task_cost=task_cost, seed=seed
    )


def _barrier(app_id, n_tasks, task_cost, scale, seed, **_service):
    # n_tasks is interpreted as the phase count; each phase runs four tasks
    # so the straggler sensitivity the template probes survives small cases.
    return BarrierHeavyApp(
        app_id=app_id,
        phases=n_tasks,
        tasks_per_phase=4,
        task_cost=task_cost,
        seed=seed,
    )


#: The ``pipeline`` template's fixed stage count: three stages whose
#: middle stage costs 1.5x the outer ones (the classic decode/filter/
#: encode shape with a bottleneck stage), all riding the shared
#: ``task_cost`` knob.  A fixed count keeps ``expected_tasks`` knowable.
PIPELINE_STAGES = 3


def _pipeline(app_id, n_tasks, task_cost, scale, seed, **_service):
    # n_tasks is interpreted as the item count; each item crosses all
    # three stages, so the census expects n_tasks * PIPELINE_STAGES.
    return PipelineApp(
        app_id=app_id,
        n_items=n_tasks,
        stage_costs=(task_cost, task_cost * 3 // 2, task_cost),
        seed=seed,
    )


#: Service-template defaults: a modest interactive stream (~a tenth of an
#: 8-CPU machine), small enough that a corpus case stays a sub-second
#: pytest item.  The stage cost rides the shared ``task_cost`` knob.
DEFAULT_SERVICE_RATE = 150.0
DEFAULT_SERVICE_REQUESTS = 24
DEFAULT_SERVICE_FANOUT = 2


def _service(
    app_id,
    n_tasks,
    task_cost,
    scale,
    seed,
    rate_per_s=None,
    n_requests=None,
    fanout=None,
    slo_us=None,
    tier=None,
    burst_factor=None,
    **_other,
):
    # ``task_cost`` doubles as the per-stage cost so service cases reuse
    # the one cost knob every other template already exposes.
    kwargs = dict(
        app_id=app_id,
        rate_per_s=DEFAULT_SERVICE_RATE if rate_per_s is None else rate_per_s,
        n_requests=(
            DEFAULT_SERVICE_REQUESTS if n_requests is None else n_requests
        ),
        fanout=DEFAULT_SERVICE_FANOUT if fanout is None else fanout,
        stage_cost=task_cost,
        slo_us=slo_us,
        burst_factor=burst_factor,
        seed=seed,
    )
    if tier is not None:
        kwargs["tier"] = tier
    return ServiceApp(**kwargs)


#: ``locks``-template defaults, matching the lock-saturation workload
#: family (:mod:`repro.workloads.locks`): a 150 us critical section under
#: a 40 us-per-spinner hand-off surcharge.  ``task_cost`` rides in as the
#: think time, so the corpus's one cost knob still sets the duty cycle.
DEFAULT_LOCK_CS = 150
DEFAULT_LOCK_PENALTY = 40


def _locks(
    app_id,
    n_tasks,
    task_cost,
    scale,
    seed,
    cs_cost=None,
    contention_penalty=None,
    admission=None,
    blocking=False,
    **_service,
):
    return LockSaturationApp(
        app_id=app_id,
        n_tasks=n_tasks,
        think_time=task_cost,
        cs_time=DEFAULT_LOCK_CS if cs_cost is None else cs_cost,
        contention_penalty=(
            DEFAULT_LOCK_PENALTY
            if contention_penalty is None
            else contention_penalty
        ),
        admission=admission,
        blocking=blocking,
        seed=seed,
    )


_SCALE_APPS: Dict[str, Callable] = {
    "fft": FFT,
    "gauss": Gauss,
    "matmul": MatMul,
    "sort": MergeSort,
}


def _make_scale_builder(cls):
    def build(app_id, n_tasks, task_cost, scale, seed, **_service):
        return cls(app_id=app_id, scale=scale, seed=seed)

    return build


_TEMPLATES: Dict[str, Callable] = {
    "uniform": _uniform,
    "csection": _csection,
    "barrier": _barrier,
    "pipeline": _pipeline,
    "service": _service,
    "locks": _locks,
    **{name: _make_scale_builder(cls) for name, cls in _SCALE_APPS.items()},
}

#: Template names accepted by :class:`repro.scenarios.spec.CaseApp`.
TEMPLATE_NAMES = tuple(sorted(_TEMPLATES))

#: Default synthetic-template task parameters (kept small so a 70-case
#: corpus stays a seconds-scale pytest run).
DEFAULT_N_TASKS = 16
DEFAULT_TASK_COST = units.ms(3)
DEFAULT_SCALE = 0.08


def make_app_factory(
    template: str,
    app_id: str,
    n_tasks: Optional[int] = None,
    task_cost: Optional[int] = None,
    scale: Optional[float] = None,
    seed: int = 0,
    rate_per_s: Optional[float] = None,
    n_requests: Optional[int] = None,
    fanout: Optional[int] = None,
    slo_us: Optional[int] = None,
    tier: Optional[str] = None,
    burst_factor: Optional[float] = None,
    cs_cost: Optional[int] = None,
    contention_penalty: Optional[int] = None,
    admission: Optional[int] = None,
    blocking: bool = False,
) -> Callable[[], object]:
    """A zero-argument application factory for an :class:`AppSpec`.

    Raises ``ValueError`` for unknown template names so a typo in a catalog
    record fails at build time, not as a silent empty run.  The service
    keywords parametrize the ``service`` template's arrival stream and
    request DAG; the lock keywords (``cs_cost``, ``contention_penalty``,
    ``admission``, ``blocking``) the ``locks`` template's shared lock;
    every other template ignores them.
    """
    builder = _TEMPLATES.get(template)
    if builder is None:
        raise ValueError(
            f"unknown app template {template!r}; valid names: "
            f"{', '.join(TEMPLATE_NAMES)}"
        )
    n_tasks = DEFAULT_N_TASKS if n_tasks is None else n_tasks
    task_cost = DEFAULT_TASK_COST if task_cost is None else task_cost
    scale = DEFAULT_SCALE if scale is None else scale
    return lambda: builder(
        app_id,
        n_tasks,
        task_cost,
        scale,
        seed,
        rate_per_s=rate_per_s,
        n_requests=n_requests,
        fanout=fanout,
        slo_us=slo_us,
        tier=tier,
        burst_factor=burst_factor,
        cs_cost=cs_cost,
        contention_penalty=contention_penalty,
        admission=admission,
        blocking=blocking,
    )


def expected_tasks(
    template: str,
    n_tasks: Optional[int] = None,
    n_requests: Optional[int] = None,
    fanout: Optional[int] = None,
) -> Optional[int]:
    """The completed-task count a template is known to produce, or ``None``
    when it depends on the application's internal decomposition (the
    scale-parametrized paper applications)."""
    n_tasks = DEFAULT_N_TASKS if n_tasks is None else n_tasks
    if template in ("uniform", "csection", "locks"):
        return n_tasks
    if template == "barrier":
        return n_tasks * 4
    if template == "pipeline":
        # Every item crosses every stage; each crossing is one task.
        return n_tasks * PIPELINE_STAGES
    if template == "service":
        n_requests = (
            DEFAULT_SERVICE_REQUESTS if n_requests is None else n_requests
        )
        fanout = DEFAULT_SERVICE_FANOUT if fanout is None else fanout
        # One dispatcher segment, ``fanout`` stages, one reduce per request.
        return n_requests * (fanout + 2)
    return None
