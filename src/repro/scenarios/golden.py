"""Golden-pin storage with a first-class regeneration path.

The repo pins behaviour in golden JSON files (dispatch digests, event
counts).  Historically each test compared dicts with a raw ``assert``;
this module centralizes the compare-or-update protocol so every consumer
fails the same way: a message that names the diverging fields, states
that a golden mismatch is a *behaviour change*, and spells out the exact
regeneration command -- instead of a bare assertion diff.

Regeneration is requested with the ``REPRO_UPDATE_GOLDEN=1`` environment
flag; without it, stores are strictly read-only.
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import Any, Dict, Optional

#: Environment flag that switches every golden comparison into
#: record-and-save mode.
UPDATE_ENV_VAR = "REPRO_UPDATE_GOLDEN"


def update_requested() -> bool:
    """True when this process was asked to regenerate golden pins."""
    return bool(os.environ.get(UPDATE_ENV_VAR))


def mismatch_message(
    name: str,
    measured: Dict[str, Any],
    pinned: Dict[str, Any],
    regen_hint: str,
) -> str:
    """The one shared way a golden divergence is reported.

    Lists only the fields that differ (a full-dict diff buries the signal
    when the record holds long digests), then the policy and the command.
    """
    diffs = []
    for key in sorted(set(measured) | set(pinned)):
        got, want = measured.get(key, "<absent>"), pinned.get(key, "<absent>")
        if got != want:
            diffs.append(f"  {key}: measured {got!r} != pinned {want!r}")
    detail = "\n".join(diffs) or "  (records differ in structure)"
    return (
        f"golden pin mismatch for {name!r}:\n{detail}\n"
        "A golden mismatch means observable behaviour changed. If the "
        "change is intentional, regenerate the pins and commit the diff "
        "(review it first):\n"
        f"  {UPDATE_ENV_VAR}=1 {regen_hint}\n"
        f"If it is not intentional, this is a regression -- do not set "
        f"{UPDATE_ENV_VAR}."
    )


class GoldenStore:
    """One JSON file mapping pin names to measurement records."""

    def __init__(self, path: Path, regen_hint: str) -> None:
        self.path = Path(path)
        self.regen_hint = regen_hint
        self.data: Dict[str, Dict[str, Any]] = {}
        self._dirty = False
        if self.path.exists():
            self.data = json.loads(self.path.read_text())

    def compare(self, name: str, measured: Dict[str, Any]) -> Optional[str]:
        """Check *measured* against the pin; return a failure message or None.

        In update mode the measurement is recorded (call :meth:`save`
        afterwards) and the comparison always passes.  A *missing* pin
        outside update mode is a failure too -- an unpinned case would
        otherwise silently stop guarding anything.
        """
        if update_requested():
            if self.data.get(name) != measured:
                self.data[name] = measured
                self._dirty = True
            return None
        pinned = self.data.get(name)
        if pinned is None:
            return (
                f"no golden pin named {name!r} in {self.path}; generate it "
                f"with: {UPDATE_ENV_VAR}=1 {self.regen_hint}"
            )
        if pinned != measured:
            return mismatch_message(name, measured, pinned, self.regen_hint)
        return None

    def save(self) -> None:
        """Write the store back (update mode only; no-op when clean)."""
        if not self._dirty:
            return
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self.path.write_text(
            json.dumps(dict(sorted(self.data.items())), indent=2) + "\n"
        )
        self._dirty = False
