"""The one catalog runner.

``run_case`` executes a single :class:`~repro.scenarios.spec.ScenarioCase`
and checks its declared invariants; ``run_catalog`` fans a case list out
over the parallel sweep harness (:func:`repro.experiments.parallel.
parallel_map`).  The pytest parametrization, the ``python -m repro
scenarios`` CLI, and the CI ``scenario-corpus`` job all execute corpus
entries through these two functions -- one construction path, one
checking path, three front ends.

Digest pins live in a :class:`~repro.scenarios.golden.GoldenStore`
(``tests/golden/scenario_digests.json`` in a source checkout) and are
compared post-hoc in the parent process, so the parallel path never
touches the store concurrently.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import List, Optional, Sequence

from repro.experiments.parallel import parallel_map
from repro.sanitize.invariants import sanitize_mode_from_env
from repro.scenarios.golden import GoldenStore
from repro.scenarios.spec import ScenarioCase
from repro.sim import TraceLog, dispatch_digest
from repro.workloads.runner import RUNNER_TRACE_CATEGORIES, run_scenario

#: Where a source checkout keeps the corpus digest pins (runner.py sits at
#: src/repro/scenarios/, three levels below the repo root).
DEFAULT_GOLDEN_PATH = (
    Path(__file__).resolve().parents[3] / "tests" / "golden" / "scenario_digests.json"
)

#: The command that regenerates the corpus pins.
GOLDEN_REGEN_HINT = (
    "PYTHONPATH=src python -m pytest tests/test_scenarios_catalog.py -q"
)


def open_golden_store(path: Optional[Path] = None) -> GoldenStore:
    """The corpus digest store (shared by tests, CLI, and CI)."""
    return GoldenStore(path or DEFAULT_GOLDEN_PATH, GOLDEN_REGEN_HINT)


@dataclass
class CaseOutcome:
    """Plain-data result of one corpus case (picklable for the sweep)."""

    name: str
    family: str
    violations: List[str] = field(default_factory=list)
    completed: bool = False
    makespan: int = 0
    sim_time: int = 0
    events_fired: int = 0
    tasks_completed: int = 0
    suspensions: int = 0
    target_expiries: int = 0
    sanitizer_violations: int = 0
    faults_injected: int = 0
    #: Service-workload figures (zero / None when no app carries an
    #: open-arrival request stream).  The percentile and violation-rate
    #: figures are worst-per-app, matching the band semantics.
    requests_completed: int = 0
    p99_us: Optional[int] = None
    violation_rate: Optional[float] = None
    #: Runtime-compliance figures (all zero when no adapter ever adopted
    #: a target).  ``adoption_lag_max_us`` is worst-per-app, matching the
    #: band semantics.
    adoptions: int = 0
    adoption_lag_max_us: int = 0
    #: Lock-restriction census: total waiters culled across every lock
    #: (zero when no lock has an admission limit).
    passivations: int = 0
    #: Dispatch digest (collected only for digest-pinned cases).
    digest: Optional[str] = None
    #: Fault-free twin makespan and the resulting inflation factor
    #: (``None`` unless the case declares ``max_inflation``).
    baseline_makespan: Optional[int] = None
    inflation: Optional[float] = None
    wall_ms: float = 0.0

    @property
    def ok(self) -> bool:
        return not self.violations


def _resolve_sanitize(sanitize: Optional[str]) -> Optional[str]:
    """Catalog sanitize mode: explicit argument wins, else the env knob.

    An env-enabled sanitizer is downgraded from ``strict`` to ``record``
    so one dirty case reports *as that case's violation* instead of
    aborting the whole corpus sweep mid-run.
    """
    if sanitize is not None:
        return sanitize or None
    return "record" if sanitize_mode_from_env() else None


def run_case(
    case: ScenarioCase,
    sanitize: Optional[str] = None,
    collect_digest: bool = True,
) -> CaseOutcome:
    """Execute one case and check every declared invariant.

    Never raises for an expectation failure -- failures are returned in
    ``outcome.violations`` so corpus sweeps always report per-case.
    """
    expect = case.expect
    scenario = case.to_scenario()
    categories = set(RUNNER_TRACE_CATEGORIES)
    want_digest = collect_digest and expect.pin_digest
    if want_digest:
        categories.add("kernel.dispatch")
    trace = TraceLog(categories=categories)
    started = time.perf_counter()
    result = run_scenario(
        scenario,
        trace=trace,
        sanitize=_resolve_sanitize(sanitize),
        # An explicit empty spec pins the healthy world even when the
        # REPRO_FAULTS env knob is set: corpus cases own their fault plans.
        faults=case.faults if case.faults else "",
    )
    outcome = CaseOutcome(name=case.name, family=case.family)
    outcome.sim_time = result.sim_time
    outcome.events_fired = result.events_fired
    outcome.sanitizer_violations = result.sanitizer_violations
    outcome.faults_injected = result.faults_injected
    outcome.tasks_completed = sum(
        app.tasks_completed for app in result.apps.values()
    )
    outcome.suspensions = sum(app.suspensions for app in result.apps.values())
    outcome.target_expiries = sum(
        app.target_expiries for app in result.apps.values()
    )
    outcome.adoptions = sum(app.adoptions for app in result.apps.values())
    outcome.passivations = sum(
        stats.passivations for stats in result.locks.values()
    )
    outcome.adoption_lag_max_us = max(
        (app.adoption_lag_max for app in result.apps.values()), default=0
    )
    if result.service:
        stats = list(result.service.values())
        outcome.requests_completed = sum(s.count for s in stats)
        outcome.p99_us = max(s.p99 for s in stats)
        outcome.violation_rate = max(s.violation_rate for s in stats)
    outcome.completed = (
        all(app.finished_at is not None for app in result.apps.values())
        and result.sim_time < scenario.max_time
    )
    if not outcome.completed:
        outcome.violations.append(
            "deadlock: at least one application missed the time cap "
            f"({scenario.max_time} us)"
        )
        outcome.makespan = scenario.max_time
    else:
        outcome.makespan = result.makespan

    if want_digest:
        outcome.digest = dispatch_digest(trace)

    if expect.sanitizer_clean and result.sanitizer_violations:
        outcome.violations.append(
            f"sanitizer: {result.sanitizer_violations} invariant violation(s)"
        )
    if expect.require_all_tasks and outcome.completed:
        for app_id, expected in case.expected_census().items():
            done = result.apps[app_id].tasks_completed
            if expected is not None and done != expected:
                outcome.violations.append(
                    f"census: {app_id} completed {done}/{expected} tasks"
                )
            elif expected is None and done < 1:
                outcome.violations.append(
                    f"census: {app_id} completed no tasks"
                )
    if outcome.suspensions < expect.min_total_suspensions:
        outcome.violations.append(
            f"control never engaged: {outcome.suspensions} suspension(s), "
            f"expected >= {expect.min_total_suspensions}"
        )
    if expect.max_makespan is not None and outcome.makespan > expect.max_makespan:
        outcome.violations.append(
            f"latency band: makespan {outcome.makespan} us > "
            f"bound {expect.max_makespan} us"
        )
    if (
        expect.max_target_expiries is not None
        and outcome.target_expiries > expect.max_target_expiries
    ):
        outcome.violations.append(
            f"target expiries {outcome.target_expiries} > "
            f"bound {expect.max_target_expiries}"
        )
    if outcome.target_expiries < expect.min_target_expiries:
        outcome.violations.append(
            f"TTL release never engaged: {outcome.target_expiries} "
            f"expiries, expected >= {expect.min_target_expiries}"
        )
    if outcome.requests_completed < expect.min_requests:
        outcome.violations.append(
            f"request census: {outcome.requests_completed} completed, "
            f"expected >= {expect.min_requests}"
        )
    if (
        expect.max_p99 is not None
        and (outcome.p99_us is None or outcome.p99_us > expect.max_p99)
    ):
        outcome.violations.append(
            f"latency band: p99 {outcome.p99_us} us > bound "
            f"{expect.max_p99} us"
        )
    if (
        expect.max_violation_rate is not None
        and (
            outcome.violation_rate is None
            or outcome.violation_rate > expect.max_violation_rate
        )
    ):
        outcome.violations.append(
            f"SLO band: violation rate {outcome.violation_rate} > bound "
            f"{expect.max_violation_rate}"
        )

    if outcome.adoptions < expect.min_adoptions:
        outcome.violations.append(
            f"adoption census: {outcome.adoptions} completed adoption(s), "
            f"expected >= {expect.min_adoptions}"
        )
    if (
        expect.max_adoption_lag is not None
        and outcome.adoption_lag_max_us > expect.max_adoption_lag
    ):
        outcome.violations.append(
            f"adoption-lag band: {outcome.adoption_lag_max_us} us > "
            f"bound {expect.max_adoption_lag} us"
        )
    if outcome.passivations < expect.min_passivations:
        outcome.violations.append(
            f"restriction never engaged: {outcome.passivations} "
            f"passivation(s), expected >= {expect.min_passivations}"
        )

    if expect.max_inflation is not None and outcome.completed:
        baseline = run_scenario(
            case.with_(faults=None).to_scenario(),
            sanitize=False,
            faults="",
        )
        outcome.baseline_makespan = baseline.makespan
        outcome.inflation = outcome.makespan / max(baseline.makespan, 1)
        if outcome.inflation > expect.max_inflation:
            outcome.violations.append(
                f"inflation band: {outcome.inflation:.2f}x over the "
                f"fault-free twin > bound {expect.max_inflation:.2f}x"
            )

    outcome.wall_ms = (time.perf_counter() - started) * 1000.0
    return outcome


def _sweep_cell(args) -> CaseOutcome:
    """Module-level cell for the process-pool path (must be picklable)."""
    case, sanitize = args
    return run_case(case, sanitize=sanitize)


def apply_golden(
    outcomes: Sequence[CaseOutcome], store: GoldenStore
) -> None:
    """Check (or, under ``REPRO_UPDATE_GOLDEN``, record) digest pins.

    Runs in the parent process after a sweep, appending any divergence to
    the outcome's violation list with the shared golden-mismatch message.
    """
    for outcome in outcomes:
        if outcome.digest is None:
            continue
        message = store.compare(
            outcome.name,
            {"dispatch_digest": outcome.digest, "sim_time": outcome.sim_time},
        )
        if message:
            outcome.violations.append(message)
    store.save()


@dataclass
class CatalogReport:
    """Aggregate of one corpus sweep."""

    outcomes: List[CaseOutcome]

    @property
    def failed(self) -> List[CaseOutcome]:
        return [outcome for outcome in self.outcomes if not outcome.ok]

    @property
    def ok(self) -> bool:
        return not self.failed

    def format_report(self, verbose: bool = False) -> str:
        lines = []
        families = sorted({o.family for o in self.outcomes})
        for family in families:
            members = [o for o in self.outcomes if o.family == family]
            bad = sum(1 for o in members if not o.ok)
            lines.append(
                f"{family:<10} {len(members) - bad:3d}/{len(members):<3d} ok"
                + (f"  ({bad} FAILED)" if bad else "")
            )
        for outcome in self.outcomes:
            if verbose or not outcome.ok:
                status = "ok" if outcome.ok else "FAIL"
                lines.append(
                    f"  [{status}] {outcome.name}: makespan={outcome.makespan}us "
                    f"events={outcome.events_fired} "
                    f"suspensions={outcome.suspensions} "
                    f"wall={outcome.wall_ms:.0f}ms"
                )
                for violation in outcome.violations:
                    lines.append(f"      - {violation}")
        total_bad = len(self.failed)
        lines.append(
            f"total: {len(self.outcomes) - total_bad}/{len(self.outcomes)} cases ok"
        )
        return "\n".join(lines)

    def assert_clean(self) -> None:
        if not self.ok:
            raise AssertionError(
                f"{len(self.failed)} corpus case(s) failed:\n"
                + self.format_report()
            )


def run_catalog(
    cases: Sequence[ScenarioCase],
    jobs: Optional[int] = None,
    sanitize: Optional[str] = None,
    golden: Optional[GoldenStore] = None,
    check_digests: bool = True,
) -> CatalogReport:
    """Run a case list through the parallel sweep harness.

    Cases are pure data and outcomes are plain dataclasses, so the fan-out
    is bit-identical to the serial loop (``jobs=1``).  Digest pins are
    checked afterwards in the parent against *golden* (the default store
    when ``None``); pass ``check_digests=False`` to skip pin checking
    entirely (e.g. in an installed-package environment with no tests/
    directory).
    """
    outcomes = parallel_map(
        _sweep_cell, [(case, sanitize) for case in cases], jobs=jobs
    )
    if check_digests:
        apply_golden(outcomes, golden or open_golden_store())
    return CatalogReport(outcomes=list(outcomes))
