"""Co-simulation oracle: simulator vs real OS processes.

The simulator and :mod:`repro.realsys` implement the *same* design -- a
central server partitioning processors with
:func:`repro.core.policy.partition_processors`, and task-queue worker
pools that suspend/resume between tasks to track their target.  This
module runs one declared workload through **both** implementations and
diffs the observable timelines:

- **decision sequence** -- the ordered, deduplicated list of target maps
  the server published.  Both sides call the same partition function over
  the same register/depart order, so this must match *exactly*.
- **per-pool adoption order** -- the sequence of distinct targets each
  pool adopted.  Exact match expected; a declared slack tolerates one
  side observing a transient decision the other's poll cadence skipped.
- **census** -- completed tasks per pool; exact on both sides.
- **suspension counts** -- per pool, both sides must land inside the same
  declared band (at least ``workers - min adopted target``, at most a
  cap) and must agree on whether control engaged at all.
- **cadence** -- server updates per second, within a declared ratio band
  of the configured interval (wall-clock scheduling on a loaded host is
  jittery; simulation time is not).

This is the keep-each-other-honest structure Libre-SOC gets from
co-simulating its ISA simulator against qemu: a divergence means either
the simulator's control plane or the real one stopped implementing the
paper's protocol.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.realsys import CentralController, ControlledPool
from repro.realsys import tasks as realsys_tasks
from repro.scenarios import builders
from repro.sim import TraceLog, units
from repro.workloads.runner import RUNNER_TRACE_CATEGORIES, run_scenario
from repro.workloads.scenario import AppSpec, Scenario

ms = units.ms


@dataclass(frozen=True)
class CosimPool:
    """One application of a co-sim workload (same record drives both sides).

    Pools register in list order on both sides; they depart in ascending
    ``n_tasks`` order, so task counts must be separated widely enough that
    the simulator's natural finish order matches.
    """

    name: str
    n_workers: int
    n_tasks: int


@dataclass(frozen=True)
class Tolerance:
    """Declared tolerance bands for the cross-implementation diff."""

    #: The decision sequences must be identical.  (Kept as a knob so a
    #: deliberately-asymmetric experiment can downgrade it to subsequence.)
    exact_decisions: bool = True
    #: Per-pool adopted-target sequences: allow one side to be a strict
    #: subsequence of the other (a poll can skip a short-lived decision).
    adoption_subsequence_ok: bool = True
    #: Suspension cap per pool: ``factor * n_tasks + slack`` (a worker can
    #: suspend at most once per safe point it passes).
    suspension_cap_factor: float = 1.0
    suspension_cap_slack: int = 4
    #: Server-update cadence must be within this ratio band of the
    #: configured interval rate.
    cadence_band: Tuple[float, float] = (0.2, 5.0)


@dataclass(frozen=True)
class CosimCase:
    """A co-simulation workload: machine, pools, and timing for each side."""

    name: str
    n_cpus: int
    pools: Tuple[CosimPool, ...]
    #: Simulator side: per-task cost and control cadence (sim microseconds).
    sim_task_cost: int = ms(5)
    sim_interval: int = ms(20)
    #: Real side: per-task CPU burn size and controller period (seconds).
    real_iterations: int = 20_000
    real_interval: float = 0.04
    tolerance: Tolerance = field(default_factory=Tolerance)

    def __post_init__(self) -> None:
        if not self.pools:
            raise ValueError("a co-sim case needs at least one pool")
        names = [pool.name for pool in self.pools]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate pool names in {self.name!r}")


@dataclass
class Observation:
    """What one implementation exposed while running the workload."""

    side: str
    #: Ordered, consecutive-deduplicated, non-empty target maps.
    decisions: List[Dict[str, int]] = field(default_factory=list)
    #: pool -> ordered distinct targets it adopted.
    adopted: Dict[str, List[int]] = field(default_factory=dict)
    #: pool -> completed tasks.
    census: Dict[str, int] = field(default_factory=dict)
    #: pool -> control suspensions.
    suspensions: Dict[str, int] = field(default_factory=dict)
    updates: int = 0
    duration_s: float = 0.0


def _dedup(seq: Sequence) -> List:
    """Drop consecutive duplicates (cadence-invariant view of a timeline)."""
    out: List = []
    for item in seq:
        if not out or out[-1] != item:
            out.append(item)
    return out


def _is_subsequence(small: Sequence, big: Sequence) -> bool:
    it = iter(big)
    return all(any(x == y for y in it) for x in small)


# -- simulator side ------------------------------------------------------------


def observe_sim(case: CosimCase) -> Observation:
    """Run the workload on the simulator and extract the observables.

    Pools arrive two server intervals apart, so every registration is
    separated by at least one control decision -- the same spacing the
    real-side harness gets from its sequential ``register`` calls.
    """
    specs: List[AppSpec] = []
    for index, pool in enumerate(case.pools):
        specs.append(
            AppSpec(
                factory=builders.make_app_factory(
                    "uniform",
                    pool.name,
                    n_tasks=pool.n_tasks,
                    task_cost=case.sim_task_cost,
                ),
                n_processes=pool.n_workers,
                arrival=2 * case.sim_interval * index,
            )
        )
    scenario = Scenario(
        apps=specs,
        control="centralized",
        scheduler="fifo",
        machine=builders.small_machine(case.n_cpus),
        server_interval=case.sim_interval,
        poll_interval=case.sim_interval,
        policy="equal",
        shards=1,
    )
    trace = TraceLog(categories=RUNNER_TRACE_CATEGORIES)
    result = run_scenario(scenario, trace=trace, faults="")

    decisions = _dedup(
        [
            dict(record.data["targets"])
            for record in trace.records("server.update")
            if record.data["targets"]
        ]
    )
    adopted: Dict[str, List[int]] = {pool.name: [] for pool in case.pools}
    for record in trace.records("pc.poll"):
        target = record.data.get("target")
        if target is not None:
            adopted[record.data["app_id"]].append(target)
    observation = Observation(side="sim")
    observation.decisions = decisions
    observation.adopted = {name: _dedup(seq) for name, seq in adopted.items()}
    observation.census = {
        name: app.tasks_completed for name, app in result.apps.items()
    }
    observation.suspensions = {
        name: app.suspensions for name, app in result.apps.items()
    }
    observation.updates = result.server_updates
    observation.duration_s = result.sim_time / 1e6
    return observation


# -- real side -----------------------------------------------------------------


def observe_real(case: CosimCase, join_timeout: float = 120.0) -> Observation:
    """Run the same workload on real OS processes and extract observables.

    Pools register in list order; each pool is joined and unregistered in
    ascending-work order (smallest task count first), matching the finish
    order the simulator's run naturally produces.
    """
    controller = CentralController(
        interval=case.real_interval, n_cpus=case.n_cpus
    )
    pools: Dict[str, ControlledPool] = {}
    started = time.monotonic()
    try:
        for spec in case.pools:
            pool = ControlledPool(n_workers=spec.n_workers, name=spec.name)
            pool.start()
            pool.submit_many(
                [(realsys_tasks.burn_cpu, (case.real_iterations,))]
                * spec.n_tasks
            )
            pools[spec.name] = pool
            controller.register(pool)
        controller.start()

        census: Dict[str, int] = {}
        for spec in sorted(case.pools, key=lambda s: (s.n_tasks, s.name)):
            results = pools[spec.name].join_results(
                spec.n_tasks, timeout=join_timeout
            )
            census[spec.name] = len(results)
            controller.unregister(pools[spec.name])
        controller.stop()
        duration = time.monotonic() - started

        observation = Observation(side="real")
        observation.decisions = _dedup(
            [dict(targets) for _, targets in controller.history if targets]
        )
        observation.adopted = {
            spec.name: _dedup(
                [
                    targets[spec.name]
                    for _, targets in controller.history
                    if spec.name in targets
                ]
            )
            for spec in case.pools
        }
        observation.census = census
        observation.suspensions = {
            name: pool.suspensions for name, pool in pools.items()
        }
        observation.updates = controller.updates
        observation.duration_s = duration
        return observation
    finally:
        controller.stop()
        for pool in pools.values():
            pool.shutdown()


# -- the diff ------------------------------------------------------------------


@dataclass
class CosimReport:
    """Outcome of one co-simulation: both observations plus the diffs."""

    case: CosimCase
    sim: Observation
    real: Observation
    diffs: List[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.diffs

    def format_report(self) -> str:
        lines = [f"co-sim {self.case.name}: " + ("OK" if self.ok else "DIVERGED")]
        lines.append(f"  decisions sim : {self.sim.decisions}")
        lines.append(f"  decisions real: {self.real.decisions}")
        for pool in self.case.pools:
            lines.append(
                f"  {pool.name}: adopted sim={self.sim.adopted.get(pool.name)} "
                f"real={self.real.adopted.get(pool.name)}  "
                f"census sim={self.sim.census.get(pool.name)} "
                f"real={self.real.census.get(pool.name)}  "
                f"suspensions sim={self.sim.suspensions.get(pool.name)} "
                f"real={self.real.suspensions.get(pool.name)}"
            )
        lines.append(
            f"  cadence: sim {self.sim.updates} updates / "
            f"{self.sim.duration_s:.3f}s vs real {self.real.updates} / "
            f"{self.real.duration_s:.3f}s"
        )
        for diff in self.diffs:
            lines.append(f"  !! {diff}")
        return "\n".join(lines)

    def assert_within(self) -> None:
        if not self.ok:
            raise AssertionError(
                "simulator and realsys diverged beyond tolerance:\n"
                + self.format_report()
            )


def diff_observations(
    case: CosimCase, sim: Observation, real: Observation
) -> List[str]:
    """Compare two observations under the case's declared tolerance bands.

    Pure function of its inputs so the band semantics are unit-testable
    without spawning a single OS process.
    """
    tolerance = case.tolerance
    diffs: List[str] = []

    if sim.decisions != real.decisions:
        if tolerance.exact_decisions or not (
            _is_subsequence(sim.decisions, real.decisions)
            or _is_subsequence(real.decisions, sim.decisions)
        ):
            diffs.append(
                f"decision sequences differ: sim={sim.decisions} "
                f"real={real.decisions}"
            )

    for pool in case.pools:
        sim_adopted = sim.adopted.get(pool.name, [])
        real_adopted = real.adopted.get(pool.name, [])
        if sim_adopted != real_adopted:
            subsequence = _is_subsequence(
                sim_adopted, real_adopted
            ) or _is_subsequence(real_adopted, sim_adopted)
            if not (tolerance.adoption_subsequence_ok and subsequence):
                diffs.append(
                    f"{pool.name}: adoption order differs: "
                    f"sim={sim_adopted} real={real_adopted}"
                )

        for side, observation in (("sim", sim), ("real", real)):
            done = observation.census.get(pool.name)
            if done != pool.n_tasks:
                diffs.append(
                    f"{pool.name}: {side} census {done} != "
                    f"submitted {pool.n_tasks}"
                )

        # Suspension band: if a side adopted a target that undercut the
        # worker count, at least (workers - min target) suspensions must
        # have happened on that side; either way no more than one per
        # safe point passed.
        cap = (
            int(tolerance.suspension_cap_factor * pool.n_tasks)
            + tolerance.suspension_cap_slack
        )
        for side, observation in (("sim", sim), ("real", real)):
            adopted_here = observation.adopted.get(pool.name, [])
            floor = 0
            if adopted_here:
                floor = max(0, pool.n_workers - min(adopted_here))
            count = observation.suspensions.get(pool.name, 0)
            if not floor <= count <= cap:
                diffs.append(
                    f"{pool.name}: {side} suspensions {count} outside "
                    f"band [{floor}, {cap}]"
                )
        sim_engaged = sim.suspensions.get(pool.name, 0) > 0
        real_engaged = real.suspensions.get(pool.name, 0) > 0
        if sim_engaged != real_engaged:
            diffs.append(
                f"{pool.name}: control engaged on one side only "
                f"(sim={sim.suspensions.get(pool.name, 0)}, "
                f"real={real.suspensions.get(pool.name, 0)})"
            )

    # Cadence: updates per second vs the configured rate, per side.  On
    # the real side, register/unregister each force an extra decision on
    # top of the periodic ones, so the band is applied to the periodic
    # share; the simulated server only fires on its interval.
    lo, hi = tolerance.cadence_band
    for side, observation, interval_s, forced in (
        ("sim", sim, case.sim_interval / 1e6, 0),
        ("real", real, case.real_interval, 2 * len(case.pools)),
    ):
        if observation.duration_s <= 0:
            continue
        expected = observation.duration_s / interval_s
        observed = max(0, observation.updates - forced)
        if not (lo * expected <= observed <= hi * expected + 1):
            diffs.append(
                f"cadence ({side}): {observation.updates} updates in "
                f"{observation.duration_s:.3f}s is outside "
                f"[{lo:.1f}, {hi:.1f}]x the configured "
                f"{1 / interval_s:.1f}/s"
            )
    return diffs


def run_cosim(case: CosimCase, join_timeout: float = 120.0) -> CosimReport:
    """Run *case* through both implementations and diff the timelines."""
    sim = observe_sim(case)
    real = observe_real(case, join_timeout=join_timeout)
    report = CosimReport(case=case, sim=sim, real=real)
    report.diffs = diff_observations(case, sim, real)
    return report


# -- the smoke corpus ----------------------------------------------------------

#: Two-pool asymmetric workload: the canonical Figure-5 shape (a long
#: application throttled while a short one passes through, then the
#: machine handed back).
SMOKE_CASES: Tuple[CosimCase, ...] = (
    CosimCase(
        name="two-pools-handback",
        n_cpus=4,
        pools=(
            CosimPool("longapp", n_workers=4, n_tasks=48),
            CosimPool("shortapp", n_workers=4, n_tasks=12),
        ),
    ),
    #: Shrink-to-one on a two-processor machine: each pool is throttled
    #: to a *single* runnable worker while the other passes through --
    #: the tightest target the starvation-avoidance floor allows.
    CosimCase(
        name="shrink-to-one",
        n_cpus=2,
        pools=(
            CosimPool("steady", n_workers=2, n_tasks=48),
            CosimPool("visitor", n_workers=2, n_tasks=10),
        ),
    ),
)


def get_smoke_case(name: str) -> CosimCase:
    for case in SMOKE_CASES:
        if case.name == name:
            return case
    raise KeyError(
        f"no co-sim smoke case named {name!r}; "
        f"available: {[c.name for c in SMOKE_CASES]}"
    )
