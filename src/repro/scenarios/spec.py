"""Declarative scenario-case records.

A :class:`ScenarioCase` is pure data: machine shape, application list,
scheduler x policy x shards x faults coordinates, a seed, and the
**expected invariants** (:class:`Expect`) the run must satisfy.  Cases
round-trip through plain dicts (and YAML when available), so growing the
corpus is an edit to data, not new code -- the pattern Libre-SOC uses for
its ISA test catalogs.

The executable form is :meth:`ScenarioCase.to_scenario`, which builds the
same :class:`~repro.workloads.scenario.Scenario` object every experiment
harness uses, via the shared builders in
:mod:`repro.scenarios.builders`.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, field, replace
from typing import Any, Dict, List, Optional, Tuple

from repro.core.allocation import POLICY_NAMES
from repro.faults.plan import parse_spec as parse_fault_spec
from repro.scenarios import builders
from repro.sim import units
from repro.threads.adapter import RUNTIME_NAMES
from repro.workloads.scenario import INHERIT_CONTROL, AppSpec, Scenario
from repro.workloads.schedulers import SCHEDULER_NAMES
from repro.workloads.service import SERVICE_TIERS

#: Families a case may belong to (used by filters and coverage reports).
FAMILIES = (
    "cross",
    "overload",
    "bursty",
    "gang",
    "hotplug",
    "failover",
    "storm",
    "service",
    "runtime",
    "locks",
    "fuzz",
)


@dataclass(frozen=True)
class CaseApp:
    """One application of a case, described as data.

    ``template`` names an entry of the shared registry
    (:data:`repro.scenarios.builders.TEMPLATE_NAMES`); ``n_tasks`` /
    ``task_cost`` parametrize the synthetic templates, ``scale`` the paper
    applications.  ``control`` follows the :class:`AppSpec` convention
    (``"inherit"`` / ``"off"`` / explicit mode).  ``runtime`` picks the
    threads-package runtime the application runs on
    (:data:`repro.threads.RUNTIME_NAMES`; the ``pipeline`` runtime needs
    a stage-declaring template like ``"pipeline"``).

    The ``service`` template reads the open-arrival fields instead:
    ``rate_per_s`` / ``n_requests`` parametrize the seeded arrival stream
    (``burst_factor`` switches it to the two-rate bursty wave),
    ``fanout`` / ``task_cost`` shape the per-request DAG (``task_cost``
    doubles as the stage cost), and ``slo_us`` / ``tier`` feed the
    latency objective the SLO-aware policy steers toward.

    The ``locks`` template reads the contention fields: ``task_cost``
    doubles as the per-iteration think time, ``cs_cost`` is the
    critical-section length, ``contention_penalty`` the per-spinner
    hand-off surcharge, ``admission`` the lock's concurrency-restriction
    limit, and ``blocking`` switches the shared lock from a spinlock to
    a mutex.  Other templates ignore these fields.
    """

    template: str
    n_processes: int
    arrival: int = 0
    name: Optional[str] = None
    n_tasks: Optional[int] = None
    task_cost: Optional[int] = None
    scale: Optional[float] = None
    control: str = INHERIT_CONTROL
    runtime: str = "taskqueue"
    rate_per_s: Optional[float] = None
    n_requests: Optional[int] = None
    fanout: Optional[int] = None
    slo_us: Optional[int] = None
    tier: Optional[str] = None
    burst_factor: Optional[float] = None
    cs_cost: Optional[int] = None
    contention_penalty: Optional[int] = None
    admission: Optional[int] = None
    blocking: bool = False

    def app_id(self, index: int) -> str:
        return self.name or f"{self.template}{index}"


@dataclass(frozen=True)
class Expect:
    """Expected invariants of one case.

    Attributes:
        sanitizer_clean: the run must produce zero sanitizer violations
            (checked whenever a sanitizer is attached).
        require_all_tasks: every application with a knowable task count
            must complete exactly that many tasks (the census band).
        pin_digest: the dispatch digest is pinned in the golden store;
            any drift fails the case (fault-free deterministic cases only).
        max_makespan: absolute latency band, in microseconds.
        max_inflation: for fault cases -- makespan may exceed the
            fault-free twin's by at most this factor (the bounded-inflation
            band the chaos campaign uses).
        min_total_suspensions: across all applications, at least this many
            process-control suspensions must have happened (a control-is-
            actually-engaging census check for overload cases).
        max_target_expiries: bound on stale-target TTL expiries (``None``
            = unchecked; 0 pins the healthy world).
        min_target_expiries: at least this many TTL expiries must have
            happened (server-crash cases use it to prove the degraded
            full-parallelism release path actually ran).
        min_requests: at least this many service requests must complete
            (the open-arrival census band; 0 = unchecked).
        max_p99: worst per-app p99 request latency band, microseconds
            (``None`` = unchecked; only meaningful for service cases).
        max_violation_rate: worst per-app SLO-violation-rate band, in
            [0, 1] (``None`` = unchecked).
        min_adoptions: across all applications, at least this many
            completed target adoptions (publish-to-conformance cycles)
            must have been recorded -- the runtime family's proof that
            deferred adoption actually engaged.
        max_adoption_lag: worst per-app adoption lag band, microseconds
            (``None`` = unchecked).  A fork-join runtime's lag is bounded
            by its phase length; the band pins that contract as data.
        min_passivations: across all locks, at least this many waiters
            must have been culled into a passivated set (the locks
            family's proof that concurrency restriction actually
            engaged, not just that the knob was set).
    """

    sanitizer_clean: bool = True
    require_all_tasks: bool = True
    pin_digest: bool = False
    max_makespan: Optional[int] = None
    max_inflation: Optional[float] = None
    min_total_suspensions: int = 0
    max_target_expiries: Optional[int] = None
    min_target_expiries: int = 0
    min_requests: int = 0
    max_p99: Optional[int] = None
    max_violation_rate: Optional[float] = None
    min_adoptions: int = 0
    max_adoption_lag: Optional[int] = None
    min_passivations: int = 0


@dataclass(frozen=True)
class ScenarioCase:
    """One corpus entry: coordinates + workload + expectations."""

    name: str
    family: str
    apps: Tuple[CaseApp, ...]
    n_processors: int = 8
    quantum: int = field(default_factory=lambda: units.ms(10))
    scheduler: str = "fifo"
    policy: Optional[str] = None
    shards: int = 1
    control: Optional[str] = "centralized"
    lock_admission: Optional[int] = None
    faults: Optional[str] = None
    supervise: bool = False
    server_interval: int = field(default_factory=lambda: units.ms(40))
    poll_interval: int = field(default_factory=lambda: units.ms(40))
    seed: int = 0
    max_time: int = field(default_factory=lambda: units.seconds(600))
    idle_spin: bool = True
    expect: Expect = field(default_factory=Expect)
    notes: str = ""

    def __post_init__(self) -> None:
        if not self.apps:
            raise ValueError(f"case {self.name!r} has no applications")
        if self.family not in FAMILIES:
            raise ValueError(
                f"case {self.name!r}: unknown family {self.family!r}; "
                f"expected one of {FAMILIES}"
            )
        if self.scheduler not in SCHEDULER_NAMES:
            raise ValueError(
                f"case {self.name!r}: unknown scheduler {self.scheduler!r}"
            )
        if self.policy is not None and self.policy not in POLICY_NAMES + ("space",):
            raise ValueError(
                f"case {self.name!r}: unknown policy {self.policy!r}"
            )
        if self.shards < 1:
            raise ValueError(f"case {self.name!r}: shards must be >= 1")
        for app in self.apps:
            if app.template not in builders.TEMPLATE_NAMES:
                raise ValueError(
                    f"case {self.name!r}: unknown template {app.template!r}"
                )
            if app.tier is not None and app.tier not in SERVICE_TIERS:
                raise ValueError(
                    f"case {self.name!r}: unknown service tier {app.tier!r}; "
                    f"expected one of {SERVICE_TIERS}"
                )
            if app.runtime not in RUNTIME_NAMES:
                raise ValueError(
                    f"case {self.name!r}: unknown runtime {app.runtime!r}; "
                    f"expected one of {RUNTIME_NAMES}"
                )
            if app.admission is not None and app.admission < 1:
                raise ValueError(
                    f"case {self.name!r}: admission must be >= 1"
                )
        if self.lock_admission is not None and self.lock_admission < 1:
            raise ValueError(
                f"case {self.name!r}: lock_admission must be >= 1"
            )
        if self.faults:
            # Validate the plan grammar eagerly: a corpus entry with a typo
            # must fail at catalog-build time, not silently run fault-free.
            parse_fault_spec(self.faults)

    # -- derived coordinates ------------------------------------------------

    @property
    def fault_kinds(self) -> Tuple[str, ...]:
        """Injector kinds named by the fault spec (empty when healthy)."""
        if not self.faults:
            return ()
        kinds = []
        for item in self.faults.split(";"):
            item = item.strip()
            if item:
                kinds.append(item.partition(":")[0].strip())
        return tuple(kinds)

    @property
    def policy_label(self) -> str:
        """Printable policy coordinate (``"default"`` for ``None``)."""
        return self.policy or "default"

    def expected_census(self) -> Dict[str, Optional[int]]:
        """app_id -> knowable completed-task count (None = unknowable)."""
        return {
            app.app_id(index): builders.expected_tasks(
                app.template,
                app.n_tasks,
                n_requests=app.n_requests,
                fanout=app.fanout,
            )
            for index, app in enumerate(self.apps)
        }

    # -- execution ----------------------------------------------------------

    def to_scenario(self) -> Scenario:
        """Build the executable :class:`Scenario` for this case.

        Every field the workload runner would otherwise read from the
        environment (policy, shards, faults, supervision) is pinned
        explicitly, so a corpus run means the same thing under any CI
        knob combination.
        """
        specs: List[AppSpec] = []
        for index, app in enumerate(self.apps):
            specs.append(
                AppSpec(
                    factory=builders.make_app_factory(
                        app.template,
                        app.app_id(index),
                        n_tasks=app.n_tasks,
                        task_cost=app.task_cost,
                        scale=app.scale,
                        seed=self.seed + index,
                        rate_per_s=app.rate_per_s,
                        n_requests=app.n_requests,
                        fanout=app.fanout,
                        slo_us=app.slo_us,
                        tier=app.tier,
                        burst_factor=app.burst_factor,
                        cs_cost=app.cs_cost,
                        contention_penalty=app.contention_penalty,
                        admission=app.admission,
                        blocking=app.blocking,
                    ),
                    n_processes=app.n_processes,
                    arrival=app.arrival,
                    control=app.control,
                    runtime=app.runtime,
                )
            )
        return Scenario(
            apps=specs,
            control=self.control,
            # 0 = pinned-unrestricted: blocks the REPRO_LOCK_ADMISSION
            # fallback the same way faults="" blocks REPRO_FAULTS.
            lock_admission=(
                self.lock_admission if self.lock_admission is not None else 0
            ),
            scheduler=self.scheduler,
            machine=builders.small_machine(
                self.n_processors, quantum=self.quantum
            ),
            server_interval=self.server_interval,
            poll_interval=self.poll_interval,
            policy=self.policy,
            shards=self.shards,
            seed=self.seed,
            max_time=self.max_time,
            idle_spin=self.idle_spin,
            faults=self.faults,
            supervise=self.supervise,
        )

    def with_(self, **overrides: Any) -> "ScenarioCase":
        """A copy with fields replaced (fault-free twins, ablations)."""
        return replace(self, **overrides)

    # -- serialization -------------------------------------------------------

    def to_dict(self) -> Dict[str, Any]:
        """A plain-data record (picklable, YAML/JSON-serializable)."""
        return asdict(self)

    @classmethod
    def from_dict(cls, record: Dict[str, Any]) -> "ScenarioCase":
        record = dict(record)
        record["apps"] = tuple(
            CaseApp(**app) if isinstance(app, dict) else app
            for app in record.get("apps", ())
        )
        expect = record.get("expect")
        if isinstance(expect, dict):
            record["expect"] = Expect(**expect)
        return cls(**record)


def load_cases_yaml(path: str) -> List[ScenarioCase]:
    """Load extra corpus entries from a YAML file (a list of case records).

    YAML support is optional -- the container may not ship ``pyyaml`` --
    so the import is local and a missing module raises a clear error only
    when the feature is actually used.
    """
    try:
        import yaml
    except ImportError as exc:  # pragma: no cover - environment-dependent
        raise RuntimeError(
            "loading YAML corpora requires pyyaml; express the cases as "
            "dicts and use ScenarioCase.from_dict instead"
        ) from exc
    with open(path, "r", encoding="utf-8") as handle:
        records = yaml.safe_load(handle) or []
    return [ScenarioCase.from_dict(record) for record in records]


def dump_cases_yaml(cases: List[ScenarioCase], path: str) -> None:
    """Write cases to a YAML file (the inverse of :func:`load_cases_yaml`)."""
    try:
        import yaml
    except ImportError as exc:  # pragma: no cover - environment-dependent
        raise RuntimeError("dumping YAML corpora requires pyyaml") from exc
    with open(path, "w", encoding="utf-8") as handle:
        yaml.safe_dump(
            [case.to_dict() for case in cases], handle, sort_keys=False
        )
