"""Picklable per-lock contention telemetry snapshots.

:class:`~repro.sync.spinlock.SpinLock` and
:class:`~repro.sync.mutex.Mutex` accumulate raw counters in place while
the kernel drives them; a :class:`LockStats` freezes those counters into
a plain dataclass that survives pickling across the parallel sweep
runner and lands in :class:`~repro.workloads.runner.ScenarioResult`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict


@dataclass(frozen=True)
class LockStats:
    """Frozen contention telemetry for one lock.

    Times are simulated microseconds.  ``waiters_hist`` maps the queue
    depth observed at each wait entry (0 for uncontended acquires) to how
    many acquire attempts observed it.
    """

    name: str
    kind: str  # "spin" or "mutex"
    acquisitions: int = 0
    contended_acquisitions: int = 0
    holder_preempted_encounters: int = 0
    total_spin_time: int = 0
    total_hold_time: int = 0
    total_wait_time: int = 0
    handoffs: int = 0
    handoff_latency_max: int = 0
    waiters_hist: Dict[int, int] = field(default_factory=dict)
    passivations: int = 0
    readmissions: int = 0
    culled_peak: int = 0
    admission: Any = None

    @property
    def handoff_latency_mean(self) -> float:
        """Mean contended-acquire wait in microseconds (0 if none)."""
        if not self.handoffs:
            return 0.0
        return self.total_wait_time / self.handoffs

    @property
    def waiters_peak(self) -> int:
        """Deepest queue any acquire attempt observed."""
        return max(self.waiters_hist, default=0)

    @classmethod
    def from_lock(cls, lock: Any) -> "LockStats":
        """Snapshot a live SpinLock or Mutex (duck-typed)."""
        kind = "spin" if hasattr(lock, "spinners") else "mutex"
        return cls(
            name=lock.name,
            kind=kind,
            acquisitions=lock.acquisitions,
            contended_acquisitions=lock.contended_acquisitions,
            holder_preempted_encounters=getattr(
                lock, "holder_preempted_encounters", 0
            ),
            total_spin_time=getattr(lock, "total_spin_time", 0),
            total_hold_time=getattr(lock, "total_hold_time", 0),
            total_wait_time=lock.total_wait_time,
            handoffs=lock.handoffs,
            handoff_latency_max=lock.handoff_latency_max,
            waiters_hist=dict(lock.wait_hist),
            passivations=lock.passivations,
            readmissions=lock.readmissions,
            culled_peak=lock.culled_peak,
            admission=lock.admission,
        )

    def merged(self, other: "LockStats") -> "LockStats":
        """Combine two snapshots (for aggregating a lock family)."""
        hist = dict(self.waiters_hist)
        for depth, count in other.waiters_hist.items():
            hist[depth] = hist.get(depth, 0) + count
        return LockStats(
            name=self.name,
            kind=self.kind,
            acquisitions=self.acquisitions + other.acquisitions,
            contended_acquisitions=(
                self.contended_acquisitions + other.contended_acquisitions
            ),
            holder_preempted_encounters=(
                self.holder_preempted_encounters
                + other.holder_preempted_encounters
            ),
            total_spin_time=self.total_spin_time + other.total_spin_time,
            total_hold_time=self.total_hold_time + other.total_hold_time,
            total_wait_time=self.total_wait_time + other.total_wait_time,
            handoffs=self.handoffs + other.handoffs,
            handoff_latency_max=max(
                self.handoff_latency_max, other.handoff_latency_max
            ),
            waiters_hist=hist,
            passivations=self.passivations + other.passivations,
            readmissions=self.readmissions + other.readmissions,
            culled_peak=max(self.culled_peak, other.culled_peak),
            admission=self.admission,
        )
