"""Busy-waiting spinlock state.

Semantics (enforced by the kernel when servicing ``SpinAcquire`` /
``SpinRelease`` syscalls):

* A free lock is acquired immediately for a small fixed cost.
* A held lock puts the caller into the *spinning* state: the process stays
  dispatched on its processor, consuming cycles but doing no work.
* On release, ownership is handed to the longest-spinning process that is
  *currently running*; spinners that were preempted mid-spin re-attempt when
  they are next dispatched.  (Only scheduled processes contend -- the
  observation the paper makes under Figure 1.)

The lock records contention statistics used by the experiment reports:
total spin time, number of contended acquires, and -- the paper's smoking
gun -- how often an acquire found the lock held by a *preempted* process.

Two optional knobs model the modern sequel to the paper's story
(Malthusian locks; Dice & Kogan's "Avoiding Scalability Collapse by
Restricting Concurrency"):

* ``contention_penalty`` -- extra microseconds added to every ownership
  hand-off *per remaining spinner*, modelling the invalidation storm the
  releasing cache line suffers on a saturated lock.  With it non-zero,
  throughput provably collapses as spinners grow even with zero
  preemption.  Default 0: hand-offs cost exactly ``handoff_cost`` and
  behaviour is bit-identical to earlier revisions.
* ``admission`` -- the concurrency-restriction knob.  At most ``admission``
  processes may actively spin; excess waiters are *passivated* by the
  kernel into the ``culled`` list (they block, keeping their acquire
  syscall pending) and are readmitted one per release, i.e. clocked by
  the lock's measured service rate.  ``None`` disables restriction.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional


class SpinLock:
    """State for one spinlock.

    Attributes:
        name: label used in traces and reports.
        acquire_cost: microseconds charged for an uncontended acquire.
        release_cost: microseconds charged for a release.
        handoff_cost: microseconds charged to transfer ownership to a
            spinner (models the cache-line ping).
        contention_penalty: extra hand-off microseconds per remaining
            spinner (models the invalidation storm; 0 = classic model).
        admission: max processes allowed to spin concurrently, or ``None``
            for unrestricted spinning.
        holder_pid: pid currently holding the lock, or ``None``.
        spinners: processes currently dispatched and busy-waiting, oldest
            first.  Typed ``Any`` to avoid importing the kernel package.
        culled: passivated waiters (blocked, acquire still pending),
            oldest first.  Only populated when ``admission`` is set.
    """

    __slots__ = (
        "name",
        "acquire_cost",
        "release_cost",
        "handoff_cost",
        "contention_penalty",
        "admission",
        "holder_pid",
        "spinners",
        "culled",
        "acquisitions",
        "contended_acquisitions",
        "holder_preempted_encounters",
        "total_spin_time",
        "hold_started_at",
        "total_hold_time",
        "wait_started",
        "wait_hist",
        "total_wait_time",
        "handoffs",
        "handoff_latency_total",
        "handoff_latency_max",
        "passivations",
        "readmissions",
        "culled_peak",
        "last_released_at",
        "service_interval_ewma",
    )

    def __init__(
        self,
        name: str = "spinlock",
        acquire_cost: int = 2,
        release_cost: int = 1,
        handoff_cost: int = 3,
        contention_penalty: int = 0,
        admission: Optional[int] = None,
    ) -> None:
        if contention_penalty < 0:
            raise ValueError("contention_penalty must be >= 0")
        if admission is not None and admission < 1:
            raise ValueError("admission must be >= 1 (or None to disable)")
        self.name = name
        self.acquire_cost = acquire_cost
        self.release_cost = release_cost
        self.handoff_cost = handoff_cost
        self.contention_penalty = contention_penalty
        self.admission = admission
        self.holder_pid: Optional[int] = None
        self.spinners: List[Any] = []
        self.culled: List[Any] = []
        # statistics
        self.acquisitions = 0
        self.contended_acquisitions = 0
        self.holder_preempted_encounters = 0
        self.total_spin_time = 0
        self.hold_started_at: Optional[int] = None
        self.total_hold_time = 0
        # contention telemetry
        self.wait_started: Dict[int, int] = {}
        self.wait_hist: Dict[int, int] = {}
        self.total_wait_time = 0
        self.handoffs = 0
        self.handoff_latency_total = 0
        self.handoff_latency_max = 0
        self.passivations = 0
        self.readmissions = 0
        self.culled_peak = 0
        self.last_released_at: Optional[int] = None
        self.service_interval_ewma: Optional[float] = None

    @property
    def held(self) -> bool:
        """True while some process owns the lock."""
        return self.holder_pid is not None

    @property
    def waiting(self) -> int:
        """Processes waiting for the lock right now (spinning or culled)."""
        return len(self.spinners) + len(self.culled)

    def handoff_charge(self) -> int:
        """Microseconds the next ownership hand-off costs.

        ``handoff_cost`` plus the invalidation-storm penalty scaled by the
        spinners that will still be chewing on the cache line *after* the
        hand-off (the grantee itself no longer spins).
        """
        remaining = max(0, len(self.spinners) - 1)
        return self.handoff_cost + self.contention_penalty * remaining

    def note_wait_started(self, pid: int, now: int) -> None:
        """Record that *pid* started waiting at *now* (kernel hook).

        Samples the waiters histogram with the queue depth the arriving
        process observed.  ``setdefault`` keeps the *earliest* wait start
        across preempt-and-retry cycles so hand-off latency measures the
        full wall-clock wait, but each retry re-samples the histogram
        (each is a fresh observation of the queue).
        """
        self.wait_hist[self.waiting] = self.wait_hist.get(self.waiting, 0) + 1
        self.wait_started.setdefault(pid, now)

    def note_culled(self, process: Any) -> None:
        """Record that *process* was passivated into the culled set."""
        self.culled.append(process)
        self.passivations += 1
        if len(self.culled) > self.culled_peak:
            self.culled_peak = len(self.culled)

    def note_readmitted(self) -> None:
        """Record that one culled waiter was released back to contention."""
        self.readmissions += 1

    def note_acquired(self, pid: int, now: int, contended: bool) -> None:
        """Record that *pid* took the lock at time *now* (kernel hook)."""
        if self.holder_pid is not None:
            raise RuntimeError(
                f"spinlock {self.name!r}: acquire by {pid} while held "
                f"by {self.holder_pid}"
            )
        self.holder_pid = pid
        self.hold_started_at = now
        self.acquisitions += 1
        if contended:
            self.contended_acquisitions += 1
        started = self.wait_started.pop(pid, None)
        if started is not None:
            # The process waited at some point (possibly across a
            # preempt-and-retry cycle that ends in a free-lock acquire).
            latency = now - started
            self.total_wait_time += latency
            self.handoffs += 1
            self.handoff_latency_total += latency
            if latency > self.handoff_latency_max:
                self.handoff_latency_max = latency
        elif not contended:
            # Uncontended acquire: the arriving process saw zero waiters.
            self.wait_hist[0] = self.wait_hist.get(0, 0) + 1

    def note_released(self, pid: int, now: int) -> None:
        """Record that *pid* released the lock at time *now* (kernel hook)."""
        if self.holder_pid != pid:
            raise RuntimeError(
                f"spinlock {self.name!r}: release by {pid} but held "
                f"by {self.holder_pid}"
            )
        self.holder_pid = None
        if self.hold_started_at is not None:
            self.total_hold_time += now - self.hold_started_at
            self.hold_started_at = None
        # Service-rate estimate: EWMA of the release-to-release interval.
        # Readmission is clocked by releases, so this is the measured rate
        # at which culled waiters get another shot.
        if self.last_released_at is not None:
            interval = float(now - self.last_released_at)
            if self.service_interval_ewma is None:
                self.service_interval_ewma = interval
            else:
                self.service_interval_ewma = (
                    0.25 * interval + 0.75 * self.service_interval_ewma
                )
        self.last_released_at = now

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<SpinLock {self.name!r} holder={self.holder_pid} "
            f"spinners={len(self.spinners)} culled={len(self.culled)}>"
        )
