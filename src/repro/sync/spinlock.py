"""Busy-waiting spinlock state.

Semantics (enforced by the kernel when servicing ``SpinAcquire`` /
``SpinRelease`` syscalls):

* A free lock is acquired immediately for a small fixed cost.
* A held lock puts the caller into the *spinning* state: the process stays
  dispatched on its processor, consuming cycles but doing no work.
* On release, ownership is handed to the longest-spinning process that is
  *currently running*; spinners that were preempted mid-spin re-attempt when
  they are next dispatched.  (Only scheduled processes contend -- the
  observation the paper makes under Figure 1.)

The lock records contention statistics used by the experiment reports:
total spin time, number of contended acquires, and -- the paper's smoking
gun -- how often an acquire found the lock held by a *preempted* process.
"""

from __future__ import annotations

from typing import Any, List, Optional


class SpinLock:
    """State for one spinlock.

    Attributes:
        name: label used in traces and reports.
        acquire_cost: microseconds charged for an uncontended acquire.
        release_cost: microseconds charged for a release.
        handoff_cost: microseconds charged to transfer ownership to a
            spinner (models the cache-line ping).
        holder_pid: pid currently holding the lock, or ``None``.
        spinners: processes currently dispatched and busy-waiting, oldest
            first.  Typed ``Any`` to avoid importing the kernel package.
    """

    __slots__ = (
        "name",
        "acquire_cost",
        "release_cost",
        "handoff_cost",
        "holder_pid",
        "spinners",
        "acquisitions",
        "contended_acquisitions",
        "holder_preempted_encounters",
        "total_spin_time",
        "hold_started_at",
        "total_hold_time",
    )

    def __init__(
        self,
        name: str = "spinlock",
        acquire_cost: int = 2,
        release_cost: int = 1,
        handoff_cost: int = 3,
    ) -> None:
        self.name = name
        self.acquire_cost = acquire_cost
        self.release_cost = release_cost
        self.handoff_cost = handoff_cost
        self.holder_pid: Optional[int] = None
        self.spinners: List[Any] = []
        # statistics
        self.acquisitions = 0
        self.contended_acquisitions = 0
        self.holder_preempted_encounters = 0
        self.total_spin_time = 0
        self.hold_started_at: Optional[int] = None
        self.total_hold_time = 0

    @property
    def held(self) -> bool:
        """True while some process owns the lock."""
        return self.holder_pid is not None

    def note_acquired(self, pid: int, now: int, contended: bool) -> None:
        """Record that *pid* took the lock at time *now* (kernel hook)."""
        if self.holder_pid is not None:
            raise RuntimeError(
                f"spinlock {self.name!r}: acquire by {pid} while held "
                f"by {self.holder_pid}"
            )
        self.holder_pid = pid
        self.hold_started_at = now
        self.acquisitions += 1
        if contended:
            self.contended_acquisitions += 1

    def note_released(self, pid: int, now: int) -> None:
        """Record that *pid* released the lock at time *now* (kernel hook)."""
        if self.holder_pid != pid:
            raise RuntimeError(
                f"spinlock {self.name!r}: release by {pid} but held "
                f"by {self.holder_pid}"
            )
        self.holder_pid = None
        if self.hold_started_at is not None:
            self.total_hold_time += now - self.hold_started_at
            self.hold_started_at = None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<SpinLock {self.name!r} holder={self.holder_pid} "
            f"spinners={len(self.spinners)}>"
        )
