"""Cyclic barrier state.

Process-level blocking barrier: the first ``parties - 1`` arrivals block;
the last arrival releases everyone and the barrier resets for reuse.

Note that the applications in :mod:`repro.apps` mostly use *phase
continuations* in the threads package (tasks of the next phase are enqueued
when the previous phase drains) rather than process-level barriers, exactly
because the task-queue model makes that the safe-suspension-friendly way to
express phased algorithms.  The kernel barrier exists for programs written
directly against the kernel and for the coscheduling experiments.
"""

from __future__ import annotations

from typing import Any, List


class Barrier:
    """State for one cyclic barrier (kernel performs transitions)."""

    __slots__ = ("name", "parties", "waiters", "generation", "wait_cost", "trips")

    def __init__(self, parties: int, name: str = "barrier", wait_cost: int = 5) -> None:
        if parties < 1:
            raise ValueError(f"barrier parties must be >= 1, got {parties}")
        self.name = name
        self.parties = parties
        self.waiters: List[Any] = []
        self.generation = 0
        self.wait_cost = wait_cost
        self.trips = 0

    @property
    def n_waiting(self) -> int:
        """Number of processes currently blocked at the barrier."""
        return len(self.waiters)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<Barrier {self.name!r} {self.n_waiting}/{self.parties} "
            f"gen={self.generation}>"
        )
