"""Condition variable state.

Mesa-style semantics, always used with a :class:`~repro.sync.mutex.Mutex`:
``CondWait`` atomically releases the mutex and blocks; a signalled process
re-acquires the mutex (possibly blocking again on it) before its wait
returns.  The kernel implements these steps when servicing the syscalls.
"""

from __future__ import annotations

from typing import Any, List

from repro.sync.mutex import Mutex


class ConditionVariable:
    """State for one condition variable (kernel performs transitions)."""

    __slots__ = ("name", "mutex", "waiters", "signals", "broadcasts", "wait_cost")

    def __init__(self, mutex: Mutex, name: str = "condvar", wait_cost: int = 5) -> None:
        self.name = name
        self.mutex = mutex
        self.waiters: List[Any] = []
        self.signals = 0
        self.broadcasts = 0
        self.wait_cost = wait_cost

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<ConditionVariable {self.name!r} waiters={len(self.waiters)}>"
