"""Busy-wait (spinning) barrier, 1989-style.

Era threads packages commonly implemented barriers by polling a shared
counter -- cheap when every party has its own processor, catastrophic when
a straggler is preempted and the pollers burn their quanta (Section 2,
point 2).  The blocking :class:`~repro.sync.barrier.Barrier` is the
well-behaved alternative; the mechanisms experiment contrasts them.

Unlike the kernel-backed primitives, a spin barrier needs no syscall
support: arrival and release are plain shared-memory updates (atomic
between simulation yields), and waiting is a ``Compute`` polling loop.
Use :func:`spin_barrier_wait` from inside a program::

    def worker(sb):
        for _ in range(phases):
            yield Compute(work)
            yield from spin_barrier_wait(sb)
"""

from __future__ import annotations


class SpinBarrier:
    """Shared state of one busy-wait barrier.

    Attributes:
        parties: processes per rendezvous.
        poll_gap: CPU burnt per poll iteration while waiting.
        trips: completed rendezvous (statistics).
        poll_time: total CPU burnt polling across all waiters (statistics;
            this is the waste the paper's point 2 describes).
    """

    __slots__ = ("name", "parties", "poll_gap", "arrived", "generation",
                 "trips", "poll_time")

    def __init__(self, parties: int, name: str = "spinbarrier",
                 poll_gap: int = 200) -> None:
        if parties < 1:
            raise ValueError(f"parties must be >= 1, got {parties}")
        if poll_gap < 1:
            raise ValueError(f"poll_gap must be >= 1, got {poll_gap}")
        self.name = name
        self.parties = parties
        self.poll_gap = poll_gap
        self.arrived = 0
        self.generation = 0
        self.trips = 0
        self.poll_time = 0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<SpinBarrier {self.name!r} {self.arrived}/{self.parties} "
            f"gen={self.generation}>"
        )


def spin_barrier_wait(barrier: SpinBarrier):
    """Program fragment: arrive at *barrier* and busy-wait for the rest.

    The last arrival flips the generation, releasing every poller at its
    next poll.  Yields ``Compute`` bursts while waiting -- the waiting
    process stays runnable and occupies its processor, exactly like the
    spin-barriers of era threads packages.
    """
    # Imported here, not at module top: repro.kernel.syscalls itself
    # imports repro.sync (for the primitive types), so a top-level import
    # would be circular.
    from repro.kernel import syscalls as sc

    my_generation = barrier.generation
    barrier.arrived += 1
    if barrier.arrived == barrier.parties:
        barrier.arrived = 0
        barrier.generation += 1
        barrier.trips += 1
        return
    while barrier.generation == my_generation:
        barrier.poll_time += barrier.poll_gap
        yield sc.Compute(barrier.poll_gap)
