"""Counting semaphore state.

Used by the producer/consumer synthetic application that reproduces
degradation source #2 of Section 2 (consumers scheduled while the producer
is preempted find nothing to do).
"""

from __future__ import annotations

from typing import Any, List


class Semaphore:
    """State for one counting semaphore (kernel performs transitions)."""

    __slots__ = ("name", "count", "waiters", "wait_cost", "post_cost", "posts", "waits")

    def __init__(self, name: str = "semaphore", initial: int = 0,
                 wait_cost: int = 5, post_cost: int = 5) -> None:
        if initial < 0:
            raise ValueError(f"initial semaphore count must be >= 0, got {initial}")
        self.name = name
        self.count = initial
        self.waiters: List[Any] = []
        self.wait_cost = wait_cost
        self.post_cost = post_cost
        self.posts = 0
        self.waits = 0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<Semaphore {self.name!r} count={self.count} "
            f"waiters={len(self.waiters)}>"
        )
