"""Blocking mutual-exclusion lock state.

Unlike a :class:`~repro.sync.spinlock.SpinLock`, a process that fails to
acquire a :class:`Mutex` blocks: it leaves its processor and waits on the
mutex's FIFO queue.  The kernel wakes the head waiter on release and hands
it ownership directly (no barging), so the lock is fair.

A mutex never burns cycles, so it cannot collapse the way a saturated
spinlock does -- but a deep waiter queue still inflates hand-off latency
(every waiter pays a full wake/dispatch round trip).  The optional
``admission`` knob applies the same Malthusian restriction as the
spinlock's: at most ``admission`` processes sit on the active FIFO, the
rest are parked in ``culled`` and fed back one per release.  Culled
waiters re-enter at the *head*-most culled position last (LIFO), trading
fairness for cache warmth exactly as the Malthusian-lock paper
prescribes for its passive set.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional


class Mutex:
    """State for one blocking lock."""

    __slots__ = (
        "name",
        "acquire_cost",
        "release_cost",
        "admission",
        "holder_pid",
        "waiters",
        "culled",
        "acquisitions",
        "contended_acquisitions",
        "wait_started",
        "wait_hist",
        "total_wait_time",
        "handoffs",
        "handoff_latency_total",
        "handoff_latency_max",
        "passivations",
        "readmissions",
        "culled_peak",
    )

    def __init__(
        self,
        name: str = "mutex",
        acquire_cost: int = 5,
        release_cost: int = 5,
        admission: Optional[int] = None,
    ):
        if admission is not None and admission < 1:
            raise ValueError("admission must be >= 1 (or None to disable)")
        self.name = name
        self.acquire_cost = acquire_cost
        self.release_cost = release_cost
        self.admission = admission
        self.holder_pid: Optional[int] = None
        self.waiters: List[Any] = []
        self.culled: List[Any] = []
        self.acquisitions = 0
        self.contended_acquisitions = 0
        # contention telemetry
        self.wait_started: Dict[int, int] = {}
        self.wait_hist: Dict[int, int] = {}
        self.total_wait_time = 0
        self.handoffs = 0
        self.handoff_latency_total = 0
        self.handoff_latency_max = 0
        self.passivations = 0
        self.readmissions = 0
        self.culled_peak = 0

    @property
    def held(self) -> bool:
        """True while some process owns the mutex."""
        return self.holder_pid is not None

    @property
    def waiting(self) -> int:
        """Processes waiting for the mutex right now (queued or culled)."""
        return len(self.waiters) + len(self.culled)

    def note_wait_started(self, pid: int, now: int) -> None:
        """Record that *pid* started waiting at *now* (kernel hook)."""
        self.wait_hist[self.waiting] = self.wait_hist.get(self.waiting, 0) + 1
        self.wait_started.setdefault(pid, now)

    def note_culled(self, process: Any) -> None:
        """Record that *process* was passivated into the culled set."""
        self.culled.append(process)
        self.passivations += 1
        if len(self.culled) > self.culled_peak:
            self.culled_peak = len(self.culled)

    def note_readmitted(self) -> None:
        """Record that one culled waiter rejoined the active queue."""
        self.readmissions += 1

    def note_acquired(
        self, pid: int, contended: bool, now: Optional[int] = None
    ) -> None:
        """Record ownership transfer to *pid* (kernel hook)."""
        if self.holder_pid is not None:
            raise RuntimeError(
                f"mutex {self.name!r}: acquire by {pid} while held by {self.holder_pid}"
            )
        self.holder_pid = pid
        self.acquisitions += 1
        if contended:
            self.contended_acquisitions += 1
        started = self.wait_started.pop(pid, None)
        if started is not None and now is not None:
            latency = now - started
            self.total_wait_time += latency
            self.handoffs += 1
            self.handoff_latency_total += latency
            if latency > self.handoff_latency_max:
                self.handoff_latency_max = latency
        elif started is None and not contended:
            self.wait_hist[0] = self.wait_hist.get(0, 0) + 1

    def note_released(self, pid: int) -> None:
        """Record that *pid* gave up ownership (kernel hook)."""
        if self.holder_pid != pid:
            raise RuntimeError(
                f"mutex {self.name!r}: release by {pid} but held by {self.holder_pid}"
            )
        self.holder_pid = None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<Mutex {self.name!r} holder={self.holder_pid} "
            f"waiters={len(self.waiters)} culled={len(self.culled)}>"
        )
