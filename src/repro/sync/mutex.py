"""Blocking mutual-exclusion lock state.

Unlike a :class:`~repro.sync.spinlock.SpinLock`, a process that fails to
acquire a :class:`Mutex` blocks: it leaves its processor and waits on the
mutex's FIFO queue.  The kernel wakes the head waiter on release and hands
it ownership directly (no barging), so the lock is fair.
"""

from __future__ import annotations

from typing import Any, List, Optional


class Mutex:
    """State for one blocking lock."""

    __slots__ = (
        "name",
        "acquire_cost",
        "release_cost",
        "holder_pid",
        "waiters",
        "acquisitions",
        "contended_acquisitions",
    )

    def __init__(self, name: str = "mutex", acquire_cost: int = 5, release_cost: int = 5):
        self.name = name
        self.acquire_cost = acquire_cost
        self.release_cost = release_cost
        self.holder_pid: Optional[int] = None
        self.waiters: List[Any] = []
        self.acquisitions = 0
        self.contended_acquisitions = 0

    @property
    def held(self) -> bool:
        """True while some process owns the mutex."""
        return self.holder_pid is not None

    def note_acquired(self, pid: int, contended: bool) -> None:
        """Record ownership transfer to *pid* (kernel hook)."""
        if self.holder_pid is not None:
            raise RuntimeError(
                f"mutex {self.name!r}: acquire by {pid} while held by {self.holder_pid}"
            )
        self.holder_pid = pid
        self.acquisitions += 1
        if contended:
            self.contended_acquisitions += 1

    def note_released(self, pid: int) -> None:
        """Record that *pid* gave up ownership (kernel hook)."""
        if self.holder_pid != pid:
            raise RuntimeError(
                f"mutex {self.name!r}: release by {pid} but held by {self.holder_pid}"
            )
        self.holder_pid = None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<Mutex {self.name!r} holder={self.holder_pid} "
            f"waiters={len(self.waiters)}>"
        )
