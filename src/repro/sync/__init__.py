"""Synchronization primitives for simulated processes.

These objects are *passive state*: they hold ownership and waiter lists, and
the kernel (:mod:`repro.kernel.kernel`) performs all transitions when it
services the corresponding syscalls.  Keeping them passive avoids circular
imports and makes each primitive unit-testable in isolation.

Two families matter for the paper:

* :class:`~repro.sync.spinlock.SpinLock` -- busy-waiting locks.  A process
  that fails to acquire one *keeps its processor and burns cycles*.  When the
  lock holder is preempted, every spinner wastes its whole quantum -- this is
  degradation source #1 in Section 2 of the paper.
* Blocking primitives (:class:`~repro.sync.mutex.Mutex`,
  :class:`~repro.sync.semaphore.Semaphore`,
  :class:`~repro.sync.barrier.Barrier`,
  :class:`~repro.sync.condvar.ConditionVariable`) -- waiters give up the
  processor and sit on the primitive's queue.
"""

from repro.sync.spinlock import SpinLock
from repro.sync.mutex import Mutex
from repro.sync.semaphore import Semaphore
from repro.sync.barrier import Barrier
from repro.sync.condvar import ConditionVariable
from repro.sync.spinbarrier import SpinBarrier, spin_barrier_wait
from repro.sync.stats import LockStats

__all__ = [
    "SpinLock",
    "Mutex",
    "LockStats",
    "Semaphore",
    "Barrier",
    "ConditionVariable",
    "SpinBarrier",
    "spin_barrier_wait",
]
