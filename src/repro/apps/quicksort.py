"""A divide-and-conquer quicksort expressed with *dynamic* task spawning.

The paper's task model explicitly allows a running thread to "add new
threads to the task queue"; the four benchmark applications exercise the
static/phased side of that model, and this application exercises the
dynamic side: each partition task spawns its two sub-partitions with
:class:`~repro.threads.task.SpawnTask` until segments fall below the
sequential cutoff.  Parallelism therefore *unfolds at runtime*, which
stresses the process-control safe points in a different way -- the number
of outstanding tasks swings from 1 to hundreds and back.
"""

from __future__ import annotations

from typing import Dict, List

from repro.apps.base import Application
from repro.sim import units
from repro.sync import SpinLock
from repro.threads.task import SpawnTask, Task


class QuickSort(Application):
    """Task-parallel quicksort over ``n_elements`` abstract elements.

    Costs model comparison work: partitioning a segment of length ``n``
    costs ``cost_per_element * n``; segments at or below ``cutoff`` are
    sorted sequentially for ``cost_per_element * n * log2-ish`` work.
    Segment lengths are deterministic given the seed (a biased split keeps
    the recursion tree interesting without pathological depth).

    Attributes:
        tasks_spawned: total partition/sort tasks created (test hook).
    """

    cache_footprint = 0.7

    def __init__(
        self,
        app_id: str = "quicksort",
        n_elements: int = 200_000,
        cutoff: int = 4_000,
        cost_per_element: int = 2,  # us per element partitioned
        scale: float = 1.0,
        seed: int = 0,
    ) -> None:
        super().__init__(app_id, seed)
        if n_elements < 1:
            raise ValueError("n_elements must be >= 1")
        if cutoff < 1:
            raise ValueError("cutoff must be >= 1")
        self.n_elements = n_elements
        self.cutoff = cutoff
        self.cost_per_element = max(1, int(cost_per_element * scale))
        self.merge_lock = SpinLock(f"{app_id}.done")
        self.tasks_spawned = 0
        self.segments_sorted = 0

    # -- task construction ---------------------------------------------------

    def _split(self, length: int) -> int:
        """Deterministic, mildly unbalanced pivot position."""
        rng = self.streams.get("pivots")
        fraction = rng.uniform(0.35, 0.65)
        left = int(length * fraction)
        return min(max(left, 1), length - 1)

    def _segment_task(self, label: str, length: int) -> Task:
        self.tasks_spawned += 1
        app = self

        def body():
            if length <= app.cutoff:
                # Sequential sort of a small segment.
                from repro.kernel import syscalls as sc

                yield sc.Compute(app.cost_per_element * length * 2)
                yield sc.SpinAcquire(app.merge_lock)
                app.segments_sorted += 1
                yield sc.Compute(units.us(20))
                yield sc.SpinRelease(app.merge_lock)
                return
            # Partition pass over the whole segment, then spawn halves.
            from repro.kernel import syscalls as sc

            yield sc.Compute(app.cost_per_element * length)
            left = app._split(length)
            right = length - left
            yield SpawnTask(app._segment_task(f"{label}l", left))
            yield SpawnTask(app._segment_task(f"{label}r", right))

        return Task(name=f"{self.app_id}.{label}", body=body)

    # -- Application interface -------------------------------------------------

    def initial_tasks(self) -> List[Task]:
        return [self._segment_task("root", self.n_elements)]

    def total_work(self) -> int:
        # Work is data-dependent (pivot draws); give the guaranteed lower
        # bound: one partition pass over the root plus sequential sorting.
        return self.cost_per_element * self.n_elements

    def describe(self) -> Dict[str, object]:
        return {
            "app_id": self.app_id,
            "kind": "quicksort",
            "n_elements": self.n_elements,
            "cutoff": self.cutoff,
            "cost_per_element_us": self.cost_per_element,
        }
