"""fft: "A parallel single-dimension Fast Fourier Transform, based on an
algorithm by Norton and Silberger ...  This FFT algorithm has several loops
that were broken into parts to provide parallelism."

Modelled as log-many butterfly phases.  Each phase is a set of loop-piece
tasks of roughly equal size (jittered for cache/data effects); a phase
barrier (expressed as a task-queue phase boundary) separates stages, which
is what makes fft sensitive to straggling preempted processes -- the effect
behind its large Figure 4 gain under process control.
"""

from __future__ import annotations

from typing import Dict, List

from repro.apps.base import PhasedApplication
from repro.sim import units
from repro.sync import SpinLock
from repro.threads.task import Task, compute_task


class FFT(PhasedApplication):
    """Phased one-dimensional FFT.

    Args:
        phases: butterfly stages (log2 of the problem size).
        tasks_per_phase: loop pieces per stage.
        task_cost: compute per piece (jittered +/-25%).
        critical_cost: spinlock-held twiddle/bookkeeping per piece.
        scale: multiplies all compute costs.
    """

    def __init__(
        self,
        app_id: str = "fft",
        phases: int = 14,
        tasks_per_phase: int = 48,
        task_cost: int = units.ms(480),
        critical_cost: int = units.ms(12),
        scale: float = 1.0,
        seed: int = 0,
    ) -> None:
        super().__init__(app_id, seed)
        if phases < 1 or tasks_per_phase < 1:
            raise ValueError("phases and tasks_per_phase must be >= 1")
        self._n_phases = phases
        self.tasks_per_phase = tasks_per_phase
        self.task_cost = max(1, int(task_cost * scale))
        self.critical_cost = max(0, int(critical_cost * scale))
        self.stage_lock = SpinLock(f"{app_id}.stage")
        self._costs = [
            [self._jitter(self.task_cost, 0.25) for _ in range(tasks_per_phase)]
            for _ in range(phases)
        ]

    @property
    def n_phases(self) -> int:
        return self._n_phases

    def phase_tasks(self, phase: int) -> List[Task]:
        return [
            compute_task(
                name=f"{self.app_id}.s{phase}.t{i}",
                cost=self._costs[phase][i],
                lock=self.stage_lock,
                critical_cost=self.critical_cost,
                phase=phase,
            )
            for i in range(self.tasks_per_phase)
        ]

    def total_work(self) -> int:
        return sum(sum(row) for row in self._costs) + (
            self._n_phases * self.tasks_per_phase * self.critical_cost
        )

    def describe(self) -> Dict[str, object]:
        return {
            "app_id": self.app_id,
            "kind": "fft",
            "phases": self._n_phases,
            "tasks_per_phase": self.tasks_per_phase,
            "task_cost_us": self.task_cost,
            "critical_cost_us": self.critical_cost,
        }
