"""Application interfaces for the task-queue model.

An :class:`Application` supplies tasks to a
:class:`~repro.threads.package.ThreadsPackage`:

* :meth:`initial_tasks` seeds the queue when the application starts;
* :meth:`on_task_done` may return follow-on tasks -- this is how phased
  algorithms express "the next loop begins when the previous one drains",
  the safe-suspension-friendly alternative to process-level barriers that
  Section 4.1's task model implies.

:class:`PhasedApplication` packages the common pattern: a fixed sequence of
phases, each a list of tasks; the phase boundary is crossed when its last
task completes.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Dict, List

from repro.sim.rand import RandomStreams
from repro.threads.task import Task


class Application(ABC):
    """Base class for task-queue applications."""

    #: Fraction of a full working set this application keeps resident in a
    #: processor cache (scales reload penalties); streaming applications
    #: override this downward.
    cache_footprint: float = 1.0

    def __init__(self, app_id: str, seed: int = 0) -> None:
        self.app_id = app_id
        self.seed = seed
        self.streams = RandomStreams(seed).fork(app_id)

    @abstractmethod
    def initial_tasks(self) -> List[Task]:
        """Tasks to enqueue when the application starts."""

    def on_task_done(self, task: Task) -> List[Task]:
        """Follow-on tasks released by *task*'s completion (default none)."""
        return []

    def total_work(self) -> int:
        """Total single-processor compute the application embodies, in
        microseconds (used to sanity-check speedups in tests)."""
        raise NotImplementedError

    def locks(self) -> tuple:
        """The application's own locks, for contention telemetry.

        Applications whose tasks contend on named locks override this to
        expose them; the scenario runner snapshots each into a
        :class:`~repro.sync.stats.LockStats` on ``ScenarioResult.locks``
        and applies scenario-level admission knobs to them.  The threads
        package's internal queue lock is *not* listed here -- it is
        reported separately via ``queue_lock_stats()``.
        """
        return ()

    def describe(self) -> Dict[str, object]:
        """Human-readable parameter summary for experiment reports."""
        return {"app_id": self.app_id}

    def _jitter(self, cost: int, fraction: float, stream: str = "jitter") -> int:
        """A deterministic jittered cost in ``[cost*(1-f), cost*(1+f)]``."""
        if fraction <= 0:
            return cost
        rng = self.streams.get(stream)
        return max(1, int(round(cost * (1.0 + rng.uniform(-fraction, fraction)))))


class PhasedApplication(Application):
    """An application that is a fixed sequence of task phases."""

    def __init__(self, app_id: str, seed: int = 0) -> None:
        super().__init__(app_id, seed)
        self._remaining: Dict[int, int] = {}

    @property
    @abstractmethod
    def n_phases(self) -> int:
        """Number of phases."""

    @abstractmethod
    def phase_tasks(self, phase: int) -> List[Task]:
        """Tasks of one phase.  Called once per phase, in order."""

    def initial_tasks(self) -> List[Task]:
        tasks = self.phase_tasks(0)
        if not tasks:
            raise ValueError(f"{self.app_id}: phase 0 produced no tasks")
        self._remaining[0] = len(tasks)
        return tasks

    def on_task_done(self, task: Task) -> List[Task]:
        phase = task.phase
        if phase not in self._remaining:
            raise RuntimeError(
                f"{self.app_id}: completion for phase {phase}, which is not "
                "in flight (duplicate completion or wrong phase)"
            )
        self._remaining[phase] -= 1
        if self._remaining[phase] < 0:
            raise RuntimeError(f"{self.app_id}: phase {phase} over-completed")
        if self._remaining[phase] == 0 and phase + 1 < self.n_phases:
            del self._remaining[phase]
            tasks = self.phase_tasks(phase + 1)
            if not tasks:
                raise ValueError(
                    f"{self.app_id}: phase {phase + 1} produced no tasks"
                )
            self._remaining[phase + 1] = len(tasks)
            return tasks
        return []
