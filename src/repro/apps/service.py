"""An open-arrival request-serving application.

A :class:`ServiceApp` is a tenant whose work arrives on its own clock: a
chain of dispatcher tasks (the listener thread, one short segment per
arrival) sleeps out each inter-arrival gap and pushes the request's task
DAG onto the ordinary task queue, so the threads package -- and
therefore process control -- sees nothing new.  The segments are marked
``urgent`` (front of the queue) so admission keeps pace with the arrival
clock instead of queueing behind backlogged stage work, and chaining
them keeps every segment short, so the package reaches its safe control
points (polls, demand and QoS reports, suspension) between arrivals
instead of being wedged inside one run-length dispatcher task.

Each request is ``fanout`` parallel stage tasks followed by one reduce
task released when the stages drain; the reduce task carries the request
id and its *intended* arrival instant in ``Task.meta``, which the threads
package stamps into the trace at completion.  Latency is measured from
the intended arrival, not from dispatch: if the dispatcher itself is
starved of CPU, that queueing delay is real latency -- the open-world
property that distinguishes a service from a batch job.

The application exposes a :class:`ServiceProfile` (SLO target, tier tag,
nominal zero-load latency); the threads package uses it to piggyback a
latency-slowdown estimate on its ordinary board polls, which the
SLO-aware allocation policy consumes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro.apps.base import Application
from repro.kernel import syscalls as sc
from repro.sim import units
from repro.threads.task import SpawnTask, Task
from repro.workloads.service import (
    SERVICE_TIERS,
    TIER_INTERACTIVE,
    bursty_arrivals,
    poisson_arrivals,
    trace_arrivals,
)


@dataclass(frozen=True)
class ServiceProfile:
    """What the control plane may know about a service tenant.

    Attributes:
        slo_us: the per-request latency objective, in microseconds.
        tier: ``"interactive"`` (has a latency target the SLO policy
            steers toward) or ``"batch"`` (absorbs slack).
        nominal_latency_us: zero-load service time of one request (stage
            plus reduce); the denominator of the slowdown estimate.
    """

    slo_us: int
    tier: str
    nominal_latency_us: int


class ServiceApp(Application):
    """Requests on a seeded Poisson/bursty/trace stream, each a small DAG.

    Args:
        app_id / seed: the usual application identity.
        rate_per_s: mean request arrival rate (ignored when *arrivals* is
            given).
        n_requests: how many requests the stream carries; the task census
            is exactly ``n_requests * (fanout + 2)`` (one dispatcher
            segment, ``fanout`` stages, and one reduce per request),
            knowable up front.
        fanout: parallel stage tasks per request (>= 1).
        stage_cost: compute cost of one stage task, microseconds.
        reduce_cost: compute cost of the reduce task (default: half a
            stage).
        slo_us: latency objective (default: 4x the nominal latency).
        tier: ``"interactive"`` or ``"batch"``.
        burst_factor: when set (> 1), arrivals come from
            :func:`~repro.workloads.service.bursty_arrivals` at this
            burst intensity instead of a flat Poisson stream.
        arrivals: explicit trace-driven arrival instants (overrides
            rate/burst generation; normalized via ``trace_arrivals``).
        jitter: per-stage cost jitter fraction (deterministic, seeded).
    """

    #: Streaming request data: small per-request footprint.
    cache_footprint = 0.3

    def __init__(
        self,
        app_id: str = "service",
        rate_per_s: float = 250.0,
        n_requests: int = 24,
        fanout: int = 2,
        stage_cost: int = units.ms(2),
        reduce_cost: Optional[int] = None,
        slo_us: Optional[int] = None,
        tier: str = TIER_INTERACTIVE,
        burst_factor: Optional[float] = None,
        arrivals: Optional[Sequence[int]] = None,
        jitter: float = 0.0,
        seed: int = 0,
    ) -> None:
        super().__init__(app_id, seed)
        if fanout < 1:
            raise ValueError(f"fanout must be >= 1, got {fanout}")
        if stage_cost < 1:
            raise ValueError(f"stage_cost must be >= 1, got {stage_cost}")
        if tier not in SERVICE_TIERS:
            raise ValueError(
                f"unknown service tier {tier!r}; expected one of {SERVICE_TIERS}"
            )
        if arrivals is not None:
            self.arrivals = trace_arrivals(arrivals)
        elif burst_factor is not None:
            self.arrivals = bursty_arrivals(
                rate_per_s, n_requests, seed=seed, burst_factor=burst_factor
            )
        else:
            self.arrivals = poisson_arrivals(rate_per_s, n_requests, seed=seed)
        self.n_requests = len(self.arrivals)
        self.rate_per_s = rate_per_s
        self.fanout = fanout
        self.stage_cost = stage_cost
        self.reduce_cost = (
            max(1, stage_cost // 2) if reduce_cost is None else reduce_cost
        )
        if self.reduce_cost < 1:
            raise ValueError(f"reduce_cost must be >= 1, got {self.reduce_cost}")
        nominal = stage_cost + self.reduce_cost
        self.slo_us = 4 * nominal if slo_us is None else slo_us
        if self.slo_us < 1:
            raise ValueError(f"slo_us must be >= 1, got {self.slo_us}")
        self.tier = tier
        self.jitter_fraction = jitter
        #: Read by the threads package to piggyback slowdown/tier reports
        #: on its ordinary board polls (absent on batch-only applications).
        self.service_profile = ServiceProfile(
            slo_us=self.slo_us, tier=tier, nominal_latency_us=nominal
        )
        #: request id -> stage tasks still in flight (filled at dispatch).
        self._pending: Dict[int, int] = {}

    # ------------------------------------------------------------------
    # The request DAG
    # ------------------------------------------------------------------

    def _stage_task(self, rid: int, stage: int) -> Task:
        cost = self._jitter(self.stage_cost, self.jitter_fraction)

        def body():
            yield sc.Compute(cost)

        return Task(
            name=f"{self.app_id}.r{rid}.s{stage}",
            body=body,
            meta={"service_stage": rid},
        )

    def _reduce_task(self, rid: int, arrival: int) -> Task:
        cost = self.reduce_cost

        def body():
            yield sc.Compute(cost)

        return Task(
            name=f"{self.app_id}.r{rid}.reduce",
            body=body,
            meta={
                "service_request": rid,
                "service_arrival": arrival,
                "service_slo": self.slo_us,
            },
        )

    def _dispatch_task(self, rid: int) -> Task:
        gap = self.arrivals[rid] - (self.arrivals[rid - 1] if rid else 0)

        def body():
            if gap:
                yield sc.Sleep(gap)
            self._pending[rid] = self.fanout
            for stage in range(self.fanout):
                yield SpawnTask(self._stage_task(rid, stage))

        return Task(
            name=f"{self.app_id}.dispatch{rid}",
            body=body,
            urgent=True,
            meta={"service_dispatch": rid},
        )

    def initial_tasks(self) -> List[Task]:
        return [self._dispatch_task(0)]

    def on_task_done(self, task: Task) -> List[Task]:
        rid = task.meta.get("service_dispatch")
        if rid is not None:
            # Chain the next listener segment; the chain (not a loop in
            # one task body) is what lets the package hit safe control
            # points between arrivals.
            if rid + 1 < self.n_requests:
                return [self._dispatch_task(rid + 1)]
            return []
        rid = task.meta.get("service_stage")
        if rid is None:
            return []
        remaining = self._pending[rid] - 1
        if remaining:
            self._pending[rid] = remaining
            return []
        del self._pending[rid]
        return [self._reduce_task(rid, self.arrivals[rid])]

    # ------------------------------------------------------------------
    # Reporting
    # ------------------------------------------------------------------

    def total_work(self) -> int:
        return self.n_requests * (
            self.fanout * self.stage_cost + self.reduce_cost
        )

    def describe(self) -> Dict[str, object]:
        return {
            "app_id": self.app_id,
            "kind": "service",
            "tier": self.tier,
            "n_requests": self.n_requests,
            "fanout": self.fanout,
            "stage_cost_us": self.stage_cost,
            "reduce_cost_us": self.reduce_cost,
            "slo_us": self.slo_us,
            "rate_per_s": self.rate_per_s,
        }
