"""Lock-saturation applications: the scalability-collapse workload.

Every task is one iteration of the canonical contention microbenchmark --
*think* for a while outside the lock, then update shared state inside a
short critical section:

    think (parallel) -> acquire -> critical section (serial) -> release

With ``T`` the think time and ``C`` the critical-section time, the lock
saturates once roughly ``T / C + 1`` threads run: the serial section is
always busy and every extra thread only deepens the spin queue.  Past
that knee, a spinlock with a non-zero ``contention_penalty`` (hand-off
cost grows with the number of spinners still hammering the cache line)
*collapses* -- aggregate throughput falls as threads are added, even
with zero preemption.  This is the modern sequel to the paper's
spinlock-preemption story (Malthusian locks; Dice & Kogan 2019), and the
``admission`` knob on the lock is the remedy the literature prescribes:
cull the excess waiters at the lock instead of (or as well as) sizing
the machine.

:class:`LockSaturationApp` exhibits the phenomenon; it exposes its lock
via :meth:`locks` so scenario-level restriction knobs and the telemetry
snapshotter can reach it.  ``blocking=True`` swaps the spinlock for a
mutex -- no cycles burned, no storm, but hand-off latency still grows
with queue depth, which is the contrast the experiment figure draws.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.apps.base import Application
from repro.kernel import syscalls as sc
from repro.sync import Mutex, SpinLock
from repro.threads.task import Task


class LockSaturationApp(Application):
    """Think/critical-section iterations hammering one shared lock."""

    def __init__(
        self,
        app_id: str = "locks",
        n_tasks: int = 64,
        think_time: int = 600,
        cs_time: int = 150,
        contention_penalty: int = 40,
        admission: Optional[int] = None,
        blocking: bool = False,
        jitter: float = 0.0,
        seed: int = 0,
    ) -> None:
        super().__init__(app_id, seed)
        if n_tasks < 1:
            raise ValueError("n_tasks must be >= 1")
        if think_time < 0 or cs_time < 1:
            raise ValueError("think_time must be >= 0 and cs_time >= 1")
        self.n_tasks = n_tasks
        self.think_time = think_time
        self.cs_time = cs_time
        self.jitter_fraction = jitter
        self.blocking = blocking
        if blocking:
            self.lock = Mutex(f"{app_id}.lock", admission=admission)
        else:
            self.lock = SpinLock(
                f"{app_id}.lock",
                contention_penalty=contention_penalty,
                admission=admission,
            )

    def saturation_knee(self) -> float:
        """Thread count at which the critical section stays always busy."""
        return self.think_time / self.cs_time + 1.0

    def locks(self) -> tuple:
        return (self.lock,)

    def initial_tasks(self) -> List[Task]:
        return [
            Task(
                name=f"{self.app_id}.t{i}",
                body=self._iteration(
                    self._jitter(self.think_time, self.jitter_fraction)
                    if self.think_time
                    else 0
                ),
            )
            for i in range(self.n_tasks)
        ]

    def _iteration(self, think: int):
        lock = self.lock
        cs = self.cs_time
        if self.blocking:
            def body():
                if think:
                    yield sc.Compute(think)
                yield sc.MutexAcquire(lock)
                yield sc.Compute(cs)
                yield sc.MutexRelease(lock)
        else:
            def body():
                if think:
                    yield sc.Compute(think)
                yield sc.SpinAcquire(lock)
                yield sc.Compute(cs)
                yield sc.SpinRelease(lock)
        return body

    def total_work(self) -> int:
        return self.n_tasks * (self.think_time + self.cs_time)

    def describe(self) -> Dict[str, object]:
        return {
            "app_id": self.app_id,
            "kind": "locks",
            "n_tasks": self.n_tasks,
            "think_time_us": self.think_time,
            "cs_time_us": self.cs_time,
            "blocking": self.blocking,
            "admission": self.lock.admission,
            "saturation_knee": round(self.saturation_knee(), 2),
        }
