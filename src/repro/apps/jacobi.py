"""Jacobi iteration: the classic barrier-per-sweep stencil workload.

Included as a fifth application because it is the *most* barrier-dense
realistic workload (one global barrier per sweep, dozens to hundreds of
sweeps), i.e. the worst case for uncontrolled multiprogramming that
Section 2's producer/consumer discussion predicts, and a natural extra
evaluation point beyond the paper's four applications.
"""

from __future__ import annotations

from typing import Dict, List

from repro.apps.base import PhasedApplication
from repro.sim import units
from repro.sync import SpinLock
from repro.threads.task import Task, compute_task


class Jacobi(PhasedApplication):
    """``sweeps`` phases of ``strips`` stencil-update tasks each.

    Args:
        sweeps: number of Jacobi iterations (phases).
        strips: row strips updated in parallel within a sweep.
        strip_cost: compute per strip per sweep (jittered +/-5%).
        residual_cost: spinlock-held residual accumulation per strip.
        scale: multiplies all compute costs.
    """

    def __init__(
        self,
        app_id: str = "jacobi",
        sweeps: int = 80,
        strips: int = 16,
        strip_cost: int = units.ms(60),
        residual_cost: int = units.ms(1),
        scale: float = 1.0,
        seed: int = 0,
    ) -> None:
        super().__init__(app_id, seed)
        if sweeps < 1 or strips < 1:
            raise ValueError("sweeps and strips must be >= 1")
        self._sweeps = sweeps
        self.strips = strips
        self.strip_cost = max(1, int(strip_cost * scale))
        self.residual_cost = max(0, int(residual_cost * scale))
        self.residual_lock = SpinLock(f"{app_id}.residual")

    @property
    def n_phases(self) -> int:
        return self._sweeps

    def phase_tasks(self, phase: int) -> List[Task]:
        return [
            compute_task(
                name=f"{self.app_id}.s{phase}.strip{i}",
                cost=self._jitter(self.strip_cost, 0.05, stream=f"sweep{phase}"),
                lock=self.residual_lock,
                critical_cost=self.residual_cost,
                phase=phase,
            )
            for i in range(self.strips)
        ]

    def total_work(self) -> int:
        return self._sweeps * self.strips * (self.strip_cost + self.residual_cost)

    def describe(self) -> Dict[str, object]:
        return {
            "app_id": self.app_id,
            "kind": "jacobi",
            "sweeps": self._sweeps,
            "strips": self.strips,
            "strip_cost_us": self.strip_cost,
            "residual_cost_us": self.residual_cost,
        }
