"""Synthetic applications for ablation studies.

Each isolates one of Section 2's degradation mechanisms:

- :class:`UniformApp` -- a knob-everything app: one phase of identical
  tasks with a configurable critical-section fraction.
- :class:`BarrierHeavyApp` -- many small phases: isolates the straggler /
  producer-consumer effect (point 2).
- :class:`CriticalSectionApp` -- long lock-held fraction: isolates
  preemption inside critical sections (point 1).
"""

from __future__ import annotations

from typing import Dict, List

from repro.apps.base import Application, PhasedApplication
from repro.sim import units
from repro.sync import SpinLock
from repro.threads.task import Task, compute_task


class UniformApp(Application):
    """One phase of identical tasks; the simplest calibration workload."""

    def __init__(
        self,
        app_id: str = "uniform",
        n_tasks: int = 200,
        task_cost: int = units.ms(100),
        critical_fraction: float = 0.0,
        jitter: float = 0.0,
        seed: int = 0,
    ) -> None:
        super().__init__(app_id, seed)
        if n_tasks < 1:
            raise ValueError("n_tasks must be >= 1")
        if not 0.0 <= critical_fraction < 1.0:
            raise ValueError("critical_fraction must be in [0, 1)")
        self.n_tasks = n_tasks
        self.task_cost = task_cost
        self.critical_cost = int(task_cost * critical_fraction)
        self.compute_cost = task_cost - self.critical_cost
        self.jitter_fraction = jitter
        self.lock = SpinLock(f"{app_id}.lock")

    def initial_tasks(self) -> List[Task]:
        return [
            compute_task(
                name=f"{self.app_id}.t{i}",
                cost=self._jitter(self.compute_cost, self.jitter_fraction),
                lock=self.lock,
                critical_cost=self.critical_cost,
            )
            for i in range(self.n_tasks)
        ]

    def total_work(self) -> int:
        return self.n_tasks * self.task_cost

    def locks(self) -> tuple:
        return (self.lock,)

    def describe(self) -> Dict[str, object]:
        return {
            "app_id": self.app_id,
            "kind": "uniform",
            "n_tasks": self.n_tasks,
            "task_cost_us": self.task_cost,
            "critical_cost_us": self.critical_cost,
        }


class BarrierHeavyApp(PhasedApplication):
    """Many short phases: a pure straggler-sensitivity probe."""

    def __init__(
        self,
        app_id: str = "barrier-heavy",
        phases: int = 60,
        tasks_per_phase: int = 16,
        task_cost: int = units.ms(40),
        seed: int = 0,
    ) -> None:
        super().__init__(app_id, seed)
        if phases < 1 or tasks_per_phase < 1:
            raise ValueError("phases and tasks_per_phase must be >= 1")
        self._n_phases = phases
        self.tasks_per_phase = tasks_per_phase
        self.task_cost = task_cost

    @property
    def n_phases(self) -> int:
        return self._n_phases

    def phase_tasks(self, phase: int) -> List[Task]:
        return [
            compute_task(
                name=f"{self.app_id}.p{phase}.t{i}",
                cost=self.task_cost,
                phase=phase,
            )
            for i in range(self.tasks_per_phase)
        ]

    def total_work(self) -> int:
        return self._n_phases * self.tasks_per_phase * self.task_cost

    def describe(self) -> Dict[str, object]:
        return {
            "app_id": self.app_id,
            "kind": "barrier-heavy",
            "phases": self._n_phases,
            "tasks_per_phase": self.tasks_per_phase,
            "task_cost_us": self.task_cost,
        }


class CriticalSectionApp(UniformApp):
    """A fine-grained application: a large share of each task runs inside a
    spinlock -- "critical sections are entered frequently and are fairly
    large relative to the grain size" (Section 2)."""

    def __init__(
        self,
        app_id: str = "cs-heavy",
        n_tasks: int = 400,
        task_cost: int = units.ms(20),
        critical_fraction: float = 0.15,
        seed: int = 0,
    ) -> None:
        super().__init__(
            app_id=app_id,
            n_tasks=n_tasks,
            task_cost=task_cost,
            critical_fraction=critical_fraction,
            seed=seed,
        )

    def describe(self) -> Dict[str, object]:
        info = super().describe()
        info["kind"] = "cs-heavy"
        return info
