"""matmul: "A simple matrix multiplication algorithm.  The multiplication
is parallelized by splitting the multiplicand by rows."

One phase of independent row-block tasks; each block finishes with a very
short spinlock-protected bookkeeping update.  This is the paper's most
scalable application (near-linear speedup to 16 processors) and the one
least hurt by multiprogramming in Figure 4.
"""

from __future__ import annotations

from typing import Dict, List

from repro.apps.base import Application
from repro.sim import units
from repro.sync import SpinLock
from repro.threads.task import Task, compute_task


class MatMul(Application):
    """Row-partitioned matrix multiplication.

    The kernel streams through its rows, so little of its working set is
    worth re-fetching after a context switch: ``cache_footprint`` is small,
    which is part of why matmul is the application least hurt by
    multiprogramming in Figure 4.

    Args:
        n_tasks: number of row blocks.
        task_cost: compute per block (jittered +/-10% for data dependence).
        critical_cost: spinlock-held bookkeeping at the end of each block.
        scale: multiplies all compute costs (benchmarks shrink with this).
    """

    cache_footprint = 0.35

    def __init__(
        self,
        app_id: str = "matmul",
        n_tasks: int = 1500,
        task_cost: int = units.ms(180),
        critical_cost: int = units.us(600),
        scale: float = 1.0,
        seed: int = 0,
    ) -> None:
        super().__init__(app_id, seed)
        if n_tasks < 1:
            raise ValueError("n_tasks must be >= 1")
        self.n_tasks = n_tasks
        self.task_cost = max(1, int(task_cost * scale))
        self.critical_cost = max(0, int(critical_cost * scale))
        self.result_lock = SpinLock(f"{app_id}.result")
        self._costs = [
            self._jitter(self.task_cost, 0.10) for _ in range(n_tasks)
        ]

    def initial_tasks(self) -> List[Task]:
        return [
            compute_task(
                name=f"{self.app_id}.block{i}",
                cost=self._costs[i],
                lock=self.result_lock,
                critical_cost=self.critical_cost,
            )
            for i in range(self.n_tasks)
        ]

    def total_work(self) -> int:
        return sum(self._costs) + self.n_tasks * self.critical_cost

    def describe(self) -> Dict[str, object]:
        return {
            "app_id": self.app_id,
            "kind": "matmul",
            "n_tasks": self.n_tasks,
            "task_cost_us": self.task_cost,
            "critical_cost_us": self.critical_cost,
        }
