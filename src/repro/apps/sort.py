"""sort: "A parallel merge sort algorithm, simultaneously sorting a number
of small lists of numbers with heapsort, and then merging pairs of sorted
lists in parallel until the final sorted list is achieved."

Phase 0 heapsorts the sublists in parallel; each merge level halves the
task count and doubles the task size, ending in a single serial merge.
The shrinking-parallelism tail caps the speedup well below the machine
width -- sort has the flattest curve in the paper's Figure 3.
"""

from __future__ import annotations

from typing import Dict, List

from repro.apps.base import PhasedApplication
from repro.sim import units
from repro.sync import SpinLock
from repro.threads.task import Task, compute_task


class MergeSort(PhasedApplication):
    """Parallel merge sort over ``n_lists`` sublists (a power of two).

    Args:
        n_lists: number of sublists heapsorted in phase 0.
        sort_cost: per-sublist heapsort compute (jittered +/-15%).
        merge_base_cost: per-merge compute at the first merge level; it
            doubles every level (merged runs double in length).
        critical_cost: spinlock-held run bookkeeping per task.
        scale: multiplies all compute costs.
    """

    cache_footprint = 0.8

    def __init__(
        self,
        app_id: str = "sort",
        n_lists: int = 128,
        sort_cost: int = units.ms(700),
        merge_base_cost: int = units.ms(250),
        critical_cost: int = units.ms(8),
        scale: float = 1.0,
        seed: int = 0,
    ) -> None:
        super().__init__(app_id, seed)
        if n_lists < 2 or n_lists & (n_lists - 1):
            raise ValueError("n_lists must be a power of two >= 2")
        self.n_lists = n_lists
        self.sort_cost = max(1, int(sort_cost * scale))
        self.merge_base_cost = max(1, int(merge_base_cost * scale))
        self.critical_cost = max(0, int(critical_cost * scale))
        self.run_lock = SpinLock(f"{app_id}.runs")
        self._merge_levels = n_lists.bit_length() - 1  # log2(n_lists)
        self._sort_costs = [
            self._jitter(self.sort_cost, 0.15) for _ in range(n_lists)
        ]

    @property
    def n_phases(self) -> int:
        return 1 + self._merge_levels

    def phase_tasks(self, phase: int) -> List[Task]:
        if phase == 0:
            return [
                compute_task(
                    name=f"{self.app_id}.heap{i}",
                    cost=self._sort_costs[i],
                    lock=self.run_lock,
                    critical_cost=self.critical_cost,
                    phase=0,
                )
                for i in range(self.n_lists)
            ]
        level = phase - 1  # merge level 0 merges pairs of sorted sublists
        width = self.n_lists >> (level + 1)
        cost = self.merge_base_cost << level
        return [
            compute_task(
                name=f"{self.app_id}.merge{level}.{i}",
                cost=self._jitter(cost, 0.10, stream=f"merge{level}"),
                lock=self.run_lock,
                critical_cost=self.critical_cost,
                phase=phase,
            )
            for i in range(width)
        ]

    def total_work(self) -> int:
        total = sum(self._sort_costs)
        for level in range(self._merge_levels):
            width = self.n_lists >> (level + 1)
            total += width * (self.merge_base_cost << level)
        n_tasks = self.n_lists + self.n_lists - 1
        return total + n_tasks * self.critical_cost

    def describe(self) -> Dict[str, object]:
        return {
            "app_id": self.app_id,
            "kind": "sort",
            "n_lists": self.n_lists,
            "sort_cost_us": self.sort_cost,
            "merge_base_cost_us": self.merge_base_cost,
            "critical_cost_us": self.critical_cost,
        }
