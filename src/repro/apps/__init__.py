"""The paper's benchmark applications (Section 6), task-queue style.

All four applications from the paper's evaluation, expressed against the
threads package exactly as the paper describes them -- "the application
programmer breaks parts of his problem up into threads" -- plus synthetic
applications used by the ablation benchmarks.

- :class:`~repro.apps.matmul.MatMul` -- row-partitioned matrix multiply
  (single phase, embarrassingly parallel, light locking).
- :class:`~repro.apps.fft.FFT` -- Norton/Silberger-style 1-D FFT: log-many
  phases of parallel loop pieces separated by phase barriers.
- :class:`~repro.apps.sort.MergeSort` -- parallel heapsort of sublists,
  then a pairwise merge tree with shrinking parallelism.
- :class:`~repro.apps.gauss.Gauss` -- Gaussian elimination with partial
  pivoting: alternating serial pivot and parallel elimination phases.
- :mod:`~repro.apps.synthetic` -- parameterized uniform / barrier-heavy /
  critical-section-heavy applications for ablations.
- :class:`~repro.apps.locks.LockSaturationApp` -- think/critical-section
  iterations on one shared lock; exhibits throughput collapse past the
  saturation knee (the lock-restriction experiment's workload).
- :class:`~repro.apps.service.ServiceApp` -- an open-arrival
  request-serving tenant: requests arrive on their own clock and carry
  tail-latency objectives.
- :class:`~repro.apps.pipeline.PipelineApp` -- a streaming pipeline whose
  items pass fixed stages in order (the dedicated-stage-thread runtime's
  native workload; also runnable task-queue style for comparisons).

Applications are deterministic given their ``seed``; per-task cost jitter
models data-dependent work without breaking reproducibility.
"""

from repro.apps.base import Application, PhasedApplication
from repro.apps.matmul import MatMul
from repro.apps.fft import FFT
from repro.apps.sort import MergeSort
from repro.apps.gauss import Gauss
from repro.apps.quicksort import QuickSort
from repro.apps.jacobi import Jacobi
from repro.apps.synthetic import BarrierHeavyApp, CriticalSectionApp, UniformApp
from repro.apps.locks import LockSaturationApp
from repro.apps.service import ServiceApp, ServiceProfile
from repro.apps.pipeline import PipelineApp

__all__ = [
    "Application",
    "PhasedApplication",
    "MatMul",
    "FFT",
    "MergeSort",
    "Gauss",
    "QuickSort",
    "Jacobi",
    "UniformApp",
    "BarrierHeavyApp",
    "CriticalSectionApp",
    "LockSaturationApp",
    "ServiceApp",
    "ServiceProfile",
    "PipelineApp",
]
