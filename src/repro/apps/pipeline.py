"""A streaming pipeline application: items flow through fixed stages.

The pipeline is the runtime model the task-queue package cannot express
honestly: each stage is served by *dedicated* threads (a decoder thread,
a filter thread, an encoder thread), an item must pass the stages in
order, and a stage thread can give its processor back only when its
stage has momentarily drained -- never "between arbitrary tasks".

:class:`PipelineApp` declares the structure (per-stage costs, item
count); :class:`~repro.threads.pipeline.PipelinePackage` runs it with one
queue per stage and a declared floor of one worker per stage.  The app
also implements the plain :class:`~repro.apps.base.Application` surface
(``initial_tasks`` / ``on_task_done`` chain the stages as follow-on
tasks), so the *same* workload can run on the task-queue runtime for
apples-to-apples comparisons in the mixed-runtime experiment.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.apps.base import Application
from repro.kernel import syscalls as sc
from repro.threads.task import Task


class PipelineApp(Application):
    """*n_items* items, each passing through ``len(stage_costs)`` stages.

    Args:
        app_id: application identifier.
        n_items: items to stream through the pipeline.
        stage_costs: per-stage compute cost of one item, in microseconds.
        cost_jitter: deterministic per-task jitter fraction (seeded).
        seed: base RNG seed.
    """

    #: Streaming applications touch each datum once; keep reload penalties
    #: modest like the other streaming workloads.
    cache_footprint = 0.4

    def __init__(
        self,
        app_id: str = "pipeline",
        n_items: int = 48,
        stage_costs: Sequence[int] = (600, 900, 600),
        cost_jitter: float = 0.0,
        seed: int = 0,
    ) -> None:
        super().__init__(app_id, seed)
        if n_items < 1:
            raise ValueError("n_items must be >= 1")
        if not stage_costs:
            raise ValueError("a pipeline needs at least one stage")
        if any(cost < 1 for cost in stage_costs):
            raise ValueError("stage costs must be >= 1")
        self.n_items = n_items
        self.stage_costs = tuple(int(cost) for cost in stage_costs)
        self.cost_jitter = cost_jitter
        self.items_done = 0

    @property
    def n_stages(self) -> int:
        return len(self.stage_costs)

    # ------------------------------------------------------------------
    # Stage tasks
    # ------------------------------------------------------------------

    def stage_task(self, item: int, stage: int) -> Task:
        """The unit of work: *item* passing through *stage*."""
        cost = self._jitter(
            self.stage_costs[stage], self.cost_jitter, stream=f"s{stage}"
        )

        def body(cost: int = cost):
            yield sc.Compute(cost)

        return Task(
            name=f"{self.app_id}.i{item}.s{stage}",
            body=body,
            phase=stage,
            meta={"pipe_item": item, "pipe_stage": stage},
        )

    def next_stage_task(self, task: Task, stage: int) -> Optional[Task]:
        """The completed *task*'s successor, or ``None`` past the last
        stage (the item is then finished)."""
        if stage + 1 >= self.n_stages:
            self.items_done += 1
            return None
        return self.stage_task(task.meta["pipe_item"], stage + 1)

    # ------------------------------------------------------------------
    # Task-queue compatibility (apples-to-apples baseline)
    # ------------------------------------------------------------------

    def initial_tasks(self) -> List[Task]:
        return [self.stage_task(item, 0) for item in range(self.n_items)]

    def on_task_done(self, task: Task) -> List[Task]:
        follow = self.next_stage_task(task, task.meta["pipe_stage"])
        return [follow] if follow is not None else []

    # ------------------------------------------------------------------

    def total_work(self) -> int:
        return self.n_items * sum(self.stage_costs)

    def describe(self) -> Dict[str, object]:
        return {
            "app_id": self.app_id,
            "n_items": self.n_items,
            "stage_costs": list(self.stage_costs),
        }
