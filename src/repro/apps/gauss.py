"""gauss: "A parallel Gaussian elimination algorithm.  The solution is
computed using partial pivoting and back substitution, and the row
elimination is parallelized."

Each elimination step is a *serial* pivot-selection phase followed by a
*parallel* row-elimination phase over the remaining rows; both the task
count and the per-task cost shrink as elimination proceeds.  The dense
alternation of serial and parallel phases makes gauss the application most
punished by uncontrolled multiprogramming (66 s vs 28 s in the paper's
Figure 4/5 discussion) -- every straggling preempted process stalls a
barrier.
"""

from __future__ import annotations

from typing import Dict, List

from repro.apps.base import PhasedApplication
from repro.sim import units
from repro.sync import SpinLock
from repro.threads.task import Task, compute_task


class Gauss(PhasedApplication):
    """Gaussian elimination with partial pivoting.

    Phases alternate: even phases are the serial pivot search for step
    ``k = phase // 2``; odd phases are that step's parallel eliminations.

    Args:
        n_steps: elimination steps (matrix dimension / row-block count).
        elim_cost: elimination task cost at step 0; shrinks linearly to
            ``elim_cost / n_steps`` by the last step (jittered +/-10%).
        rows_per_task: divisor from remaining rows to elimination tasks.
        pivot_cost: the serial pivot phase's compute.
        critical_cost: spinlock-held multiplier/row bookkeeping per task.
        scale: multiplies all compute costs.
    """

    def __init__(
        self,
        app_id: str = "gauss",
        n_steps: int = 48,
        elim_cost: int = units.ms(300),
        rows_per_task: int = 1,
        pivot_cost: int = units.ms(25),
        critical_cost: int = units.ms(6),
        scale: float = 1.0,
        seed: int = 0,
    ) -> None:
        super().__init__(app_id, seed)
        if n_steps < 1:
            raise ValueError("n_steps must be >= 1")
        if rows_per_task < 1:
            raise ValueError("rows_per_task must be >= 1")
        self.n_steps = n_steps
        self.elim_cost = max(1, int(elim_cost * scale))
        self.rows_per_task = rows_per_task
        self.pivot_cost = max(1, int(pivot_cost * scale))
        self.critical_cost = max(0, int(critical_cost * scale))
        self.pivot_lock = SpinLock(f"{app_id}.pivot")

    @property
    def n_phases(self) -> int:
        return 2 * self.n_steps

    def _tasks_at_step(self, step: int) -> int:
        remaining_rows = self.n_steps - step
        return max(1, remaining_rows // self.rows_per_task)

    def _cost_at_step(self, step: int) -> int:
        fraction = (self.n_steps - step) / self.n_steps
        return max(1, int(self.elim_cost * fraction))

    def phase_tasks(self, phase: int) -> List[Task]:
        step = phase // 2
        if phase % 2 == 0:
            # Serial pivot search (partial pivoting).
            return [
                compute_task(
                    name=f"{self.app_id}.pivot{step}",
                    cost=self.pivot_cost,
                    phase=phase,
                )
            ]
        cost = self._cost_at_step(step)
        return [
            compute_task(
                name=f"{self.app_id}.elim{step}.{i}",
                cost=self._jitter(cost, 0.10, stream=f"elim{step}"),
                lock=self.pivot_lock,
                critical_cost=self.critical_cost,
                phase=phase,
            )
            for i in range(self._tasks_at_step(step))
        ]

    def total_work(self) -> int:
        total = 0
        for step in range(self.n_steps):
            n_tasks = self._tasks_at_step(step)
            total += self.pivot_cost
            total += n_tasks * (self._cost_at_step(step) + self.critical_cost)
        return total

    def describe(self) -> Dict[str, object]:
        return {
            "app_id": self.app_id,
            "kind": "gauss",
            "n_steps": self.n_steps,
            "elim_cost_us": self.elim_cost,
            "pivot_cost_us": self.pivot_cost,
            "critical_cost_us": self.critical_cost,
        }
