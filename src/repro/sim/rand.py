"""Named pseudo-random streams.

Every source of randomness in the simulator draws from a named stream, each
deterministically derived from the master seed.  This gives two properties
that matter for a reproduction study:

* **reproducibility** -- the same seed always yields the same run;
* **isolation** -- adding a draw to one subsystem (say, task cost jitter)
  does not shift the sequence seen by another (say, arrival times), so
  experiments stay comparable as the code evolves.
"""

from __future__ import annotations

import hashlib
import random
from typing import Dict


class RandomStreams:
    """A factory of independently seeded :class:`random.Random` streams.

    Streams are created on first use and cached, so two calls with the same
    name return the same underlying generator::

        streams = RandomStreams(seed=42)
        streams.get("arrivals").random()
        streams.get("task-jitter").gauss(0, 1)
    """

    def __init__(self, seed: int = 0) -> None:
        self.seed = seed
        self._streams: Dict[str, random.Random] = {}

    def get(self, name: str) -> random.Random:
        """Return the stream called *name*, creating it deterministically."""
        stream = self._streams.get(name)
        if stream is None:
            stream = random.Random(self._derive_seed(name))
            self._streams[name] = stream
        return stream

    def _derive_seed(self, name: str) -> int:
        """Derive a stream seed from the master seed and the stream name.

        SHA-256 is used as a stable, platform-independent mixing function
        (``hash()`` is salted per-interpreter and unusable here).
        """
        digest = hashlib.sha256(f"{self.seed}:{name}".encode("utf-8")).digest()
        return int.from_bytes(digest[:8], "big")

    def fork(self, name: str) -> "RandomStreams":
        """Create a child stream-space, e.g. one per application instance."""
        return RandomStreams(self._derive_seed(f"fork:{name}"))
