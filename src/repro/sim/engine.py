"""The discrete-event engine.

The engine owns the simulation clock and an event calendar.  Events are
plain callbacks scheduled for an absolute or relative time; ties are broken
by insertion order so runs are exactly reproducible.

Hot-path layout: the calendar is *slot-batched*.  A binary heap orders the
distinct pending timestamps (bare ints, so sifting is C-level integer
comparison), and a dict maps each timestamp to its *slot*: either a single
:class:`EventHandle` (the overwhelmingly common case at paper scale) or a
*cohort* -- a list of handles for that instant, in insertion order.  The
run loops pop a timestamp once and then drain the whole cohort by list
index, so N events at one instant cost one heap operation instead of N,
and a zero-delay schedule appends to the live cohort without touching the
heap at all.  Sequence numbers are assigned monotonically, which makes
insertion order and seq order the same thing; no per-event tuple is ever
built.

Cancellation stays O(1) and lazy (the entry is skipped when it surfaces); a
live-event counter keeps :attr:`Engine.pending_count` O(1), and the
calendar is compacted when cancelled entries outnumber live ones so
pathological cancel traffic cannot bloat the slot table.

Nothing in this module knows about processors, processes, or scheduling --
those live in :mod:`repro.machine` and :mod:`repro.kernel`.
"""

from __future__ import annotations

import heapq
from heapq import heappop as _heappop, heappush as _heappush
from typing import Callable, Iterator, Optional, Tuple

#: Compaction threshold: rebuild the slot table when it holds more than
#: this many cancelled entries *and* they outnumber the live ones.  Small
#: calendars are never worth compacting.
_COMPACT_MIN_GARBAGE = 256


class SimulationError(RuntimeError):
    """Raised when the simulation is driven incorrectly.

    Examples: scheduling an event in the past, or running an engine that has
    been stopped with a fatal error.
    """


class EventHandle:
    """A cancellable reference to a scheduled event.

    The engine never removes cancelled events from the calendar eagerly; it
    simply skips them when they surface.  This makes :meth:`cancel` O(1).
    """

    __slots__ = ("time", "seq", "callback", "cancelled", "label", "_engine")

    def __init__(
        self,
        time: int,
        seq: int,
        callback: Callable[[], None],
        label: str,
        engine: "Engine",
    ):
        self.time = time
        self.seq = seq
        self.callback: Optional[Callable[[], None]] = callback
        self.cancelled = False
        self.label = label
        self._engine = engine

    def cancel(self) -> None:
        """Prevent the event from firing.  Idempotent."""
        if self.callback is None:  # already fired or already cancelled
            self.cancelled = True
            return
        self.cancelled = True
        self.callback = None  # drop the reference so closures can be collected
        self._engine._note_cancel()

    @property
    def pending(self) -> bool:
        """True if the event has neither fired nor been cancelled."""
        return not self.cancelled and self.callback is not None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "cancelled" if self.cancelled else "pending"
        return f"<EventHandle t={self.time} seq={self.seq} {self.label!r} {state}>"


#: Allocate an EventHandle without the ``type.__call__``/``__init__`` hops;
#: the schedule methods fill the slots inline.
_new_handle = EventHandle.__new__


class RepeatingEvent:
    """A self-rearming event minted by :meth:`Engine.schedule_every`.

    Fires *callback* every *period* microseconds until :meth:`cancel` is
    called or the next firing would land after *until* (absolute time).
    The recurrence is driven by ordinary calendar entries, so repeated
    events interleave deterministically with everything else.
    """

    __slots__ = ("period", "callback", "until", "label", "cancelled", "_engine", "_handle")

    def __init__(
        self,
        engine: "Engine",
        period: int,
        callback: Callable[[], None],
        label: str,
        until: Optional[int],
    ) -> None:
        if period <= 0:
            raise SimulationError(f"repeating period must be positive, got {period}")
        self.period = period
        self.callback = callback
        self.until = until
        self.label = label
        self.cancelled = False
        self._engine = engine
        self._handle: Optional[EventHandle] = None
        self._arm()

    def _arm(self) -> None:
        next_time = self._engine.now + self.period
        if self.until is not None and next_time > self.until:
            self._handle = None
            return
        self._handle = self._engine.schedule(self.period, self._fire, self.label)

    def _fire(self) -> None:
        self._handle = None
        self.callback()
        if not self.cancelled:
            self._arm()

    def cancel(self) -> None:
        """Stop the recurrence.  Idempotent."""
        self.cancelled = True
        if self._handle is not None:
            self._handle.cancel()
            self._handle = None

    @property
    def pending(self) -> bool:
        """True while another firing is scheduled."""
        return self._handle is not None and self._handle.pending


class Engine:
    """A deterministic discrete-event simulation loop.

    Usage::

        engine = Engine()
        engine.schedule(100, lambda: print("at t=100us"))
        engine.run()

    Determinism guarantees:

    * integer microsecond clock -- no float tie ambiguity;
    * FIFO among same-time events (insertion order);
    * no wall-clock or OS entropy is consulted anywhere.

    ``now`` and ``events_fired`` are plain attributes (hot paths read them
    millions of times per run); treat them as read-only.

    Calendar invariants (see the module docstring for the layout):

    * ``_slots[t]`` is either one ``EventHandle`` or a list of them in
      seq order; ``_times`` holds each key of ``_slots`` exactly once.
    * ``_cur_slot`` is the cohort currently being drained.  It has been
      popped from ``_slots``/``_times``; entries before ``_cur_index`` are
      consumed.  It is *kept* after exhaustion so a schedule at the current
      timestamp appends to it (preserving FIFO) instead of re-entering the
      heap; singleton firings update ``_cur_time`` only.
    """

    def __init__(self) -> None:
        #: Current simulation time in microseconds (read-only).
        self.now = 0
        #: Number of events executed so far (diagnostics / loop guards).
        self.events_fired = 0
        #: Gate for :meth:`run_until_done`'s ``exit_gated`` mode: a driver
        #: (the kernel) clears this while its completion predicate cannot
        #: possibly be true and sets it when the predicate is worth
        #: consulting again.  Ignored unless the caller opts in.
        self.done_hint = True
        self._seq = 0
        #: Heap of distinct pending timestamps (bare ints).
        self._times: list = []
        #: timestamp -> EventHandle (singleton) or list of EventHandles.
        self._slots: dict = {}
        self._cur_slot: Optional[list] = None
        self._cur_index = 0
        self._cur_time = -1
        self._live = 0  # scheduled, not yet fired, not cancelled
        self._size = 0  # calendar entries not yet consumed (incl. cancelled)
        self._running = False

    @property
    def pending_count(self) -> int:
        """Number of not-yet-fired, not-cancelled events in the calendar."""
        return self._live

    def schedule(
        self, delay: int, callback: Callable[[], None], label: str = ""
    ) -> EventHandle:
        """Schedule *callback* to run *delay* microseconds from now.

        Returns an :class:`EventHandle` that may be cancelled any time before
        the event fires.  A zero delay schedules the event for the current
        time, after all events already scheduled for this time.
        """
        if delay < 0:
            raise SimulationError(f"cannot schedule {delay}us in the past")
        time = self.now + delay
        seq = self._seq
        self._seq = seq + 1
        # Inlined EventHandle construction (~40% cheaper than the ctor
        # call); this runs once per scheduled event, i.e. millions of
        # times per experiment sweep.
        handle = _new_handle(EventHandle)
        handle.time = time
        handle.seq = seq
        handle.callback = callback
        handle.cancelled = False
        handle.label = label
        handle._engine = self
        if time == self._cur_time and self._cur_slot is not None:
            self._cur_slot.append(handle)
        else:
            slots = self._slots
            slot = slots.get(time)
            if slot is None:
                slots[time] = handle
                _heappush(self._times, time)
            elif slot.__class__ is list:
                slot.append(handle)
            else:
                slots[time] = [slot, handle]
        self._live += 1
        self._size += 1
        return handle

    def schedule_at(
        self, time: int, callback: Callable[[], None], label: str = ""
    ) -> EventHandle:
        """Schedule *callback* at absolute simulation *time*."""
        if time < self.now:
            raise SimulationError(
                f"cannot schedule at t={time}us, already at t={self.now}us"
            )
        seq = self._seq
        self._seq = seq + 1
        handle = _new_handle(EventHandle)
        handle.time = time
        handle.seq = seq
        handle.callback = callback
        handle.cancelled = False
        handle.label = label
        handle._engine = self
        if time == self._cur_time and self._cur_slot is not None:
            self._cur_slot.append(handle)
        else:
            slots = self._slots
            slot = slots.get(time)
            if slot is None:
                slots[time] = handle
                _heappush(self._times, time)
            elif slot.__class__ is list:
                slot.append(handle)
            else:
                slots[time] = [slot, handle]
        self._live += 1
        self._size += 1
        return handle

    def schedule_every(
        self,
        period: int,
        callback: Callable[[], None],
        label: str = "",
        until: Optional[int] = None,
    ) -> RepeatingEvent:
        """Schedule *callback* every *period* microseconds, first firing
        one period from now.

        *until* (absolute time) stops the recurrence: no firing is
        scheduled past it.  Returns a :class:`RepeatingEvent` whose
        ``cancel()`` stops the recurrence at any point.  Used by the
        fault injectors (preemption storms) and available to policies.
        """
        return RepeatingEvent(self, period, callback, label, until)

    def calendar_entries(self) -> Iterator[Tuple[int, EventHandle]]:
        """Yield ``(time, handle)`` for every un-consumed calendar entry,
        cancelled ones included, in no particular order.

        Diagnostics only (the sanitizer's calendar invariants); the hot
        loops never call this.
        """
        cur = self._cur_slot
        if cur is not None:
            time = self._cur_time
            for idx in range(self._cur_index, len(cur)):
                yield time, cur[idx]
        for time, slot in self._slots.items():
            if slot.__class__ is list:
                for handle in slot:
                    yield time, handle
            else:
                yield time, slot

    def _note_cancel(self) -> None:
        """A live entry became garbage; compact if garbage dominates."""
        self._live -= 1
        garbage = self._size - self._live
        if garbage > _COMPACT_MIN_GARBAGE and garbage > self._live:
            self._compact()

    def _compact(self) -> None:
        """Drop cancelled entries from the slot table and rebuild the time
        heap (insertion order within each cohort is untouched).

        Mutates the time heap and slot dict IN PLACE: :meth:`run_until_done`
        holds local bindings to both across callbacks (one of which may be
        the cancel that triggers this compaction), so the objects'
        identities must survive.  The cohort currently being drained is
        deliberately left alone -- the run loops hold a position in it, and
        its garbage is consumed within the current instant anyway.
        """
        slots = self._slots
        dead_times = []
        size = 0
        for time, slot in slots.items():
            if slot.__class__ is list:
                live = [h for h in slot if h.callback is not None]
                if live:
                    if len(live) != len(slot):
                        slot[:] = live
                    size += len(live)
                else:
                    dead_times.append(time)
            elif slot.callback is not None:
                size += 1
            else:
                dead_times.append(time)
        for time in dead_times:
            del slots[time]
        self._times[:] = slots.keys()
        heapq.heapify(self._times)
        cur = self._cur_slot
        if cur is not None:
            size += len(cur) - self._cur_index
        self._size = size

    def step(self) -> bool:
        """Fire the single next event.

        Returns ``True`` if an event was fired, ``False`` if the calendar is
        empty (skipping over cancelled events does not count as firing).
        May not be called from inside an event callback (the run loops own
        the drain position).
        """
        if self._running:
            raise SimulationError("step() called re-entrantly from a callback")
        return self._step()

    def _step(self) -> bool:
        times = self._times
        slots = self._slots
        while True:
            cur = self._cur_slot
            i = self._cur_index
            if cur is not None and i < len(cur):
                handle = cur[i]
                self._cur_index = i + 1
                self._size -= 1
                callback = handle.callback
                if callback is None:  # cancelled; skip lazily
                    continue
                self.now = self._cur_time
                handle.callback = None  # the event is consumed; free the closure
                self._live -= 1
                self.events_fired += 1
                callback()
                return True
            if times:
                time = _heappop(times)
                slot = slots.pop(time)
                if slot.__class__ is list:
                    self._cur_slot = slot
                    self._cur_index = 0
                    self._cur_time = time
                    continue
                # Singleton slot: fire without any cohort bookkeeping.
                self._cur_time = time
                self._size -= 1
                callback = slot.callback
                if callback is None:
                    continue
                self.now = time
                slot.callback = None
                self._live -= 1
                self.events_fired += 1
                callback()
                return True
            return False

    def run(self, max_events: Optional[int] = None) -> int:
        """Run until the calendar is empty.

        *max_events*, if given, bounds the number of events fired in this
        call *exactly*: the guard raises :class:`SimulationError` (a
        runaway-loop guard for tests) as soon as a (max_events+1)-th live
        event is due, without firing it.  Returns the number of events fired.
        """
        if self._running:
            raise SimulationError("engine is already running (re-entrant run())")
        self._running = True
        fired = 0
        try:
            if max_events is None:
                while self._step():
                    fired += 1
            else:
                while fired < max_events and self._step():
                    fired += 1
                if fired >= max_events and self._next_pending_time() is not None:
                    raise SimulationError(
                        f"exceeded max_events={max_events}; runaway simulation?"
                    )
        finally:
            self._running = False
        return fired

    def run_until(self, time: int, max_events: Optional[int] = None) -> int:
        """Run events up to and including absolute *time*.

        The clock is advanced to *time* even if the calendar empties earlier.
        *max_events* is an exact bound, as in :meth:`run`.  Returns the
        number of events fired.
        """
        if time < self.now:
            raise SimulationError(
                f"cannot run until t={time}us, already at t={self.now}us"
            )
        if self._running:
            raise SimulationError("engine is already running (re-entrant run())")
        self._running = True
        fired = 0
        try:
            while True:
                upcoming = self._next_pending_time()
                if upcoming is None or upcoming > time:
                    break
                if max_events is not None and fired >= max_events:
                    raise SimulationError(
                        f"exceeded max_events={max_events}; runaway simulation?"
                    )
                self._step()
                fired += 1
        finally:
            self._running = False
        if self.now < time:
            self.now = time
        return fired

    def run_until_done(
        self,
        done: Callable[[], bool],
        max_events: Optional[int] = None,
        max_time: Optional[int] = None,
        exit_gated: bool = False,
    ) -> int:
        """Fire events until *done()* returns True.

        The predicate is consulted before every event, exactly as a caller
        looping over :meth:`step` would -- this method exists because that
        outer loop is the hottest frame of a whole-experiment run, and
        fusing it with the cohort drain removes one Python call per event.

        With ``exit_gated=True`` the caller promises that *done()* can only
        be true while :attr:`done_hint` is set (the kernel maintains the
        hint from its process-exit path), letting the loop replace most
        predicate calls with a single attribute test.  Since simulation
        state only changes inside event callbacks, gating the check this
        way fires exactly the same events as calling *done()* every time.

        Raises :class:`SimulationError` if the calendar empties while
        *done()* is still False, if *max_events* events have fired and
        more work remains (exact bound, as in :meth:`run`), or if the
        clock passes *max_time*.  Returns the number of events fired.
        """
        if self._running:
            raise SimulationError("engine is already running (re-entrant run())")
        self._running = True
        times = self._times
        slots = self._slots
        pop = _heappop
        ungated = not exit_gated
        unbounded_events = max_events is None
        untimed = max_time is None
        # The drain position lives in locals across events (callbacks may
        # *append* to the current cohort -- same list object, so the length
        # re-check per iteration sees it -- but only this loop, step(), and
        # _next_pending_time() move the position, and none of them can run
        # re-entrantly).  ``_cur_index`` is synced back before every
        # callback so diagnostics (calendar_entries) stay exact.
        cur = self._cur_slot
        i = self._cur_index
        cur_time = self._cur_time
        fired = 0
        try:
            while not ((ungated or self.done_hint) and done()):
                if not unbounded_events and fired >= max_events:
                    raise SimulationError(f"exceeded max_events={max_events}")
                # -- inlined _step(): drain the current cohort by index,
                # falling back to one heap pop per distinct timestamp --
                while True:
                    if cur is not None and i < len(cur):
                        handle = cur[i]
                        i += 1
                        self._size -= 1
                        callback = handle.callback
                        if callback is None:  # cancelled; skip lazily
                            continue
                        self._cur_index = i
                        self.now = cur_time
                        handle.callback = None
                        self._live -= 1
                        fired += 1
                        callback()
                        break
                    if times:
                        self._cur_index = i
                        time = pop(times)
                        slot = slots.pop(time)
                        if slot.__class__ is list:
                            self._cur_slot = cur = slot
                            self._cur_index = i = 0
                            self._cur_time = cur_time = time
                            continue
                        # Singleton slot: fire with no cohort bookkeeping.
                        # ``_cur_time`` still advances so a zero-delay
                        # schedule from the callback appends to the (kept,
                        # exhausted) cohort list and fires at this instant.
                        self._cur_time = cur_time = time
                        self._size -= 1
                        callback = slot.callback
                        if callback is None:
                            continue
                        self.now = time
                        slot.callback = None
                        self._live -= 1
                        fired += 1
                        callback()
                        break
                    if done():  # defensive re-check, mirroring step() callers
                        return fired
                    raise SimulationError(
                        "event calendar empty but the completion predicate "
                        "is still false: the workload is deadlocked"
                    )
                if not untimed and self.now > max_time:
                    raise SimulationError(
                        f"simulated time exceeded max_time={max_time}us"
                    )
        finally:
            self._running = False
            self._cur_index = i
            # events_fired is tallied per run rather than per event --
            # nothing observes it mid-run, and the loop above is the
            # hottest code in the tree.
            self.events_fired += fired
        return fired

    def _next_pending_time(self) -> Optional[int]:
        """Time of the next live event, discarding cancelled entries that
        surface at the head of the calendar (mirrors what the run loops
        would skip)."""
        cur = self._cur_slot
        if cur is not None:
            i = self._cur_index
            n = len(cur)
            while i < n and cur[i].callback is None:
                i += 1
            self._size -= i - self._cur_index
            self._cur_index = i
            if i < n:
                return self._cur_time
        times = self._times
        slots = self._slots
        while times:
            time = times[0]
            slot = slots[time]
            if slot.__class__ is list:
                if slot[0].callback is not None:
                    return time
                live = [h for h in slot if h.callback is not None]
                if live:
                    self._size -= len(slot) - len(live)
                    slot[:] = live
                    return time
                _heappop(times)
                del slots[time]
                self._size -= len(slot)
            else:
                if slot.callback is not None:
                    return time
                _heappop(times)
                del slots[time]
                self._size -= 1
        return None
