"""The discrete-event engine.

The engine owns the simulation clock and an event calendar (a binary heap).
Events are plain callbacks scheduled for an absolute or relative time; ties
are broken by insertion order so runs are exactly reproducible.

Nothing in this module knows about processors, processes, or scheduling --
those live in :mod:`repro.machine` and :mod:`repro.kernel`.
"""

from __future__ import annotations

import heapq
from typing import Callable, Optional


class SimulationError(RuntimeError):
    """Raised when the simulation is driven incorrectly.

    Examples: scheduling an event in the past, or running an engine that has
    been stopped with a fatal error.
    """


class EventHandle:
    """A cancellable reference to a scheduled event.

    The engine never removes cancelled events from the heap eagerly; it
    simply skips them when they surface.  This makes :meth:`cancel` O(1).
    """

    __slots__ = ("time", "seq", "callback", "cancelled", "label")

    def __init__(self, time: int, seq: int, callback: Callable[[], None], label: str):
        self.time = time
        self.seq = seq
        self.callback: Optional[Callable[[], None]] = callback
        self.cancelled = False
        self.label = label

    def cancel(self) -> None:
        """Prevent the event from firing.  Idempotent."""
        self.cancelled = True
        self.callback = None  # drop the reference so closures can be collected

    @property
    def pending(self) -> bool:
        """True if the event has neither fired nor been cancelled."""
        return not self.cancelled and self.callback is not None

    def __lt__(self, other: "EventHandle") -> bool:
        return (self.time, self.seq) < (other.time, other.seq)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "cancelled" if self.cancelled else "pending"
        return f"<EventHandle t={self.time} seq={self.seq} {self.label!r} {state}>"


class Engine:
    """A deterministic discrete-event simulation loop.

    Usage::

        engine = Engine()
        engine.schedule(100, lambda: print("at t=100us"))
        engine.run()

    Determinism guarantees:

    * integer microsecond clock -- no float tie ambiguity;
    * FIFO among same-time events (insertion order);
    * no wall-clock or OS entropy is consulted anywhere.
    """

    def __init__(self) -> None:
        self._now = 0
        self._seq = 0
        self._heap: list[EventHandle] = []
        self._running = False
        self._events_fired = 0

    @property
    def now(self) -> int:
        """Current simulation time in microseconds."""
        return self._now

    @property
    def events_fired(self) -> int:
        """Number of events executed so far (diagnostics / loop guards)."""
        return self._events_fired

    @property
    def pending_count(self) -> int:
        """Number of not-yet-fired, not-cancelled events in the calendar."""
        return sum(1 for event in self._heap if event.pending)

    def schedule(
        self, delay: int, callback: Callable[[], None], label: str = ""
    ) -> EventHandle:
        """Schedule *callback* to run *delay* microseconds from now.

        Returns an :class:`EventHandle` that may be cancelled any time before
        the event fires.  A zero delay schedules the event for the current
        time, after all events already scheduled for this time.
        """
        if delay < 0:
            raise SimulationError(f"cannot schedule {delay}us in the past")
        return self.schedule_at(self._now + delay, callback, label)

    def schedule_at(
        self, time: int, callback: Callable[[], None], label: str = ""
    ) -> EventHandle:
        """Schedule *callback* at absolute simulation *time*."""
        if time < self._now:
            raise SimulationError(
                f"cannot schedule at t={time}us, already at t={self._now}us"
            )
        handle = EventHandle(time, self._seq, callback, label)
        self._seq += 1
        heapq.heappush(self._heap, handle)
        return handle

    def step(self) -> bool:
        """Fire the single next event.

        Returns ``True`` if an event was fired, ``False`` if the calendar is
        empty (skipping over cancelled events does not count as firing).
        """
        while self._heap:
            event = heapq.heappop(self._heap)
            if event.cancelled or event.callback is None:
                continue
            self._now = event.time
            callback = event.callback
            event.callback = None  # the event is consumed; free the closure
            self._events_fired += 1
            callback()
            return True
        return False

    def run(self, max_events: Optional[int] = None) -> int:
        """Run until the calendar is empty.

        *max_events*, if given, bounds the number of events fired in this
        call; exceeding it raises :class:`SimulationError` (a runaway-loop
        guard for tests).  Returns the number of events fired.
        """
        if self._running:
            raise SimulationError("engine is already running (re-entrant run())")
        self._running = True
        fired = 0
        try:
            while self.step():
                fired += 1
                if max_events is not None and fired > max_events:
                    raise SimulationError(
                        f"exceeded max_events={max_events}; runaway simulation?"
                    )
        finally:
            self._running = False
        return fired

    def run_until(self, time: int, max_events: Optional[int] = None) -> int:
        """Run events up to and including absolute *time*.

        The clock is advanced to *time* even if the calendar empties earlier.
        Returns the number of events fired.
        """
        if time < self._now:
            raise SimulationError(
                f"cannot run until t={time}us, already at t={self._now}us"
            )
        if self._running:
            raise SimulationError("engine is already running (re-entrant run())")
        self._running = True
        fired = 0
        try:
            while self._heap:
                upcoming = self._next_pending_time()
                if upcoming is None or upcoming > time:
                    break
                self.step()
                fired += 1
                if max_events is not None and fired > max_events:
                    raise SimulationError(
                        f"exceeded max_events={max_events}; runaway simulation?"
                    )
        finally:
            self._running = False
        self._now = max(self._now, time)
        return fired

    def _next_pending_time(self) -> Optional[int]:
        """Time of the next live event, discarding cancelled heap entries."""
        while self._heap and not self._heap[0].pending:
            heapq.heappop(self._heap)
        if not self._heap:
            return None
        return self._heap[0].time
