"""Time units for the simulator.

All simulation time is kept as ``int`` microseconds.  Integer time makes the
event calendar exactly deterministic (no floating-point tie ambiguity) and is
plenty of resolution for scheduling phenomena measured in milliseconds.

The helpers here are conversion functions, not types: simulation code simply
passes ``int`` values around and uses these for readable literals, e.g.
``quantum=ms(100)`` or ``poll_interval=seconds(6)``.
"""

from __future__ import annotations

#: One microsecond, the base tick of the simulator.
MICROSECOND = 1

#: Microseconds per millisecond.
MILLISECOND = 1_000

#: Microseconds per second.
SECOND = 1_000_000


def us(value: float) -> int:
    """Express *value* microseconds as integer simulation time."""
    return int(round(value))


def ms(value: float) -> int:
    """Express *value* milliseconds as integer simulation time."""
    return int(round(value * MILLISECOND))


def seconds(value: float) -> int:
    """Express *value* seconds as integer simulation time."""
    return int(round(value * SECOND))


def to_seconds(time_us: int) -> float:
    """Convert integer simulation time to float seconds (for reporting)."""
    return time_us / SECOND


def to_ms(time_us: int) -> float:
    """Convert integer simulation time to float milliseconds (for reporting)."""
    return time_us / MILLISECOND
