"""Discrete-event simulation substrate.

This package provides the deterministic discrete-event engine that the
multiprocessor model (:mod:`repro.machine`), the kernel (:mod:`repro.kernel`),
and everything above them are built on.  It deliberately contains no
scheduling policy or machine knowledge: just a clock, an event calendar,
named pseudo-random streams, and a structured trace log.

Public API
----------

- :class:`~repro.sim.engine.Engine` -- the event loop.
- :class:`~repro.sim.engine.EventHandle` -- cancellable handle returned by
  :meth:`Engine.schedule`.
- :class:`~repro.sim.rand.RandomStreams` -- named, independently seeded
  pseudo-random streams so that adding randomness to one subsystem does not
  perturb another.
- :class:`~repro.sim.trace.TraceLog` / :class:`~repro.sim.trace.TraceRecord`
  -- structured event tracing used by the metrics layer.
- :mod:`repro.sim.units` -- integer-microsecond time helpers.
"""

from repro.sim.engine import Engine, EventHandle, RepeatingEvent, SimulationError
from repro.sim.rand import RandomStreams
from repro.sim.trace import TraceLog, TraceRecord, dispatch_digest
from repro.sim.export import dump_trace, load_trace
from repro.sim import units

__all__ = [
    "Engine",
    "EventHandle",
    "RepeatingEvent",
    "SimulationError",
    "RandomStreams",
    "TraceLog",
    "TraceRecord",
    "dispatch_digest",
    "dump_trace",
    "load_trace",
    "units",
]
