"""Structured trace log for simulation runs.

The kernel and the threads package emit :class:`TraceRecord` entries for
every interesting transition (dispatch, preempt, suspend, resume, lock
contention, server decisions, ...).  The metrics layer turns these into the
time series behind Figure 5 and the utilization breakdowns in the ablation
tables.

Tracing can be filtered by category to keep long runs cheap.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, Iterator, List, Optional, Set


@dataclass(frozen=True)
class TraceRecord:
    """One trace event.

    Attributes:
        time: simulation time in microseconds.
        category: a dotted category string, e.g. ``"kernel.dispatch"``.
        data: free-form payload; keys are category-specific but stable.
    """

    time: int
    category: str
    data: Dict[str, Any] = field(default_factory=dict)


class TraceLog:
    """An append-only, optionally filtered, trace sink.

    By default every record is kept.  Pass ``categories`` to keep only
    selected ones, or ``enabled=False`` to drop everything (records are not
    even constructed in the hot path when the category check fails: callers
    use :meth:`wants` to guard expensive payload construction).
    """

    def __init__(
        self,
        enabled: bool = True,
        categories: Optional[Iterable[str]] = None,
    ) -> None:
        self.enabled = enabled
        self._categories: Optional[Set[str]] = (
            set(categories) if categories is not None else None
        )
        self._records: List[TraceRecord] = []

    def wants(self, category: str) -> bool:
        """True if a record with this category would be kept."""
        if not self.enabled:
            return False
        return self._categories is None or category in self._categories

    def emit(self, time: int, category: str, **data: Any) -> None:
        """Record an event if the category passes the filter."""
        if self.wants(category):
            self._records.append(TraceRecord(time, category, data))

    def __len__(self) -> int:
        return len(self._records)

    def __iter__(self) -> Iterator[TraceRecord]:
        return iter(self._records)

    def records(self, category: Optional[str] = None) -> List[TraceRecord]:
        """All records, or just those in *category*."""
        if category is None:
            return list(self._records)
        return [r for r in self._records if r.category == category]

    def categories(self) -> Set[str]:
        """The set of categories present in the log."""
        return {r.category for r in self._records}

    def clear(self) -> None:
        """Drop all records (used between experiment repetitions)."""
        self._records.clear()


def dispatch_digest(trace: TraceLog) -> str:
    """SHA-256 over the run's dispatch sequence.

    Hashes every ``kernel.dispatch`` record as a ``time:pid:cpu`` line, in
    emission order.  Two runs of the same scenario produce the same digest
    iff every process landed on the same processor at the same microsecond
    in the same order -- the bit-identical-replay check the golden-trace
    regression tests pin (``tests/test_golden_traces.py``).

    The trace must have been collected with the ``kernel.dispatch``
    category enabled (the runner's default category set excludes it).
    """
    hasher = hashlib.sha256()
    for record in trace:
        if record.category != "kernel.dispatch":
            continue
        data = record.data
        hasher.update(f"{record.time}:{data['pid']}:{data['cpu']}\n".encode())
    return hasher.hexdigest()
