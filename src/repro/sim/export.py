"""Trace import/export as JSON Lines.

Long experiment runs produce traces worth keeping (Figure 5's series, the
preemption evidence trail); these helpers serialize a
:class:`~repro.sim.trace.TraceLog` to a ``.jsonl`` file -- one record per
line -- and load it back.  Only JSON-representable payload values survive a
round trip; others are stringified on export (the kernel's payloads are
all ints/strings/dicts, so in practice traces round-trip exactly).
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Union

from repro.sim.trace import TraceLog


def _jsonable(value):
    try:
        json.dumps(value)
        return value
    except (TypeError, ValueError):
        return repr(value)


def dump_trace(trace: TraceLog, path: Union[str, Path]) -> int:
    """Write every record of *trace* to *path* (JSONL).  Returns the count."""
    path = Path(path)
    count = 0
    with path.open("w", encoding="utf-8") as handle:
        for record in trace:
            payload = {
                "t": record.time,
                "cat": record.category,
                "data": {k: _jsonable(v) for k, v in record.data.items()},
            }
            handle.write(json.dumps(payload, separators=(",", ":")) + "\n")
            count += 1
    return count


#: Milestone categories the timeline keeps by default: low-volume control
#: events that narrate a run.  Bulk series (``kernel.runnable``,
#: ``pc.poll``, ``kernel.dispatch``) stay out -- they drown the story.
TIMELINE_CATEGORIES = frozenset(
    {
        "app.finished",
        "server.update",
        "server.register",
        "server.crash",
        "server.restart",
        "plane.rebalance",
        "plane.failover",
        "pc.suspend",
        "pc.resume",
        "pc.poll_failed",
        "pc.target_expired",
        "pc.policy_swap",
        "kernel.cpu_offline",
        "kernel.cpu_online",
        "kernel.cpu_offline_refused",
        "kernel.kill",
        "sanitize.violation",
        "service.slo_violation",
        "lock.cull",
        "lock.readmit",
    }
)

#: Category prefix -> timeline lane (the actor the event belongs to).
_LANE_OF_PREFIX = {
    "kernel": "kernel",
    "server": "server",
    "plane": "plane",
    "watchdog": "watchdog",
    "pc": "app",
    "app": "app",
    "service": "app",
    "sanitize": "sanitize",
    # Per-lock milestones (culling/readmission) act on an app's lock;
    # spin.* witnesses likewise narrate application-side contention.
    "lock": "app",
    "spin": "app",
}


def timeline_events(trace: TraceLog, categories=None):
    """Time-ordered milestone rows for rendering a run's control timeline.

    Every ``watchdog.*`` record is always surfaced -- suspicion, restarts,
    failovers, and degraded-mode transitions are exactly the events a
    post-mortem reads the timeline for -- alongside the default milestone
    set (or *categories*, when given).  Each row carries the record's
    ``t``/``cat``/``data`` plus a ``lane`` naming the acting component
    (``kernel``/``server``/``plane``/``watchdog``/``app``).
    """
    keep = TIMELINE_CATEGORIES if categories is None else set(categories)
    rows = []
    for record in trace:
        category = record.category
        if category not in keep and not category.startswith("watchdog."):
            continue
        prefix = category.split(".", 1)[0]
        rows.append(
            {
                "t": record.time,
                "lane": _LANE_OF_PREFIX.get(prefix, prefix),
                "cat": category,
                "data": {k: _jsonable(v) for k, v in record.data.items()},
            }
        )
    rows.sort(key=lambda row: row["t"])
    return rows


def dump_timeline(
    trace: TraceLog, path: Union[str, Path], categories=None
) -> int:
    """Write :func:`timeline_events` rows to *path* (JSONL); returns count."""
    path = Path(path)
    rows = timeline_events(trace, categories=categories)
    with path.open("w", encoding="utf-8") as handle:
        for row in rows:
            handle.write(json.dumps(row, separators=(",", ":")) + "\n")
    return len(rows)


def load_trace(path: Union[str, Path]) -> TraceLog:
    """Read a JSONL trace written by :func:`dump_trace`."""
    path = Path(path)
    trace = TraceLog()
    with path.open("r", encoding="utf-8") as handle:
        for line_number, line in enumerate(handle, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                payload = json.loads(line)
                trace.emit(payload["t"], payload["cat"], **payload["data"])
            except (json.JSONDecodeError, KeyError, TypeError) as exc:
                raise ValueError(
                    f"{path}:{line_number}: malformed trace line"
                ) from exc
    return trace
