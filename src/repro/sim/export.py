"""Trace import/export as JSON Lines.

Long experiment runs produce traces worth keeping (Figure 5's series, the
preemption evidence trail); these helpers serialize a
:class:`~repro.sim.trace.TraceLog` to a ``.jsonl`` file -- one record per
line -- and load it back.  Only JSON-representable payload values survive a
round trip; others are stringified on export (the kernel's payloads are
all ints/strings/dicts, so in practice traces round-trip exactly).
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Union

from repro.sim.trace import TraceLog


def _jsonable(value):
    try:
        json.dumps(value)
        return value
    except (TypeError, ValueError):
        return repr(value)


def dump_trace(trace: TraceLog, path: Union[str, Path]) -> int:
    """Write every record of *trace* to *path* (JSONL).  Returns the count."""
    path = Path(path)
    count = 0
    with path.open("w", encoding="utf-8") as handle:
        for record in trace:
            payload = {
                "t": record.time,
                "cat": record.category,
                "data": {k: _jsonable(v) for k, v in record.data.items()},
            }
            handle.write(json.dumps(payload, separators=(",", ":")) + "\n")
            count += 1
    return count


def load_trace(path: Union[str, Path]) -> TraceLog:
    """Read a JSONL trace written by :func:`dump_trace`."""
    path = Path(path)
    trace = TraceLog()
    with path.open("r", encoding="utf-8") as handle:
        for line_number, line in enumerate(handle, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                payload = json.loads(line)
                trace.emit(payload["t"], payload["cat"], **payload["data"])
            except (json.JSONDecodeError, KeyError, TypeError) as exc:
                raise ValueError(
                    f"{path}:{line_number}: malformed trace line"
                ) from exc
    return trace
