"""ASCII chart rendering.

Deliberately dependency-free: the experiment harnesses run in test logs
and CI output, where matplotlib has no place.  All charts are returned as
strings; nothing prints.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from repro.metrics.timeseries import StepSeries


def step_plot(
    series: StepSeries,
    until: int,
    width: int = 72,
    height: int = 8,
    y_max: Optional[float] = None,
    marker: str = "#",
    y_label: str = "",
) -> str:
    """Render one step series as a filled ASCII area plot.

    *until* is the time horizon (microseconds); the x axis is divided into
    *width* buckets sampled at bucket start.
    """
    if until <= 0:
        raise ValueError("until must be positive")
    if width < 2 or height < 2:
        raise ValueError("width and height must be >= 2")
    step = max(until // width, 1)
    samples = [series.value_at(t) for t in range(0, until, step)]
    top = y_max if y_max is not None else max(samples + [1.0])
    if top <= 0:
        top = 1.0
    lines: List[str] = []
    for row in range(height, 0, -1):
        threshold = top * row / height
        cells = "".join(marker if v >= threshold else " " for v in samples)
        label = f"{threshold:6.1f} |"
        lines.append(label + cells)
    lines.append("       +" + "-" * len(samples))
    span_s = until / 1e6
    footer = f"        0s{'':{max(len(samples) - 12, 1)}}{span_s:.0f}s"
    lines.append(footer)
    if y_label:
        lines.insert(0, f"[{y_label}]")
    return "\n".join(lines)


def multi_step_plot(
    series_by_label: Mapping[str, StepSeries],
    until: int,
    width: int = 72,
    height: int = 8,
    y_max: Optional[float] = None,
) -> str:
    """Overlay several step series, one letter marker per label."""
    if not series_by_label:
        raise ValueError("no series given")
    step = max(until // width, 1)
    labels = list(series_by_label)
    markers = {label: label[0].upper() for label in labels}
    samples: Dict[str, List[float]] = {
        label: [series.value_at(t) for t in range(0, until, step)]
        for label, series in series_by_label.items()
    }
    top = y_max
    if top is None:
        top = max(max(vals + [1.0]) for vals in samples.values())
    if top <= 0:
        top = 1.0
    n_cols = len(next(iter(samples.values())))
    lines: List[str] = []
    for row in range(height, 0, -1):
        threshold = top * row / height
        cells = []
        for col in range(n_cols):
            cell = " "
            for label in labels:  # later labels overdraw earlier ones
                if samples[label][col] >= threshold:
                    cell = markers[label]
            cells.append(cell)
        lines.append(f"{threshold:6.1f} |" + "".join(cells))
    lines.append("       +" + "-" * n_cols)
    legend = "  ".join(f"{markers[label]}={label}" for label in labels)
    lines.append("        " + legend)
    return "\n".join(lines)


def bar_chart(
    values: Sequence[Tuple[str, float]],
    width: int = 50,
    unit: str = "",
) -> str:
    """Horizontal bar chart, one row per (label, value)."""
    if not values:
        raise ValueError("no values given")
    biggest = max(v for _, v in values)
    if biggest <= 0:
        biggest = 1.0
    label_width = max(len(label) for label, _ in values)
    lines = []
    for label, value in values:
        bar = "#" * max(1, int(round(width * value / biggest))) if value > 0 else ""
        lines.append(f"{label:>{label_width}} |{bar} {value:.1f}{unit}")
    return "\n".join(lines)


def curve_plot(
    curves: Mapping[str, Sequence[Tuple[float, float]]],
    width: int = 60,
    height: int = 16,
    x_label: str = "",
    y_label: str = "",
) -> str:
    """Scatter/step plot of y-vs-x curves (e.g. speedup vs processes).

    Each curve is a sequence of (x, y) points; points are drawn with the
    curve's first letter, later curves overdraw earlier ones.
    """
    if not curves:
        raise ValueError("no curves given")
    all_points = [p for pts in curves.values() for p in pts]
    if not all_points:
        raise ValueError("curves contain no points")
    x_min = min(x for x, _ in all_points)
    x_max = max(x for x, _ in all_points)
    y_max = max(y for _, y in all_points)
    if x_max == x_min:
        x_max = x_min + 1
    if y_max <= 0:
        y_max = 1.0
    grid = [[" "] * width for _ in range(height)]
    for label, points in curves.items():
        marker = label[0].upper()
        for x, y in points:
            col = int((x - x_min) / (x_max - x_min) * (width - 1))
            row = height - 1 - int(min(y, y_max) / y_max * (height - 1))
            grid[row][col] = marker
    lines = []
    for index, row in enumerate(grid):
        y_value = y_max * (height - 1 - index) / (height - 1)
        lines.append(f"{y_value:6.1f} |" + "".join(row))
    lines.append("       +" + "-" * width)
    lines.append(f"        {x_min:g}{'':{max(width - 12, 1)}}{x_max:g} {x_label}")
    legend = "  ".join(f"{label[0].upper()}={label}" for label in curves)
    lines.append("        " + legend)
    if y_label:
        lines.insert(0, f"[{y_label}]")
    return "\n".join(lines)
