"""Plain-text visualization for experiment output.

The paper's figures are line plots and bar charts; these helpers render
their analogues as ASCII so every harness can show its result in a
terminal and in the benchmark logs.

- :func:`~repro.viz.ascii.step_plot` -- a step series over time (Figure 5).
- :func:`~repro.viz.ascii.multi_step_plot` -- several labelled series.
- :func:`~repro.viz.ascii.bar_chart` -- horizontal bars (Figure 4).
- :func:`~repro.viz.ascii.curve_plot` -- y-vs-x curves (Figures 1 and 3).
"""

from repro.viz.ascii import bar_chart, curve_plot, multi_step_plot, step_plot

__all__ = ["step_plot", "multi_step_plot", "bar_chart", "curve_plot"]
