"""Lock-saturation workloads: collapse, restriction, and their algebra.

The closed workloads measure process control; the service workloads
measure tail latency under open arrivals.  This family measures the
third axis: what happens to *lock throughput* as the thread count grows
past a saturated critical section, and what each of the two available
remedies buys:

* **processor control** (the paper's 1989 answer) -- the server caps the
  *machine-level* parallelism, which removes holder preemption and
  time-slicing waste but leaves every scheduled thread free to pile onto
  the lock;
* **concurrency restriction at the lock** (the Malthusian answer --
  Dice & Kogan 2019) -- the lock itself passivates waiters beyond its
  ``admission`` limit, which caps the invalidation-storm cost no matter
  how many threads the scheduler runs.

:func:`lock_saturation_scenario` builds the head-to-head cell: one
:class:`~repro.apps.locks.LockSaturationApp` hammering a shared lock,
optionally sharing the machine with a compute-bound background tenant so
the machine is genuinely overcommitted (the regime where the two
remedies attack *different* pathologies and compose).

:func:`predicted_throughput` is the back-of-envelope model the unit
tests pin the simulator against: below the saturation knee throughput
grows linearly with threads; above it the lock serializes everything and
each extra spinner *subtracts* throughput via the per-spinner hand-off
penalty.
"""

from __future__ import annotations

from typing import Optional

from repro.apps.locks import LockSaturationApp
from repro.apps.synthetic import UniformApp
from repro.machine import MachineConfig
from repro.sim import units
from repro.workloads.scenario import AppSpec, Scenario

#: Default microbenchmark shape: ~5.0 threads saturate the lock
#: (think/cs + 1), and the contention penalty is large enough that the
#: collapse is unmistakable within a handful of extra threads.
DEFAULT_THINK_US = 600
DEFAULT_CS_US = 150
DEFAULT_PENALTY_US = 40


def locks_machine(n_processors: int = 8, **overrides) -> MachineConfig:
    """A small exact-time machine for lock experiments.

    The cache model is off (lock cache behaviour is modelled by the
    lock's own hand-off costs, not the process-migration cache model)
    and the quantum is short enough that holder preemption actually
    happens within a quick run.
    """
    overrides.setdefault("quantum", units.ms(10))
    overrides.setdefault("context_switch_cost", 100)
    overrides.setdefault("cache_affinity_enabled", False)
    return MachineConfig(n_processors=n_processors, **overrides)


def lock_app_factory(
    name: str = "locks",
    n_tasks: int = 64,
    think_time: int = DEFAULT_THINK_US,
    cs_time: int = DEFAULT_CS_US,
    contention_penalty: int = DEFAULT_PENALTY_US,
    admission: Optional[int] = None,
    blocking: bool = False,
    seed: int = 0,
):
    """An application factory building a fresh LockSaturationApp per run."""
    return lambda: LockSaturationApp(
        app_id=name,
        n_tasks=n_tasks,
        think_time=think_time,
        cs_time=cs_time,
        contention_penalty=contention_penalty,
        admission=admission,
        blocking=blocking,
        seed=seed,
    )


def lock_saturation_scenario(
    threads: int,
    n_tasks: int = 64,
    think_time: int = DEFAULT_THINK_US,
    cs_time: int = DEFAULT_CS_US,
    contention_penalty: int = DEFAULT_PENALTY_US,
    admission: Optional[int] = None,
    control: Optional[str] = None,
    background_workers: int = 0,
    background_tasks: int = 0,
    background_cost: int = units.ms(3),
    n_processors: int = 8,
    seed: int = 0,
    blocking: bool = False,
) -> Scenario:
    """One cell of the collapse head-to-head.

    *threads* workers run the lock application.  When
    *background_workers* is nonzero a compute-bound
    :class:`~repro.apps.synthetic.UniformApp` shares the machine, so the
    run is overcommitted and holder preemption joins the spinner storm
    as a second, independent pathology.  *admission* restricts waiters
    at the lock (scenario-wide, so the package queue lock is restricted
    too); *control* arms the server's processor control.  The four
    (admission x control) combinations are exactly the experiment arms.
    """
    if threads < 1:
        raise ValueError("threads must be >= 1")
    apps = [
        AppSpec(
            factory=lock_app_factory(
                n_tasks=n_tasks,
                think_time=think_time,
                cs_time=cs_time,
                contention_penalty=contention_penalty,
                blocking=blocking,
                seed=seed,
            ),
            n_processes=threads,
        )
    ]
    if background_workers:
        apps.append(
            AppSpec(
                factory=lambda: UniformApp(
                    app_id="bg",
                    n_tasks=background_tasks or 8 * background_workers,
                    task_cost=background_cost,
                    seed=seed + 1,
                ),
                n_processes=background_workers,
            )
        )
    return Scenario(
        apps=apps,
        control=control,
        machine=locks_machine(n_processors),
        server_interval=units.ms(10),
        poll_interval=units.ms(10),
        # None here means "the unrestricted arm", not "defer to the
        # environment": pin 0 so REPRO_LOCK_ADMISSION cannot silently
        # restrict a baseline cell and shift the pinned claims.
        lock_admission=admission if admission is not None else 0,
        seed=seed,
    )


def predicted_throughput(
    threads: int,
    think_time: int = DEFAULT_THINK_US,
    cs_time: int = DEFAULT_CS_US,
    contention_penalty: int = DEFAULT_PENALTY_US,
    admission: Optional[int] = None,
    n_processors: Optional[int] = None,
) -> float:
    """Analytic tasks/second for the preemption-free closed loop.

    Each thread cycles think -> wait -> critical section.  Below the
    saturation knee the lock is idle between acquires and aggregate
    throughput is ``threads / (think + cs)``.  At and past the knee the
    critical path is the serial section plus the hand-off storm, which
    grows with the number of *active* spinners: everyone not in the
    critical section and not culled is spinning.  Restriction caps that
    spinner count at ``admission``; processor control caps it at the
    processor count.  The model ignores fixed acquire/release micro-costs
    (a few us against a 100s-of-us cycle), so it is an upper bound the
    simulator should track within ~15%.
    """
    if threads < 1:
        raise ValueError("threads must be >= 1")
    unsaturated = threads / (think_time + cs_time) * 1e6
    spinners = threads - 1
    if n_processors is not None:
        spinners = min(spinners, n_processors - 1)
    if admission is not None:
        spinners = min(spinners, admission)
    serial = cs_time + contention_penalty * max(0, spinners - 1)
    saturated = 1e6 / serial
    return min(unsaturated, saturated)
