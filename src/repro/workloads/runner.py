"""Execute a scenario and collect results.

``run_scenario`` is the single entry point every experiment and benchmark
uses: it wires engine + machine + kernel + scheduler + server + packages,
schedules arrivals, runs to completion, and reduces the trace into the
numbers the paper's figures report.
"""

from __future__ import annotations

import os
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Any, Dict, Iterator, List, Optional, Tuple

from repro.core.allocation import (
    POLICY_ENV_VAR,
    WEIGHTS_ENV_VAR,
    AllocationPolicy,
    SpaceAwarePolicy,
    make_policy,
    parse_weights,
)
from repro.core.plane import SHARDS_ENV_VAR, ControlPlane
from repro.faults.plan import FAULTS_ENV_VAR, FaultPlan
from repro.kernel import Kernel, syscalls as sc
from repro.machine import Machine
from repro.metrics.latency import LatencyStats, tier_stats
from repro.metrics.timeseries import StepSeries, runnable_series_from_trace
from repro.resilience.watchdog import SUPERVISE_ENV_VAR, Watchdog
from repro.sanitize.invariants import SchedSanitizer, sanitize_mode_from_env
from repro.sim import Engine, TraceLog
from repro.sync.stats import LockStats
from repro.threads import make_package
from repro.threads.package import (
    LOCK_ADMISSION_ENV_VAR,
    ThreadsPackage,
    ThreadsPackageConfig,
)
from repro.workloads.scenario import Scenario
from repro.workloads.schedulers import make_scheduler

#: Trace categories the runner needs for its result reduction (the
#: ``sanitize.*`` ones are silent unless a sanitizer is attached).
RUNNER_TRACE_CATEGORIES = (
    "kernel.runnable",
    "app.finished",
    "server.update",
    "pc.poll",
    "pc.suspend",
    "pc.resume",
    "sanitize.violation",
    "sanitize.lock_holder_preempted",
    # Fault-tolerance categories (silent on healthy runs).
    "pc.poll_failed",
    "pc.target_expired",
    "server.crash",
    "server.restart",
    # Self-healing categories (silent unless supervision is armed).
    "pc.policy_swap",
    "plane.rebalance",
    "plane.failover",
    "watchdog.suspect",
    "watchdog.restart",
    "watchdog.recovered",
    "watchdog.failover",
    "watchdog.degraded",
    "watchdog.policy_swap",
    "kernel.cpu_offline",
    "kernel.cpu_online",
    "kernel.cpu_offline_refused",
    "kernel.kill",
    # Service-workload categories (silent unless a ServiceApp runs).
    "service.request",
    "service.slo_violation",
    # Lock-restriction categories (silent unless a lock sets admission).
    "lock.cull",
    "lock.readmit",
)


@dataclass
class AppResult:
    """Per-application outcome of one scenario run (times in us)."""

    app_id: str
    n_processes: int
    arrival: int
    finished_at: int
    wall_time: int
    tasks_completed: int
    polls: int
    suspensions: int
    resumes: int
    queue_lock_contended: int
    queue_lock_holder_preempted: int
    queue_lock_spin_time: int
    #: CPU actually consumed by this application's workers (includes the
    #: busy-wait idle polling, which idle_poll_time approximates).
    cpu_time: int = 0
    idle_poll_time: int = 0
    spin_time: int = 0
    preemptions: int = 0
    #: Polls that found the control board stale or empty while the
    #: application held a target (nonzero only under fault injection).
    failed_polls: int = 0
    #: Times the stale-target TTL released a dead server's target.
    target_expiries: int = 0
    #: Service requests that completed (0 for non-service applications).
    requests_completed: int = 0
    #: Runtime the application ran on ("taskqueue"/"forkjoin"/"pipeline").
    runtime: str = "taskqueue"
    #: Compliance telemetry (see :mod:`repro.threads.compliance`):
    #: completed target adoptions, publish-to-conformance lag statistics,
    #: peak runnable overshoot above the published target, and the
    #: observed safe-suspension-point cadence.
    adoptions: int = 0
    adoption_lag_mean: Optional[float] = None
    adoption_lag_max: int = 0
    overshoot_peak: float = 0.0
    safe_points: int = 0
    safe_point_gap_mean: Optional[float] = None
    #: Contention telemetry summed over the application's own locks
    #: (``Application.locks()``; the package queue lock is reported via
    #: the ``queue_lock_*`` fields above).  Per-lock detail, including
    #: the waiters histogram, lives in ``ScenarioResult.locks``.
    lock_acquisitions: int = 0
    lock_contended: int = 0
    lock_holder_preempted: int = 0
    lock_wait_time: int = 0
    lock_handoff_max: int = 0
    lock_waiters_peak: int = 0
    lock_passivations: int = 0
    lock_readmissions: int = 0


@dataclass
class ScenarioResult:
    """Everything an experiment needs from one run."""

    scenario: Scenario
    sim_time: int
    apps: Dict[str, AppResult]
    utilization: Dict[str, int]
    runnable_total: StepSeries
    runnable_per_app: Dict[str, StepSeries]
    server_updates: int
    total_preemptions: int
    total_cs_preemptions: int
    total_spin_time: int
    total_context_switches: int
    #: Simulator events executed for this run (throughput denominator for
    #: the perf benchmarks: events/sec = events_fired / harness wall time).
    events_fired: int
    trace: TraceLog = field(repr=False)
    #: Invariant violations observed by the sanitizer (0 when it was off
    #: or the run was clean; see ``sanitizer_counters`` to distinguish).
    sanitizer_violations: int = 0
    #: The sanitizer's full counter map (checks run, per-check violation
    #: counts, witnessed lock-holder preemptions); ``None`` = sanitizer off.
    sanitizer_counters: Optional[Dict[str, int]] = None
    #: Number of injectors the fault plan installed (0 = healthy run).
    faults_injected: int = 0
    #: ``(time, event, data)`` tuples logged by the fault injectors.
    fault_events: List[Tuple[int, str, Dict[str, Any]]] = field(
        default_factory=list
    )
    #: The watchdog's action counters (``None`` = supervision was off).
    watchdog_counters: Optional[Dict[str, int]] = None
    #: ``(time, kind, details)`` tuples for every watchdog action.
    watchdog_events: List[Tuple[int, str, Dict[str, Any]]] = field(
        default_factory=list
    )
    #: Per-application request-latency summaries (service applications
    #: only; empty when no ServiceApp ran or none completed a request).
    service: Dict[str, LatencyStats] = field(default_factory=dict)
    #: The same summaries aggregated per tier (interactive / batch).
    service_tiers: Dict[str, LatencyStats] = field(default_factory=dict)
    #: Per-lock contention telemetry snapshots keyed by lock name:
    #: every application lock (``Application.locks()``) plus each
    #: package's task-queue lock.  Empty when no lock saw any acquire.
    locks: Dict[str, LockStats] = field(default_factory=dict)

    def wall_time(self, app_id: str) -> int:
        """Wall time of one application (convenience accessor)."""
        return self.apps[app_id].wall_time

    @property
    def makespan(self) -> int:
        """Completion time of the last application."""
        return max(result.finished_at for result in self.apps.values())


class EventMeter:
    """Accumulates event counts across the ``run_scenario`` calls it spans.

    Used by the perf harness (``benchmarks/perf.py``) to report events/sec
    for a whole experiment without re-deriving its scenario list.
    """

    __slots__ = ("events", "runs")

    def __init__(self) -> None:
        self.events = 0
        self.runs = 0


#: The currently active meter, if any (set via :func:`metered`).
active_meter: Optional[EventMeter] = None


@contextmanager
def metered() -> Iterator[EventMeter]:
    """Meter every ``run_scenario`` in the ``with`` body (same process only,
    so harnesses measuring throughput should force serial sweeps)."""
    global active_meter
    meter = EventMeter()
    previous, active_meter = active_meter, meter
    try:
        yield meter
    finally:
        active_meter = previous


def _resolve_policy(scenario: Scenario, kernel: Kernel) -> Optional[AllocationPolicy]:
    """The allocation policy a scenario's control plane should run.

    Resolution order: explicit ``scenario.policy``, then the
    ``REPRO_POLICY`` environment knob, then the legacy
    ``server_partition_aware`` flag, then ``None`` (the server's default
    equipartition -- kept as ``None`` so the default path constructs the
    exact same objects as before this layer existed).
    """
    if isinstance(scenario.policy, AllocationPolicy):
        # An experiment handed over a pre-built instance to pin knobs the
        # name registry's defaults would miss (e.g. a CompliancePolicy
        # whose lag grace matches the experiment's poll cadence).
        return scenario.policy
    name = scenario.policy
    if name is None:
        name = os.environ.get(POLICY_ENV_VAR) or None
    if (
        name is None
        and scenario.server_partition_aware
        and scenario.scheduler == "partition"
    ):
        # The legacy flag is advisory: it only engages under the partition
        # scheduler (an explicit policy="space" elsewhere raises instead).
        name = "space"
    if name is None:
        return None
    if name == "space":
        if scenario.scheduler != "partition":
            raise ValueError(
                'policy "space" requires scheduler="partition" '
                f"(got {scenario.scheduler!r})"
            )
        return SpaceAwarePolicy(kernel.policy)
    return make_policy(name)


def _standalone_program(duration: int, quantum_hint: int):
    """A CPU-bound stand-alone process (one long compute, chunked so its
    compute syscalls do not dwarf the trace granularity)."""
    chunk = max(quantum_hint, 1)
    remaining = duration

    def program():
        nonlocal remaining
        while remaining > 0:
            step = min(chunk, remaining)
            remaining -= step
            yield sc.Compute(step)

    return program()


def run_scenario(
    scenario: Scenario,
    trace: Optional[TraceLog] = None,
    max_events: int = 50_000_000,
    sanitize: Optional[object] = None,
    engine_loop: str = "fused",
    faults: Optional[str] = None,
) -> ScenarioResult:
    """Run *scenario* to completion and reduce its measurements.

    *sanitize* selects the invariant checker: ``None`` (default) consults
    the ``REPRO_SANITIZE`` environment knob, ``False`` forces it off,
    ``"strict"``/``True`` raises on the first violation, ``"record"``
    accumulates violations into the result.  *engine_loop* picks the event
    loop (``"fused"`` or ``"plain"``, see
    :meth:`~repro.kernel.kernel.Kernel.run_until_quiescent`).  *faults*
    is a fault-plan spec string (see :mod:`repro.faults.plan`); when
    ``None`` the runner falls back to ``scenario.faults`` and then the
    ``REPRO_FAULTS`` environment knob.  The plan is seeded from
    ``scenario.seed``, so the same scenario + spec replays bit-identically.
    """
    if not scenario.apps:
        raise ValueError("scenario has no applications")
    if sanitize is None:
        sanitize = sanitize_mode_from_env()
    elif sanitize is True:
        sanitize = "strict"
    elif sanitize is False:
        sanitize = None
    if faults is None:
        faults = scenario.faults
    if faults is None:
        faults = os.environ.get(FAULTS_ENV_VAR) or None
    fault_plan = FaultPlan.from_spec(faults, seed=scenario.seed) if faults else None
    engine = Engine()
    machine = Machine(scenario.machine)
    if trace is None:
        trace = TraceLog(categories=RUNNER_TRACE_CATEGORIES)
    kernel = Kernel(
        machine=machine,
        engine=engine,
        policy=make_scheduler(scenario.scheduler),
        config=scenario.kernel,
        trace=trace,
    )
    sanitizer: Optional[SchedSanitizer] = None
    if sanitize:
        # Attach before anything is spawned so the shadow state starts
        # empty; the server-share watch is armed once the server exists.
        sanitizer = SchedSanitizer(kernel, mode=sanitize).attach()

    app_controls = [spec.control_mode(scenario.control) for spec in scenario.apps]
    server: Optional[ControlPlane] = None
    if "centralized" in app_controls:
        policy = _resolve_policy(scenario, kernel)
        # A weight table only engages when nothing else won the policy
        # resolution: an explicit policy (scenario or $REPRO_POLICY) keeps
        # priority, weighted-by-default would silently change every run.
        weights = None
        if policy is None:
            weights_spec = os.environ.get(WEIGHTS_ENV_VAR) or None
            if weights_spec:
                weights = parse_weights(weights_spec)
        shards = scenario.shards
        if shards is None:
            shards = int(os.environ.get(SHARDS_ENV_VAR) or 1)
        if policy is not None and policy.stateful and shards > 1:
            # A stateful policy's cross-round memory is pruned against the
            # application set it last saw; shards see disjoint sets, so a
            # shared instance would evict the other shards' state every
            # round.  Hand each shard its own clone -- per-shard weight
            # tables, derived from one scenario-level configuration.
            server = ControlPlane(
                kernel,
                shards=shards,
                interval=scenario.server_interval,
                policy_factory=lambda index: policy.clone(),
            )
        else:
            server = ControlPlane(
                kernel,
                shards=shards,
                interval=scenario.server_interval,
                policy=policy,
                weights=weights,
            )
        server.start()
        if sanitizer is not None:
            sanitizer.watch_server(server, poll_interval=scenario.poll_interval)

    # Supervision: scenario field first, then the env knob; an explicit
    # False pins the watchdog off regardless of the environment (an
    # experiment's unsupervised arm must stay unsupervised in CI).
    supervise = scenario.supervise
    if supervise is None:
        supervise = bool(int(os.environ.get(SUPERVISE_ENV_VAR) or 0))
    watchdog: Optional[Watchdog] = None
    if supervise and server is not None:
        watchdog = Watchdog(
            kernel, server, config=scenario.watchdog, seed=scenario.seed
        )
        watchdog.start()

    # The stale-target TTL is sized so a healthy server (one post per
    # interval) can never look stale; only a dead or partitioned one can.
    stale_target_ttl = scenario.stale_target_ttl
    if stale_target_ttl is None:
        stale_target_ttl = max(
            4 * scenario.poll_interval, 4 * scenario.server_interval
        )

    # Lock-level waiter control: scenario field first, then the env knob.
    # An explicit 0 pins "unrestricted" even when REPRO_LOCK_ADMISSION is
    # set (the supervise=False idiom) so pinned corpus digests cannot be
    # perturbed by a CI-wide knob.
    lock_admission = scenario.lock_admission
    if lock_admission is None:
        lock_admission = int(os.environ.get(LOCK_ADMISSION_ENV_VAR) or 0) or None
    elif lock_admission == 0:
        lock_admission = None

    packages: List[ThreadsPackage] = []
    for index, spec in enumerate(scenario.apps):
        app = spec.factory()
        if lock_admission is not None:
            # Restrict every lock the application exposes; a lock that
            # configured its own admission keeps it (most specific wins).
            for lock in app.locks():
                if lock.admission is None:
                    lock.admission = lock_admission
        # Only centralized applications are routed to a shard; other
        # control modes never poll, so they must not consume shard slots.
        routed = server is not None and app_controls[index] == "centralized"
        package_config = ThreadsPackageConfig(
            control=app_controls[index],
            board=server.board_for(app.app_id) if routed else None,
            server_channel=server.channel_for(app.app_id) if routed else None,
            poll_interval=scenario.poll_interval,
            idle_spin=scenario.idle_spin,
            use_no_preempt_flags=scenario.use_no_preempt_flags,
            stale_target_ttl=stale_target_ttl,
            lock_admission=lock_admission,
        )
        package = make_package(
            spec.runtime, kernel, app, spec.n_processes, config=package_config
        )
        packages.append(package)
        engine.schedule(spec.arrival, package.start, f"arrive-{app.app_id}")
    if sanitizer is not None:
        # Applications that legitimately released a stale target (server
        # dead past the TTL) are exempt from the share-overrun check.
        sanitizer.watch_packages(packages)

    if fault_plan is not None:
        fault_plan.install(kernel, server=server, packages=packages)

    for spec in scenario.uncontrolled:
        engine.schedule(
            spec.arrival,
            # Stand-alone processes are daemons so a long-lived compiler or
            # network daemon does not keep the run alive after every
            # application has finished.
            lambda spec=spec: kernel.spawn(
                _standalone_program(spec.duration, scenario.machine.quantum),
                name=spec.name,
                controllable=False,
                daemon=True,
            ),
            f"arrive-{spec.name}",
        )

    # Checked once per event: gate the per-package scan behind the O(1)
    # live-process counter, which stays nonzero for most of the run (the
    # method is pre-bound so each check costs one call, not two).
    alive = kernel.alive_nondaemon_count
    kernel.run_until_quiescent(
        done=lambda: alive() == 0 and all(p.finished for p in packages),
        max_events=max_events,
        max_time=scenario.max_time,
        # The predicate cannot be true while any worker is alive, so let
        # the event loop skip it until the kernel's exit path says so.
        done_exit_gated=True,
        loop=engine_loop,
    )
    kernel.finalize_accounting()
    if sanitizer is not None:
        sanitizer.finish()

    apps: Dict[str, AppResult] = {}
    service: Dict[str, LatencyStats] = {}
    lock_snapshots: Dict[str, LockStats] = {}
    for package in packages:
        lock_contended, lock_holder_preempted, lock_spin_time = (
            package.queue_lock_stats()
        )
        app_lock_stats: List[LockStats] = []
        for lock in package.app.locks():
            snap = LockStats.from_lock(lock)
            app_lock_stats.append(snap)
            previous = lock_snapshots.get(snap.name)
            lock_snapshots[snap.name] = (
                snap if previous is None else previous.merged(snap)
            )
        queue = getattr(package, "queue", None)
        if queue is not None and queue.lock.acquisitions:
            qsnap = LockStats.from_lock(queue.lock)
            lock_snapshots[qsnap.name] = qsnap
        tracker = package.adapter.tracker
        workers = kernel.processes_of_app(package.app_id)
        requests_completed = 0
        if package.request_log is not None:
            requests_completed = len(package.request_log.records)
            stats = package.request_log.stats()
            if stats is not None:
                service[package.app_id] = stats
        apps[package.app_id] = AppResult(
            lock_acquisitions=sum(s.acquisitions for s in app_lock_stats),
            lock_contended=sum(
                s.contended_acquisitions for s in app_lock_stats
            ),
            lock_holder_preempted=sum(
                s.holder_preempted_encounters for s in app_lock_stats
            ),
            lock_wait_time=sum(s.total_wait_time for s in app_lock_stats),
            lock_handoff_max=max(
                (s.handoff_latency_max for s in app_lock_stats), default=0
            ),
            lock_waiters_peak=max(
                (s.waiters_peak for s in app_lock_stats), default=0
            ),
            lock_passivations=sum(s.passivations for s in app_lock_stats),
            lock_readmissions=sum(s.readmissions for s in app_lock_stats),
            requests_completed=requests_completed,
            runtime=package.runtime,
            adoptions=tracker.adoptions,
            adoption_lag_mean=tracker.mean_adoption_lag,
            adoption_lag_max=tracker.max_adoption_lag,
            overshoot_peak=tracker.overshoot_peak,
            safe_points=tracker.safe_points,
            safe_point_gap_mean=tracker.mean_safe_point_gap,
            cpu_time=sum(p.stats.cpu_time for p in workers),
            idle_poll_time=package.idle_poll_time,
            spin_time=sum(p.stats.spin_time for p in workers),
            preemptions=sum(p.stats.preemptions for p in workers),
            app_id=package.app_id,
            n_processes=package.n_processes,
            arrival=package.started_at,
            finished_at=package.finished_at,
            wall_time=package.wall_time,
            tasks_completed=package.tasks_completed,
            polls=package.control.polls,
            suspensions=package.control.suspensions,
            resumes=package.control.resumes,
            queue_lock_contended=lock_contended,
            queue_lock_holder_preempted=lock_holder_preempted,
            queue_lock_spin_time=lock_spin_time,
            failed_polls=package.control.failed_polls,
            target_expiries=package.control.target_expiries,
        )

    if active_meter is not None:
        active_meter.events += engine.events_fired
        active_meter.runs += 1

    runnable_total, runnable_per_app = runnable_series_from_trace(trace)
    total_preemptions = 0
    total_cs_preemptions = 0
    total_spin = 0
    total_switches = 0
    for process in kernel.processes.values():
        total_preemptions += process.stats.preemptions
        total_cs_preemptions += process.stats.preemptions_in_critical_section
        total_spin += process.stats.spin_time
        total_switches += process.stats.dispatches

    return ScenarioResult(
        scenario=scenario,
        sim_time=kernel.now,
        apps=apps,
        utilization=machine.utilization_summary(),
        runnable_total=runnable_total,
        runnable_per_app=runnable_per_app,
        server_updates=server.updates if server is not None else 0,
        total_preemptions=total_preemptions,
        total_cs_preemptions=total_cs_preemptions,
        total_spin_time=total_spin,
        total_context_switches=total_switches,
        events_fired=engine.events_fired,
        trace=trace,
        sanitizer_violations=len(sanitizer.violations) if sanitizer else 0,
        sanitizer_counters=dict(sanitizer.counters) if sanitizer else None,
        faults_injected=len(fault_plan.injectors) if fault_plan else 0,
        fault_events=list(fault_plan.events) if fault_plan else [],
        watchdog_counters=watchdog.summary() if watchdog else None,
        watchdog_events=list(watchdog.events) if watchdog else [],
        service=service,
        service_tiers=tier_stats(service) if service else {},
        locks=lock_snapshots,
    )
