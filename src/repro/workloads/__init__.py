"""Workload scenarios and the experiment runner.

A :class:`~repro.workloads.scenario.Scenario` describes one run of the
simulated machine: applications (with process counts and arrival times),
optional stand-alone uncontrollable processes, the kernel scheduler, and
the process-control mode.  :func:`~repro.workloads.runner.run_scenario`
executes it and returns a :class:`~repro.workloads.runner.ScenarioResult`
with per-application wall times, the runnable-process time series
(Figure 5), processor utilization breakdowns, and lock statistics.
"""

from repro.workloads.scenario import AppSpec, Scenario, UncontrolledSpec
from repro.workloads.runner import AppResult, ScenarioResult, run_scenario
from repro.workloads.schedulers import make_scheduler, SCHEDULER_NAMES
from repro.workloads.locks import (
    lock_saturation_scenario,
    predicted_throughput,
)

__all__ = [
    "AppSpec",
    "UncontrolledSpec",
    "Scenario",
    "AppResult",
    "ScenarioResult",
    "run_scenario",
    "make_scheduler",
    "SCHEDULER_NAMES",
    "lock_saturation_scenario",
    "predicted_throughput",
]
