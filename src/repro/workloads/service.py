"""Open-arrival request streams for service workloads.

Every workload the repo grew up with is *closed*: a fixed set of tasks
exists at arrival and the application finishes when they drain, so process
control's win can only show up as completion time.  A service is *open*:
requests arrive on their own clock, independent of whether the machine is
keeping up, and the interesting number is the latency distribution --
especially its tail -- not the makespan.  This module generates those
arrival clocks.

All streams are driven by :class:`~repro.sim.rand.RandomStreams` named
seeded streams, so an arrival sequence is a pure function of its
parameters and seed: the same call always yields the same tuple of
microsecond timestamps (the replay-bit-identity contract the property
tests pin).  Trace-driven streams (:func:`trace_arrivals`) normalize an
externally recorded timestamp list into the same shape.
"""

from __future__ import annotations

from typing import Iterable, Sequence, Tuple

from repro.sim import units
from repro.sim.rand import RandomStreams

#: Tier tags carried by service applications and consumed by the
#: SLO-aware allocation policy: ``interactive`` requests have a latency
#: target the policy steers toward; ``batch`` tenants absorb the slack.
TIER_INTERACTIVE = "interactive"
TIER_BATCH = "batch"
SERVICE_TIERS = (TIER_INTERACTIVE, TIER_BATCH)


def _validate(rate_per_s: float, n_requests: int) -> None:
    if rate_per_s <= 0:
        raise ValueError(f"rate_per_s must be positive, got {rate_per_s}")
    if n_requests < 1:
        raise ValueError(f"n_requests must be >= 1, got {n_requests}")


def poisson_arrivals(
    rate_per_s: float,
    n_requests: int,
    seed: int = 0,
    stream: str = "service-arrivals",
) -> Tuple[int, ...]:
    """The first *n_requests* arrival instants of a seeded Poisson process.

    Inter-arrival gaps are exponential with mean ``1/rate_per_s`` seconds,
    rounded to whole microseconds (floored at 1 so arrivals are strictly
    increasing and two requests never alias into one instant).  Fixing the
    request *count* rather than a time window keeps the workload's task
    census knowable up front -- the scenario corpus asserts it exactly.
    """
    _validate(rate_per_s, n_requests)
    rng = RandomStreams(seed).fork(stream).get("gaps")
    mean_gap = units.seconds(1.0 / rate_per_s)
    times = []
    t = 0
    for _ in range(n_requests):
        t += max(1, int(rng.expovariate(1.0) * mean_gap))
        times.append(t)
    return tuple(times)


def bursty_arrivals(
    rate_per_s: float,
    n_requests: int,
    seed: int = 0,
    burst_factor: float = 4.0,
    duty_cycle: float = 0.5,
    stream: str = "service-arrivals",
) -> Tuple[int, ...]:
    """A two-rate Poisson wave: bursts at ``rate * burst_factor``
    alternating with lulls, keeping the same *average* rate.

    ``duty_cycle`` is the fraction of requests that belong to bursts.  The
    lull rate is solved so the long-run mean matches ``rate_per_s`` --
    the workload that separates a tail-aware policy from a mean-aware one,
    since the p99 lives almost entirely inside the bursts.
    """
    _validate(rate_per_s, n_requests)
    if burst_factor <= 1.0:
        raise ValueError(f"burst_factor must be > 1, got {burst_factor}")
    if not 0.0 < duty_cycle < 1.0:
        raise ValueError(f"duty_cycle must be in (0, 1), got {duty_cycle}")
    # duty/burst_rate + (1-duty)/lull_rate = 1/rate  =>  solve lull_rate.
    lull_share = (1.0 - duty_cycle) / (1.0 / rate_per_s - duty_cycle / (burst_factor * rate_per_s))
    rng = RandomStreams(seed).fork(stream).get("burst-gaps")
    phase_len = max(1, int(round(n_requests * duty_cycle / 4)) or 1)
    times = []
    t = 0
    in_burst = True
    phase_left = phase_len
    for _ in range(n_requests):
        rate = rate_per_s * burst_factor if in_burst else lull_share
        mean_gap = units.seconds(1.0 / rate)
        t += max(1, int(rng.expovariate(1.0) * mean_gap))
        times.append(t)
        phase_left -= 1
        if phase_left == 0:
            in_burst = not in_burst
            phase_left = phase_len
    return tuple(times)


def trace_arrivals(times: Iterable[int]) -> Tuple[int, ...]:
    """Normalize an externally recorded arrival trace.

    Timestamps are sorted, shifted so the first arrival is at a positive
    instant, and de-aliased (strictly increasing, minimum 1 us apart) --
    the invariants the generated streams guarantee by construction.
    """
    raw = sorted(int(t) for t in times)
    if not raw:
        raise ValueError("arrival trace is empty")
    if raw[0] < 0:
        raise ValueError(f"negative arrival time {raw[0]}")
    normalized = []
    last = 0
    for t in raw:
        t = max(t, last + 1)
        normalized.append(t)
        last = t
    return tuple(normalized)


def offered_load(
    arrivals: Sequence[int], work_per_request_us: int, n_processors: int
) -> float:
    """Mean offered load as a fraction of machine capacity.

    ``1.0`` means the arrival stream brings exactly as much work as the
    processors can retire; above it the queue grows without bound and the
    tail is governed by the allocation policy, not the service time.
    """
    if not arrivals:
        return 0.0
    if n_processors < 1:
        raise ValueError("n_processors must be >= 1")
    span = max(arrivals[-1], 1)
    return (len(arrivals) * work_per_request_us) / (span * n_processors)
