"""Random multiprogramming workload generation.

Section 1's environment is "a multiprogrammed shared-memory multiprocessor
with multiple simultaneously running parallel applications ... where the
number of running applications is continuously changing".  The figure
experiments use fixed three-application scripts; this module generates the
*continuous* version: applications of a weighted mix arriving as a Poisson
process over a window, each with its own process count and size.

Everything is driven by named seeded streams, so a generated workload is a
reproducible object: the same config and seed always yield the same
scenario, which can then be run with control on and off for a paired
comparison (see :mod:`repro.experiments.steady_state`).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, List, Mapping, Tuple

from repro.sim import units
from repro.sim.rand import RandomStreams
from repro.workloads.scenario import AppSpec

#: An application-template factory: (app_id, scale, seed) -> Application.
TemplateFactory = Callable[[str, float, int], Any]


@dataclass
class GeneratedWorkloadConfig:
    """Parameters of the random arrival process.

    Attributes:
        window: arrival window in microseconds; applications arrive within
            ``[0, window)`` (the run itself lasts until the last finishes).
        arrival_rate_per_s: mean application arrivals per second (Poisson).
        mix: application template name -> relative weight.
        process_counts: choices for each application's process count.
        scale_range: (lo, hi) uniform range for per-application size scale.
        min_apps: regenerate-with-extension floor -- the generator
            guarantees at least this many arrivals by extending draws.
    """

    window: int = field(default_factory=lambda: units.seconds(60))
    arrival_rate_per_s: float = 0.25
    mix: Mapping[str, float] = field(
        default_factory=lambda: {"fft": 1.0, "gauss": 1.0, "matmul": 1.0, "sort": 1.0}
    )
    process_counts: Tuple[int, ...] = (8, 12, 16, 24)
    scale_range: Tuple[float, float] = (0.15, 0.5)
    min_apps: int = 2

    def __post_init__(self) -> None:
        if self.window <= 0:
            raise ValueError("window must be positive")
        if self.arrival_rate_per_s <= 0:
            raise ValueError("arrival_rate_per_s must be positive")
        if not self.mix:
            raise ValueError("mix must not be empty")
        if any(weight <= 0 for weight in self.mix.values()):
            raise ValueError("mix weights must be positive")
        if not self.process_counts:
            raise ValueError("process_counts must not be empty")
        lo, hi = self.scale_range
        if not 0 < lo <= hi:
            raise ValueError("scale_range must satisfy 0 < lo <= hi")
        if self.min_apps < 1:
            raise ValueError("min_apps must be >= 1")


@dataclass(frozen=True)
class GeneratedApp:
    """One generated arrival (metadata kept for reporting)."""

    app_id: str
    template: str
    arrival: int
    n_processes: int
    scale: float


def generate_arrivals(
    config: GeneratedWorkloadConfig, seed: int = 0
) -> List[GeneratedApp]:
    """Draw the arrival sequence for one workload instance."""
    streams = RandomStreams(seed).fork("workload-generator")
    arrivals_rng = streams.get("arrivals")
    mix_rng = streams.get("mix")
    size_rng = streams.get("sizes")

    names = sorted(config.mix)
    weights = [config.mix[name] for name in names]
    mean_gap = units.seconds(1.0 / config.arrival_rate_per_s)

    apps: List[GeneratedApp] = []
    t = 0
    index = 0
    while True:
        gap = int(arrivals_rng.expovariate(1.0) * mean_gap)
        t += gap
        if t >= config.window and len(apps) >= config.min_apps:
            break
        if t >= config.window:
            # Guarantee the floor by folding the arrival into the window.
            t = int(arrivals_rng.uniform(0, config.window))
        template = mix_rng.choices(names, weights=weights)[0]
        apps.append(
            GeneratedApp(
                app_id=f"{template}-{index}",
                template=template,
                arrival=t,
                n_processes=size_rng.choice(config.process_counts),
                scale=size_rng.uniform(*config.scale_range),
            )
        )
        index += 1
    apps.sort(key=lambda app: app.arrival)
    return apps


def build_app_specs(
    arrivals: List[GeneratedApp],
    templates: Mapping[str, TemplateFactory],
    seed: int = 0,
) -> List[AppSpec]:
    """Turn generated arrivals into scenario AppSpecs.

    *templates* maps template name to a factory taking
    ``(app_id, scale, seed)`` -- see
    :func:`repro.experiments.steady_state.default_templates`.
    """
    specs: List[AppSpec] = []
    for generated in arrivals:
        factory = templates.get(generated.template)
        if factory is None:
            raise ValueError(f"no template named {generated.template!r}")
        specs.append(
            AppSpec(
                factory=lambda g=generated, f=factory: f(g.app_id, g.scale, seed),
                n_processes=generated.n_processes,
                arrival=generated.arrival,
            )
        )
    return specs
