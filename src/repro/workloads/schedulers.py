"""Scheduler registry: name -> policy instance.

Experiments refer to kernel policies by name so scenario descriptions stay
declarative and printable.
"""

from __future__ import annotations

from typing import Callable, Dict

from repro.kernel.scheduler import (
    AffinityScheduler,
    CoschedulingScheduler,
    FifoScheduler,
    NoPreemptAwareScheduler,
    PriorityDecayScheduler,
    ProcessGroupScheduler,
    ReferenceDecayScheduler,
    SchedulerPolicy,
    SpacePartitionScheduler,
)

_FACTORIES: Dict[str, Callable[[], SchedulerPolicy]] = {
    "fifo": FifoScheduler,
    "decay": PriorityDecayScheduler,
    # The O(n) rescan reference implementation; exists for the sanitizer's
    # differential oracle and must trace identically to "decay".
    "decay-ref": ReferenceDecayScheduler,
    "coscheduling": CoschedulingScheduler,
    "nopreempt": NoPreemptAwareScheduler,
    "groups": ProcessGroupScheduler,
    "affinity": AffinityScheduler,
    "partition": SpacePartitionScheduler,
}

#: Names accepted by :func:`make_scheduler` / ``Scenario.scheduler``.
SCHEDULER_NAMES = tuple(sorted(_FACTORIES))


def make_scheduler(name: str) -> SchedulerPolicy:
    """Build a fresh scheduler policy by name."""
    factory = _FACTORIES.get(name)
    if factory is None:
        raise ValueError(
            f"unknown scheduler {name!r}; valid names: {', '.join(SCHEDULER_NAMES)}"
        )
    return factory()
