"""Scenario descriptions.

A scenario is a complete, declarative description of one simulated run, so
experiments can log exactly what they measured and ablations can vary one
field at a time.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Any, Callable, List, Optional

from repro.kernel import KernelConfig
from repro.machine import MachineConfig
from repro.sim import units


#: Sentinel: an application follows the scenario-wide control mode.
INHERIT_CONTROL = "inherit"


@dataclass
class AppSpec:
    """One application in a scenario.

    Attributes:
        factory: zero-argument callable building a fresh
            :class:`repro.apps.base.Application` (fresh locks and jitter
            streams per run).
        n_processes: worker processes the application starts with.
        arrival: simulation time at which the application starts.
        control: per-application override of the scenario's control mode:
            :data:`INHERIT_CONTROL` (default), ``None``/"off" for an
            application that refuses to control its processes (the greedy
            applications of Section 7's fairness discussion),
            ``"centralized"`` or ``"decentralized"``.
        runtime: the threads-package runtime the application runs on --
            ``"taskqueue"`` (default), ``"forkjoin"`` (suspension only at
            phase barriers), or ``"pipeline"`` (dedicated stage threads;
            requires a stage-declaring app like
            :class:`repro.apps.pipeline.PipelineApp`).  See
            :data:`repro.threads.RUNTIME_NAMES` and docs/RUNTIMES.md.
    """

    factory: Callable[[], Any]
    n_processes: int
    arrival: int = 0
    control: Optional[str] = INHERIT_CONTROL
    runtime: str = "taskqueue"

    def __post_init__(self) -> None:
        if self.n_processes < 1:
            raise ValueError("n_processes must be >= 1")
        if self.arrival < 0:
            raise ValueError("arrival must be >= 0")
        if self.control not in (
            INHERIT_CONTROL,
            None,
            "off",
            "centralized",
            "decentralized",
        ):
            raise ValueError(f"unknown per-app control mode {self.control!r}")
        from repro.threads.adapter import RUNTIME_NAMES

        if self.runtime not in RUNTIME_NAMES:
            raise ValueError(
                f"unknown runtime {self.runtime!r}; "
                f"expected one of {RUNTIME_NAMES}"
            )

    def control_mode(self, scenario_control: Optional[str]) -> Optional[str]:
        """Resolve the effective control mode for this application."""
        if self.control == INHERIT_CONTROL:
            return scenario_control
        if self.control == "off":
            return None
        return self.control


@dataclass
class UncontrolledSpec:
    """A stand-alone, uncontrollable, CPU-bound process (compiler, daemon).

    The server subtracts such processes from the processor pool; scenarios
    use them to reproduce the paper's Figure 2 arithmetic and the Section 7
    fairness discussion.
    """

    name: str = "standalone"
    arrival: int = 0
    duration: int = field(default_factory=lambda: units.seconds(30))

    def __post_init__(self) -> None:
        if self.arrival < 0:
            raise ValueError("arrival must be >= 0")
        if self.duration <= 0:
            raise ValueError("duration must be positive")


@dataclass
class Scenario:
    """A full experiment run description.

    Attributes:
        apps: the applications and their start parameters.
        control: ``None``, ``"centralized"``, or ``"decentralized"``
            (applies to every application; mixed-control scenarios build
            packages by hand).
        scheduler: kernel policy name (see
            :data:`repro.workloads.schedulers.SCHEDULER_NAMES`).
        machine: hardware parameters (defaults: the paper's 16-CPU box).
        kernel: kernel cost parameters.
        uncontrolled: stand-alone process specs.
        server_interval: server update period (paper: 6 s).
        poll_interval: application poll period (paper: 6 s).
        idle_spin: threads-package idle behaviour (busy-wait vs blocking).
        use_no_preempt_flags: bracket package critical sections with
            ``SetNoPreempt`` (for the Zahorjan scheduler experiments).
        server_partition_aware: with the ``partition`` scheduler, the
            server derives each application's target from its processor
            group's size instead of the flat machine-wide division -- the
            Section 7 integration of the policy module with process
            control.  (Shorthand for ``policy="space"``.)
        policy: allocation-policy name the control server should run
            (see :data:`repro.core.allocation.POLICY_NAMES`, plus
            ``"space"`` which wraps the live partition scheduler and
            requires ``scheduler="partition"``), or a pre-built
            :class:`~repro.core.allocation.AllocationPolicy` instance when
            an experiment needs non-default knobs (e.g. a
            ``CompliancePolicy`` with an experiment-scale lag grace).
            ``None`` (the default)
            falls back to the ``REPRO_POLICY`` environment knob and then
            the paper's equipartition.
        shards: process-control server count; each shard owns a processor
            region and the applications routed to it (round-robin by
            arrival).  ``None`` falls back to ``REPRO_SHARDS`` and then 1
            (the paper's single server, bit-identical).
        seed: master random seed.
        max_time: safety cap on simulated time.
        faults: fault-injection plan spec string (see
            :mod:`repro.faults`), e.g.
            ``"server-crash:at=20ms,down=60ms;cpu-offline:cpu=1,at=10ms"``.
            ``None`` (the default) runs the healthy world; the runner also
            consults the ``REPRO_FAULTS`` environment knob.
        stale_target_ttl: override for the threads package's stale-target
            TTL; ``None`` lets the runner size it from the intervals.
        supervise: arm the control-plane :class:`~repro.resilience.
            Watchdog` (heartbeat monitoring, shard restart/failover).
            ``None`` (the default) falls back to the ``REPRO_SUPERVISE``
            environment knob; an explicit ``False`` keeps the watchdog
            off even when the knob is set (so an experiment's
            unsupervised arm stays unsupervised under a CI-wide knob).
        watchdog: optional :class:`~repro.resilience.WatchdogConfig`
            overriding the derived supervision timings, or a mapping of
            shard index to config for per-shard overrides.
        lock_admission: Malthusian concurrency restriction applied to
            every lock the run owns -- each application lock (via
            ``Application.locks()``) and each package queue lock gets
            ``admission=<n>`` unless the lock already sets its own.
            Lock-level waiter control composes freely with ``control=``
            processor control: either, both, or neither.  ``None`` (the
            default) falls back to the ``REPRO_LOCK_ADMISSION``
            environment knob and then leaves locks unrestricted; an
            explicit ``0`` pins "unrestricted" even when the knob is set
            (so a pinned baseline arm stays unrestricted under a
            CI-wide knob).
    """

    apps: List[AppSpec]
    control: Optional[str] = None
    scheduler: str = "fifo"
    machine: MachineConfig = field(default_factory=MachineConfig)
    kernel: KernelConfig = field(default_factory=KernelConfig)
    uncontrolled: List[UncontrolledSpec] = field(default_factory=list)
    server_interval: int = field(default_factory=lambda: units.seconds(6))
    poll_interval: int = field(default_factory=lambda: units.seconds(6))
    idle_spin: bool = True
    use_no_preempt_flags: bool = False
    server_partition_aware: bool = False
    policy: Any = None  # name string, AllocationPolicy instance, or None
    shards: Optional[int] = None
    seed: int = 0
    max_time: int = field(default_factory=lambda: units.seconds(3600))
    faults: Optional[str] = None
    stale_target_ttl: Optional[int] = None
    supervise: Optional[bool] = None
    watchdog: Optional[Any] = None
    lock_admission: Optional[int] = None

    def with_(self, **overrides: Any) -> "Scenario":
        """A copy of this scenario with fields replaced (ablation helper)."""
        return replace(self, **overrides)
