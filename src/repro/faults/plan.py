"""Fault plan: parse a spec string into injectors and install them.

The spec grammar is deliberately tiny so a whole plan fits in an
environment variable or a CLI flag::

    REPRO_FAULTS="cpu-offline:cpu=1,at=10ms,duration=40ms;server-crash:at=20ms,down=60ms"

``;``-separated items, each ``kind`` or ``kind:key=value,key=value``.
Times accept ``s`` / ``ms`` / ``us`` suffixes (bare integers are
microseconds, matching the engine clock); probabilities are floats.

Determinism contract: a :class:`FaultPlan` draws all randomness from
named :class:`~repro.sim.rand.RandomStreams` seeded from its own seed, so
``(spec, seed)`` fully determines every injected event -- replaying a run
with the same scenario and plan is bit-identical.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from repro.faults.injectors import (
    ChannelFault,
    ClockJitterFault,
    CpuOfflineFault,
    FaultContext,
    FaultInjector,
    PollFault,
    PreemptStormFault,
    ServerCrashFault,
)
from repro.sim.rand import RandomStreams

#: Environment knob the workload runner consults when the scenario does not
#: name a fault plan explicitly.
FAULTS_ENV_VAR = "REPRO_FAULTS"

_TIME_SUFFIXES = (("ms", 1_000), ("us", 1), ("s", 1_000_000))


def parse_time(text: str) -> int:
    """Parse ``"40ms"`` / ``"6s"`` / ``"250us"`` / ``"1234"`` to microseconds."""
    text = text.strip()
    for suffix, scale in _TIME_SUFFIXES:
        if text.endswith(suffix):
            return int(float(text[: -len(suffix)]) * scale)
    return int(text)


def _time(value: str) -> int:
    return parse_time(value)


def _int(value: str) -> int:
    return int(value)


def _float(value: str) -> float:
    return float(value)


# kind -> (factory, {param: converter}).  The factories close over the
# PollFault/ChannelFault mode so spec names stay one token per fault.
_CATALOG: Dict[str, Tuple[Callable[..., FaultInjector], Dict[str, Callable[[str], Any]]]] = {
    "cpu-offline": (
        CpuOfflineFault,
        {"cpu": _int, "at": _time, "duration": _time},
    ),
    "server-crash": (
        ServerCrashFault,
        {"at": _time, "down": _time, "shard": _int},
    ),
    "poll-drop": (
        lambda **kw: PollFault(mode="drop", **kw),
        {"at": _time, "duration": _time, "p": _float},
    ),
    "poll-delay": (
        lambda **kw: PollFault(mode="delay", **kw),
        {"at": _time, "duration": _time, "delay": _time},
    ),
    "poll-dup": (
        lambda **kw: PollFault(mode="dup", **kw),
        {"at": _time, "duration": _time},
    ),
    "chan-drop": (
        lambda **kw: ChannelFault(mode="drop", **kw),
        {"at": _time, "duration": _time, "p": _float},
    ),
    "chan-dup": (
        lambda **kw: ChannelFault(mode="dup", **kw),
        {"at": _time, "duration": _time, "p": _float},
    ),
    "clock-jitter": (
        ClockJitterFault,
        {"at": _time, "duration": _time, "amp": _time},
    ),
    "preempt-storm": (
        PreemptStormFault,
        {"at": _time, "duration": _time, "period": _time},
    ),
}

#: Spec names of every injector kind, in catalog order.
INJECTOR_KINDS = tuple(_CATALOG)


def parse_item(item: str) -> FaultInjector:
    """Parse one ``kind:key=value,...`` item into an injector."""
    item = item.strip()
    kind, _, body = item.partition(":")
    kind = kind.strip()
    if kind not in _CATALOG:
        raise ValueError(
            f"unknown fault kind {kind!r}; expected one of {sorted(_CATALOG)}"
        )
    factory, converters = _CATALOG[kind]
    kwargs: Dict[str, Any] = {}
    if body.strip():
        for pair in body.split(","):
            key, sep, value = pair.partition("=")
            key = key.strip()
            if not sep or not key:
                raise ValueError(f"malformed fault parameter {pair!r} in {item!r}")
            if key not in converters:
                raise ValueError(
                    f"unknown parameter {key!r} for fault {kind!r}; "
                    f"expected one of {sorted(converters)}"
                )
            kwargs[key] = converters[key](value.strip())
    return factory(**kwargs)


def parse_spec(spec: str) -> List[FaultInjector]:
    """Parse a full ``;``-separated plan spec into injectors."""
    return [parse_item(item) for item in spec.split(";") if item.strip()]


class FaultPlan:
    """A parsed, seedable set of injectors ready to install on a run."""

    def __init__(self, injectors: Sequence[FaultInjector], seed: int = 0) -> None:
        self.injectors = list(injectors)
        self.seed = seed
        self.context: Optional[FaultContext] = None

    @classmethod
    def from_spec(cls, spec: str, seed: int = 0) -> "FaultPlan":
        return cls(parse_spec(spec), seed=seed)

    def describe(self) -> str:
        """Canonical spec string (round-trips through :func:`parse_spec`)."""
        return ";".join(injector.describe() for injector in self.injectors)

    def install(
        self,
        kernel: Any,
        server: Optional[Any] = None,
        packages: Optional[Sequence[Any]] = None,
    ) -> FaultContext:
        """Install every injector; returns the shared :class:`FaultContext`."""
        context = FaultContext(
            kernel=kernel,
            rng=RandomStreams(self.seed).fork("faults"),
            server=server,
            packages=list(packages or []),
        )
        for injector in self.injectors:
            injector.install(context)
        self.context = context
        return context

    @property
    def events(self) -> List[Tuple[int, str, Dict[str, Any]]]:
        """Injection events logged so far (empty before :meth:`install`)."""
        return [] if self.context is None else self.context.events

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<FaultPlan seed={self.seed} {self.describe()!r}>"


def random_fault_spec(
    seed: int,
    horizon: int,
    n_faults: int = 3,
    cpus: int = 8,
    kinds: Sequence[str] = INJECTOR_KINDS,
    shards: int = 1,
) -> str:
    """A random-but-reproducible plan spec (property tests, fuzz sweeps).

    Returns a *spec string* rather than a plan so callers get a fresh,
    picklable plan per run; the same ``(seed, horizon, n_faults)`` always
    yields the same spec.  Events land in the first ~60% of ``horizon`` so
    the run has room to degrade gracefully and recover.  With ``shards >
    1`` half the server crashes (by coin flip) target a random single
    shard; at the default 1 the draw sequence is exactly the historical
    one, so existing seeds keep their specs.
    """
    rng = RandomStreams(seed).get("fault-spec")
    window = max(1, (horizon * 3) // 5)
    items: List[str] = []
    for _ in range(n_faults):
        kind = rng.choice(list(kinds))
        at = rng.randrange(window)
        duration = max(1, rng.randrange(max(2, horizon // 4)))
        if kind == "cpu-offline":
            cpu = rng.randrange(cpus)
            items.append(f"cpu-offline:cpu={cpu},at={at},duration={duration}")
        elif kind == "server-crash":
            if shards > 1 and rng.random() < 0.5:
                shard = rng.randrange(shards)
                items.append(
                    f"server-crash:at={at},down={duration},shard={shard}"
                )
            else:
                items.append(f"server-crash:at={at},down={duration}")
        elif kind == "poll-drop":
            p = round(rng.uniform(0.3, 1.0), 3)
            items.append(f"poll-drop:at={at},duration={duration},p={p}")
        elif kind == "poll-delay":
            delay = max(1, rng.randrange(max(2, horizon // 8)))
            items.append(f"poll-delay:at={at},duration={duration},delay={delay}")
        elif kind == "poll-dup":
            items.append(f"poll-dup:at={at},duration={duration}")
        elif kind in ("chan-drop", "chan-dup"):
            p = round(rng.uniform(0.3, 1.0), 3)
            items.append(f"{kind}:at={at},duration={duration},p={p}")
        elif kind == "clock-jitter":
            amp = max(1, rng.randrange(max(2, horizon // 16)))
            items.append(f"clock-jitter:at={at},duration={duration},amp={amp}")
        else:  # preempt-storm
            period = max(1, rng.randrange(max(2, horizon // 32)))
            items.append(f"preempt-storm:at={at},duration={duration},period={period}")
    return ";".join(items)
