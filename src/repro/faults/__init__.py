"""Deterministic fault injection and the chaos campaign.

The paper's process-control design quietly assumes a healthy world: the
server always answers polls, processors never vanish, messages arrive
exactly once.  This package stress-tests the reproduction outside that
assumption -- every injector is seed-driven and scheduled on the event
calendar, so a faulted run replays bit-identically, and every fault is
paired with a graceful-degradation mechanism in the kernel, server, or
threads package (``docs/FAULTS.md`` maps one to the other).

Public API
----------

- :class:`~repro.faults.plan.FaultPlan` / ``parse_spec`` -- parse
  ``"cpu-offline:cpu=1,at=10ms;server-crash:at=20ms,down=60ms"`` into
  installable injectors; ``FAULTS_ENV_VAR`` (``REPRO_FAULTS``) is the
  runner's environment knob.
- :mod:`~repro.faults.injectors` -- the injector catalog.
- :func:`~repro.faults.plan.random_fault_spec` -- reproducible random
  plans for property tests.
- :mod:`~repro.faults.campaign` -- the ChaosCampaign sweep
  (``python -m repro.experiments chaos``).

Import note: :mod:`repro.faults.campaign` imports the workload runner, so
it is *not* imported here (the runner itself imports
:mod:`repro.faults.plan`).
"""

from repro.faults.injectors import (
    ChannelFault,
    ClockJitterFault,
    CpuOfflineFault,
    FaultContext,
    FaultInjector,
    PollFault,
    PreemptStormFault,
    ServerCrashFault,
)
from repro.faults.plan import (
    FAULTS_ENV_VAR,
    INJECTOR_KINDS,
    FaultPlan,
    parse_spec,
    parse_time,
    random_fault_spec,
)

__all__ = [
    "FAULTS_ENV_VAR",
    "INJECTOR_KINDS",
    "FaultContext",
    "FaultInjector",
    "FaultPlan",
    "ChannelFault",
    "ClockJitterFault",
    "CpuOfflineFault",
    "PollFault",
    "PreemptStormFault",
    "ServerCrashFault",
    "parse_spec",
    "parse_time",
    "random_fault_spec",
]
