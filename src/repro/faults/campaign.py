"""ChaosCampaign: sweep seeds x injectors x schedulers under the sanitizer.

The campaign is the lockdown for the fault-injection subsystem: every cell
runs a small multiprogrammed workload with ``REPRO_SANITIZE``-style
invariant checking forced on, injects one named fault plan, and asserts

* zero invariant violations,
* no deadlock (every application finishes inside the time cap), and
* bounded completion-time inflation against the matching healthy baseline.

Cells fan out over :func:`repro.experiments.parallel.parallel_map`, so the
sweep is order-stable and bit-identical whether it runs serially or on all
cores -- and :meth:`ChaosReport.format_report` is byte-identical for the
same seed set, which the determinism test pins.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.apps.synthetic import UniformApp
from repro.experiments.parallel import parallel_map
from repro.machine import MachineConfig
from repro.sanitize.invariants import sanitize_mode_from_env
from repro.sim import units
from repro.workloads import AppSpec, Scenario, run_scenario

#: Named fault plans the default campaign sweeps (>= 3 distinct injector
#: families; see :mod:`repro.faults.plan` for the grammar).
DEFAULT_INJECTORS: Dict[str, str] = {
    "cpu-churn": (
        "cpu-offline:cpu=1,at=5ms,duration=40ms;"
        "cpu-offline:cpu=2,at=20ms,duration=40ms"
    ),
    # The runner sizes the stale-target TTL at 4 x the 10ms intervals.
    # The crash lands at 25ms -- after every application's first poll, so
    # targets are *adopted* when the server dies -- and stamps an epoch
    # on the board: polls fail immediately and the TTL releases targets
    # at ~(crash + TTL) = 65ms, with the 120ms outage leaving room for
    # crash-safe re-registration after the restart.
    "server-crash": "server-crash:at=25ms,down=120ms",
    "poll-chaos": (
        "poll-drop:at=5ms,duration=50ms,p=0.9;"
        "poll-delay:at=60ms,duration=30ms,delay=4ms"
    ),
    "message-chaos": (
        "chan-drop:at=0,duration=20ms,p=0.5;"
        "chan-dup:at=20ms,duration=20ms,p=0.5;"
        "clock-jitter:at=5ms,duration=60ms,amp=3ms"
    ),
    "preempt-storm": "preempt-storm:at=5ms,duration=50ms,period=2ms",
}

#: Kernel policies the default campaign crosses the injectors with.
DEFAULT_SCHEDULERS = ("fifo", "decay", "partition")


def shard_injectors(shards: int) -> Dict[str, str]:
    """One shard-targeted crash plan per shard (``server-crash:shard=i``).

    For sharded campaigns: ``run_campaign(injectors=shard_injectors(2),
    shards=2)`` kills exactly one shard per cell and lets the assertion
    machinery verify the *other* region's applications ride through.
    """
    if shards < 1:
        raise ValueError("shards must be >= 1")
    return {
        f"shard{index}-crash": (
            f"server-crash:at=8ms,down=140ms,shard={index}"
        )
        for index in range(shards)
    }

#: Healthy-vs-faulted makespan ratio the campaign tolerates by default.
#: Taking processors away or killing the server for most of a short run
#: legitimately slows it down; what we bound is *graceful* degradation,
#: not zero-cost degradation.
DEFAULT_MAX_INFLATION = 10.0


def chaos_scenario(
    scheduler: str,
    seed: int,
    faults: Optional[str] = None,
    shards: Optional[int] = None,
) -> Scenario:
    """The campaign's workload: two controlled apps oversubscribing 8 CPUs.

    Small on purpose (a cell takes well under a second of host time) but
    structurally complete: centralized control, a poll/server interval the
    faults can race with, and enough oversubscription that targets bind.
    *shards* sizes the control plane (``None`` = the runner's default,
    which also honours ``REPRO_SHARDS``).
    """
    machine = MachineConfig(
        n_processors=8,
        quantum=units.ms(5),
        context_switch_cost=units.us(50),
        dispatch_latency=units.us(10),
        cache_cold_penalty=units.us(500),
        cache_warmup_time=units.ms(2),
        cache_purge_time=units.ms(4),
    )
    return Scenario(
        apps=[
            AppSpec(
                lambda: UniformApp(
                    "chaos-a",
                    n_tasks=240,
                    task_cost=units.ms(2),
                    jitter=0.2,
                    seed=seed,
                ),
                n_processes=6,
            ),
            AppSpec(
                lambda: UniformApp(
                    "chaos-b",
                    n_tasks=240,
                    task_cost=units.ms(2),
                    jitter=0.2,
                    seed=seed,
                ),
                n_processes=6,
                arrival=units.ms(2),
            ),
        ],
        control="centralized",
        scheduler=scheduler,
        machine=machine,
        server_interval=units.ms(10),
        poll_interval=units.ms(10),
        seed=seed,
        max_time=units.seconds(5),
        faults=faults,
        shards=shards,
    )


@dataclass
class ChaosCell:
    """One campaign cell: (injector plan, scheduler, seed) -> outcome."""

    injector: str  # "baseline" for the healthy run
    scheduler: str
    seed: int
    completed: bool
    makespan: int
    sim_time: int
    violations: int
    faults_injected: int
    fault_events: int
    failed_polls: int
    target_expiries: int
    #: makespan / healthy-baseline makespan; 0.0 until the report fills it.
    inflation: float = 0.0


def _chaos_cell(args) -> ChaosCell:
    """Sweep cell (module-level so it pickles for the process pool)."""
    injector, spec, scheduler, seed, sanitize, shards = args
    scenario = chaos_scenario(scheduler, seed, shards=shards)
    # faults="" (not None) so a stray REPRO_FAULTS cannot infect baselines.
    result = run_scenario(scenario, sanitize=sanitize, faults=spec or "")
    completed = all(
        package.finished_at is not None and package.finished_at >= 0
        for package in result.apps.values()
    ) and result.sim_time < scenario.max_time
    return ChaosCell(
        injector=injector,
        scheduler=scheduler,
        seed=seed,
        completed=completed,
        makespan=result.makespan if completed else scenario.max_time,
        sim_time=result.sim_time,
        violations=result.sanitizer_violations,
        faults_injected=result.faults_injected,
        fault_events=len(result.fault_events),
        failed_polls=sum(app.failed_polls for app in result.apps.values()),
        target_expiries=sum(
            app.target_expiries for app in result.apps.values()
        ),
    )


@dataclass
class ChaosReport:
    """Everything a campaign run produced, reduced for assertion/printing."""

    cells: List[ChaosCell]
    baselines: Dict[Tuple[str, int], int]  # (scheduler, seed) -> makespan
    injectors: Dict[str, str]
    schedulers: Tuple[str, ...]
    seeds: Tuple[int, ...]
    sanitize: str = "record"
    failures: List[str] = field(default_factory=list)

    @property
    def total_violations(self) -> int:
        return sum(cell.violations for cell in self.cells)

    @property
    def deadlocks(self) -> int:
        return sum(1 for cell in self.cells if not cell.completed)

    @property
    def max_inflation(self) -> float:
        return max((cell.inflation for cell in self.cells), default=0.0)

    def check(self, max_inflation: float = DEFAULT_MAX_INFLATION) -> List[str]:
        """All acceptance failures (empty list = clean campaign)."""
        failures: List[str] = []
        for cell in self.cells:
            where = f"{cell.injector}/{cell.scheduler}/seed={cell.seed}"
            if not cell.completed:
                failures.append(f"deadlock: {where} missed the time cap")
            if cell.violations:
                failures.append(
                    f"invariants: {where} logged {cell.violations} violations"
                )
            if cell.inflation > max_inflation:
                failures.append(
                    f"inflation: {where} ran {cell.inflation:.2f}x the "
                    f"healthy baseline (cap {max_inflation:.2f}x)"
                )
        return failures

    def assert_clean(
        self, max_inflation: float = DEFAULT_MAX_INFLATION
    ) -> None:
        """Raise AssertionError listing every acceptance failure."""
        failures = self.check(max_inflation)
        if failures:
            raise AssertionError(
                "chaos campaign failed:\n  " + "\n  ".join(failures)
            )

    def format_report(self) -> str:
        """Deterministic text report (byte-identical across reruns)."""
        lines = [
            "ChaosCampaign: "
            f"{len(self.injectors)} injector plans x "
            f"{len(self.schedulers)} schedulers x {len(self.seeds)} seeds "
            f"(sanitize={self.sanitize})",
            "",
            f"{'injector':<14} {'scheduler':<10} {'seed':>4} "
            f"{'makespan_us':>12} {'inflation':>9} {'viol':>4} "
            f"{'events':>6} {'expiries':>8} {'ok':>3}",
        ]
        for cell in self.cells:
            lines.append(
                f"{cell.injector:<14} {cell.scheduler:<10} {cell.seed:>4} "
                f"{cell.makespan:>12} {cell.inflation:>9.3f} "
                f"{cell.violations:>4} {cell.fault_events:>6} "
                f"{cell.target_expiries:>8} "
                f"{'yes' if cell.completed else 'NO':>3}"
            )
        lines.append("")
        lines.append(
            f"violations={self.total_violations} deadlocks={self.deadlocks} "
            f"max_inflation={self.max_inflation:.3f}"
        )
        failures = self.check()
        if failures:
            lines.append("FAILURES:")
            lines.extend(f"  {failure}" for failure in failures)
        else:
            lines.append("clean")
        return "\n".join(lines)


def run_campaign(
    injectors: Optional[Dict[str, str]] = None,
    schedulers: Sequence[str] = DEFAULT_SCHEDULERS,
    seeds: Sequence[int] = (0, 1, 2, 3, 4),
    sanitize: Optional[str] = None,
    jobs: Optional[int] = None,
    shards: Optional[int] = None,
) -> ChaosReport:
    """Run the full sweep: baselines + every injector plan per cell.

    *sanitize* defaults to the ``REPRO_SANITIZE`` environment knob, or
    ``"record"`` when unset, so the campaign always runs checked.
    *shards* sizes every cell's control plane (``None`` = runner default,
    honouring ``REPRO_SHARDS``); the fault plans then hit every shard.
    """
    if injectors is None:
        injectors = dict(DEFAULT_INJECTORS)
    if sanitize is None:
        sanitize = sanitize_mode_from_env() or "record"
    schedulers = tuple(schedulers)
    seeds = tuple(seeds)

    cells_args = []
    for scheduler in schedulers:
        for seed in seeds:
            cells_args.append(("baseline", "", scheduler, seed, sanitize, shards))
            for name, spec in injectors.items():
                cells_args.append((name, spec, scheduler, seed, sanitize, shards))
    cells: List[ChaosCell] = parallel_map(_chaos_cell, cells_args, jobs)

    baselines: Dict[Tuple[str, int], int] = {
        (cell.scheduler, cell.seed): cell.makespan
        for cell in cells
        if cell.injector == "baseline"
    }
    for cell in cells:
        base = baselines.get((cell.scheduler, cell.seed), 0)
        cell.inflation = cell.makespan / base if base else 0.0
    return ChaosReport(
        cells=cells,
        baselines=baselines,
        injectors=injectors,
        schedulers=schedulers,
        seeds=seeds,
        sanitize=sanitize,
    )


def main(preset: str = "quick") -> None:  # pragma: no cover - CLI glue
    """CLI entry (``python -m repro.experiments chaos``): run + assert."""
    seeds = (0, 1, 2) if preset == "quick" else (0, 1, 2, 3, 4)
    report = run_campaign(seeds=seeds)
    print(report.format_report())
    report.assert_clean()
