"""Deterministic fault injectors.

Each injector is a small, composable object that, given a
:class:`FaultContext`, schedules its misbehaviour on the simulation's event
calendar.  Everything is seed-driven (randomness comes from named
:class:`~repro.sim.rand.RandomStreams`) and wall-clock-free, so a fault
plan replays bit-identically: same seed, same spec, same run.

The catalog (spec names in parentheses; see :mod:`repro.faults.plan` for
the spec grammar):

* :class:`CpuOfflineFault` (``cpu-offline``) -- hot-unplug a processor at
  ``at``, optionally returning it after ``duration``.  The victim process
  is migrated by preemption; schedulers learn about the topology change
  through ``on_cpu_offline``/``on_cpu_online``.
* :class:`ServerCrashFault` (``server-crash``) -- kill the control server
  at ``at``; the board keeps its stale targets.  ``down`` schedules a
  restart with registry rebuilt from the process table.
* :class:`PollFault` (``poll-drop`` / ``poll-delay`` / ``poll-dup``) --
  interfere with the control board during a window: reads return nothing
  (drop, probability ``p``), posts are deferred by ``delay``, or reads are
  served the *previous* post's targets (a duplicated stale response).
* :class:`ChannelFault` (``chan-drop`` / ``chan-dup``) -- drop or
  duplicate registration-channel messages with probability ``p``.
* :class:`ClockJitterFault` (``clock-jitter``) -- perturb the server's
  scan interval by a seeded uniform offset in ``[-amp, +amp]``.
* :class:`PreemptStormFault` (``preempt-storm``) -- force-preempt every
  online processor every ``period`` during the window.

Every injector pairs with a graceful-degradation mechanism elsewhere in
the tree (stale-target TTL + poll backoff in the threads package, crash
re-registration and the starvation floor in the server, online-set-aware
dispatch in the kernel); ``docs/FAULTS.md`` has the catalog-to-mechanism
map.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Tuple


@dataclass
class FaultContext:
    """Everything an injector may touch, plus the shared event log.

    ``events`` accumulates ``(time, event, data)`` tuples in injection
    order -- the deterministic record the chaos campaign folds into its
    report.
    """

    kernel: Any
    rng: Any  # RandomStreams
    server: Optional[Any] = None
    packages: List[Any] = field(default_factory=list)
    events: List[Tuple[int, str, Dict[str, Any]]] = field(default_factory=list)

    def log(self, event: str, **data: Any) -> None:
        now = self.kernel.engine.now
        self.events.append((now, event, data))
        self.kernel.trace.emit(now, f"fault.{event}", **data)


class FaultInjector:
    """Base class: a named fault with an installation hook."""

    #: Spec name, e.g. ``"cpu-offline"`` (set by subclasses).
    kind: str = "fault"

    def install(self, ctx: FaultContext) -> None:
        """Schedule this fault's events on ``ctx.kernel.engine``."""
        raise NotImplementedError

    def params(self) -> Dict[str, Any]:
        """Canonical parameter map (for specs and reports)."""
        return {}

    def describe(self) -> str:
        """Canonical one-item spec string, round-trippable by the parser."""
        params = {k: v for k, v in self.params().items() if v is not None}
        if not params:
            return self.kind
        body = ",".join(f"{key}={params[key]}" for key in sorted(params))
        return f"{self.kind}:{body}"

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{type(self).__name__} {self.describe()}>"


class CpuOfflineFault(FaultInjector):
    """Hot-unplug processor ``cpu`` at ``at``; re-plug after ``duration``."""

    kind = "cpu-offline"

    def __init__(self, cpu: int = 1, at: int = 0, duration: Optional[int] = None):
        self.cpu = cpu
        self.at = at
        self.duration = duration

    def params(self) -> Dict[str, Any]:
        return {"cpu": self.cpu, "at": self.at, "duration": self.duration}

    def install(self, ctx: FaultContext) -> None:
        engine = ctx.kernel.engine

        def go_offline() -> None:
            applied = ctx.kernel.cpu_offline(self.cpu)
            ctx.log("cpu_offline", cpu=self.cpu, applied=applied)
            if applied and self.duration is not None:
                engine.schedule(self.duration, come_back, "fault-cpu-online")

        def come_back() -> None:
            ctx.kernel.cpu_online(self.cpu)
            ctx.log("cpu_online", cpu=self.cpu)

        engine.schedule_at(self.at, go_offline, "fault-cpu-offline")


class ServerCrashFault(FaultInjector):
    """Crash the control server at ``at``; restart after ``down`` (if set).

    With ``shard`` set, kill exactly that shard of a
    :class:`~repro.core.plane.ControlPlane` instead of the whole plane --
    the other regions' servers keep scanning and their applications keep
    fresh targets.  A shard index the watched server cannot resolve (bare
    single server, or out of range) logs an unapplied fault rather than
    failing the run: a chaos plan is a hypothesis, not a precondition.
    """

    kind = "server-crash"

    def __init__(
        self,
        at: int = 0,
        down: Optional[int] = None,
        shard: Optional[int] = None,
    ):
        self.at = at
        self.down = down
        self.shard = shard

    def params(self) -> Dict[str, Any]:
        return {"at": self.at, "down": self.down, "shard": self.shard}

    def install(self, ctx: FaultContext) -> None:
        server = ctx.server
        engine = ctx.kernel.engine
        shard = self.shard

        def resolve_shard():
            """The shard's own server, or None when unresolvable."""
            shards = getattr(server, "servers", None)
            if shards is None or not 0 <= shard < len(shards):
                return None
            return shards[shard]

        def crash() -> None:
            if server is None or server.pid is None:
                ctx.log("server_crash", applied=False, shard=shard)
                return
            if shard is None:
                server.crash()
            else:
                target = resolve_shard()
                if target is None or target.pid is None:
                    ctx.log("server_crash", applied=False, shard=shard)
                    return
                # Route through the plane when it can rebalance routing.
                crash_shard = getattr(server, "crash_shard", None)
                if crash_shard is not None:
                    crash_shard(shard)
                else:
                    target.crash()
            ctx.log("server_crash", applied=True, shard=shard)
            if self.down is not None:
                engine.schedule(self.down, restart, "fault-server-restart")

        def restart() -> None:
            if shard is None:
                if server.pid is not None:  # someone already restarted it
                    return
                process = server.restart()
            else:
                target = resolve_shard()
                if target is None or target.pid is not None:
                    return
                restart_shard = getattr(server, "restart_shard", None)
                if restart_shard is not None:
                    process = restart_shard(shard)
                else:
                    process = target.restart()
            ctx.log("server_restart", pid=process.pid, shard=shard)

        engine.schedule_at(self.at, crash, "fault-server-crash")


class PollFault(FaultInjector):
    """Interfere with :class:`~repro.kernel.ipc.ControlBoard` traffic.

    Modes:

    * ``drop``: during the window each ``read`` returns ``None`` with
      probability ``p`` (the application's poll response is lost);
    * ``delay``: each ``post`` during the window lands ``delay`` later
      (the server's update is in flight);
    * ``dup``: reads are served the *previous* post's targets -- the
      duplicated, stale response of a retransmitting transport.

    Overlapping windows on the same board chain their shims; the inner
    window then effectively extends to the outer restore.
    """

    kind = "poll-fault"

    def __init__(
        self,
        mode: str = "drop",
        at: int = 0,
        duration: int = 0,
        p: float = 1.0,
        delay: int = 0,
    ):
        if mode not in ("drop", "delay", "dup"):
            raise ValueError(f"unknown poll fault mode {mode!r}")
        if duration <= 0:
            raise ValueError("poll fault duration must be positive")
        self.mode = mode
        self.at = at
        self.duration = duration
        self.p = p
        self.delay = delay

    @property
    def _spec_kind(self) -> str:
        return f"poll-{self.mode}"

    def describe(self) -> str:
        params = {k: v for k, v in self.params().items() if v is not None}
        body = ",".join(f"{key}={params[key]}" for key in sorted(params))
        return f"{self._spec_kind}:{body}"

    def params(self) -> Dict[str, Any]:
        out: Dict[str, Any] = {"at": self.at, "duration": self.duration}
        if self.mode == "drop":
            out["p"] = self.p
        if self.mode == "delay":
            out["delay"] = self.delay
        return out

    def install(self, ctx: FaultContext) -> None:
        if ctx.server is None:
            ctx.kernel.engine.schedule_at(
                self.at,
                lambda: ctx.log(f"poll_{self.mode}_skipped", reason="no server"),
                "fault-poll",
            )
            return
        # A sharded control plane exposes one board per shard; shim every
        # one so no shard escapes the fault window.
        boards = list(getattr(ctx.server, "boards", None) or [ctx.server.board])
        engine = ctx.kernel.engine
        rng = ctx.rng.get(f"{self._spec_kind}:{self.at}")
        dropped = [0]

        def shim_board(board) -> None:
            if self.mode == "drop":
                original_read = board.read

                def faulty_read(app_id: str):
                    if rng.random() < self.p:
                        dropped[0] += 1
                        return None
                    return original_read(app_id)

                board.read = faulty_read
                restores.append((board, "read", faulty_read, original_read))
            elif self.mode == "delay":
                original_post = board.post

                def faulty_post(targets, now):
                    engine.schedule(
                        self.delay,
                        lambda t=dict(targets): original_post(t, engine.now),
                        "fault-delayed-post",
                    )

                board.post = faulty_post
                restores.append((board, "post", faulty_post, original_post))
            else:  # dup: serve the previous post's targets
                original_read = board.read
                original_post = board.post
                previous = [dict(board.targets)]

                def dup_post(targets, now):
                    previous[0] = dict(board.targets)
                    original_post(targets, now)

                def dup_read(app_id: str):
                    return previous[0].get(app_id)

                board.post = dup_post
                board.read = dup_read
                restores.append((board, "post", dup_post, original_post))
                restores.append((board, "read", dup_read, original_read))

        def start() -> None:
            ctx.log(f"poll_{self.mode}_start")
            for board in boards:
                shim_board(board)

        restores: List[Tuple[Any, str, Callable, Callable]] = []

        def stop() -> None:
            for board, name, shim, original in restores:
                # Only unwind our own shim; a chained inner shim keeps
                # wrapping (and will restore through us when it ends).
                if getattr(board, name, None) is shim:
                    setattr(board, name, original)
            restores.clear()
            ctx.log(f"poll_{self.mode}_end", dropped=dropped[0] or None)

        engine.schedule_at(self.at, start, "fault-poll-start")
        engine.schedule_at(self.at + self.duration, stop, "fault-poll-end")


class ChannelFault(FaultInjector):
    """Drop or duplicate messages on the server registration channel."""

    kind = "chan-fault"

    def __init__(
        self, mode: str = "drop", at: int = 0, duration: int = 0, p: float = 1.0
    ):
        if mode not in ("drop", "dup"):
            raise ValueError(f"unknown channel fault mode {mode!r}")
        if duration <= 0:
            raise ValueError("channel fault duration must be positive")
        self.mode = mode
        self.at = at
        self.duration = duration
        self.p = p

    @property
    def _spec_kind(self) -> str:
        return f"chan-{self.mode}"

    def describe(self) -> str:
        body = ",".join(
            f"{key}={value}" for key, value in sorted(self.params().items())
        )
        return f"{self._spec_kind}:{body}"

    def params(self) -> Dict[str, Any]:
        return {"at": self.at, "duration": self.duration, "p": self.p}

    def install(self, ctx: FaultContext) -> None:
        if ctx.server is None:
            ctx.kernel.engine.schedule_at(
                self.at,
                lambda: ctx.log(f"chan_{self.mode}_skipped", reason="no server"),
                "fault-chan",
            )
            return
        # Cover every shard's registration channel.
        channels = list(
            getattr(ctx.server, "channels", None) or [ctx.server.channel]
        )
        engine = ctx.kernel.engine
        rng = ctx.rng.get(f"{self._spec_kind}:{self.at}")
        affected = [0]

        def fault_filter(message):
            if rng.random() < self.p:
                affected[0] += 1
                return [] if self.mode == "drop" else [message, message]
            return [message]

        def start() -> None:
            for channel in channels:
                channel.fault_filter = fault_filter
            ctx.log(f"chan_{self.mode}_start")

        def stop() -> None:
            for channel in channels:
                if channel.fault_filter is fault_filter:
                    channel.fault_filter = None
            ctx.log(f"chan_{self.mode}_end", affected=affected[0])

        engine.schedule_at(self.at, start, "fault-chan-start")
        engine.schedule_at(self.at + self.duration, stop, "fault-chan-end")


class ClockJitterFault(FaultInjector):
    """Jitter the server's scan interval by ``[-amp, +amp]`` in a window."""

    kind = "clock-jitter"

    def __init__(self, at: int = 0, duration: int = 0, amp: int = 0):
        if duration <= 0:
            raise ValueError("clock jitter duration must be positive")
        if amp < 0:
            raise ValueError("clock jitter amplitude must be >= 0")
        self.at = at
        self.duration = duration
        self.amp = amp

    def params(self) -> Dict[str, Any]:
        return {"at": self.at, "duration": self.duration, "amp": self.amp}

    def install(self, ctx: FaultContext) -> None:
        if ctx.server is None:
            ctx.kernel.engine.schedule_at(
                self.at,
                lambda: ctx.log("clock_jitter_skipped", reason="no server"),
                "fault-jitter",
            )
            return
        server = ctx.server
        engine = ctx.kernel.engine
        rng = ctx.rng.get(f"clock-jitter:{self.at}")
        end = self.at + self.duration

        def jitter() -> int:
            now = engine.now
            if not (self.at <= now < end):
                return 0
            return rng.randint(-self.amp, self.amp)

        def start() -> None:
            server.interval_jitter = jitter
            ctx.log("clock_jitter_start", amp=self.amp)

        def stop() -> None:
            if server.interval_jitter is jitter:
                server.interval_jitter = None
            ctx.log("clock_jitter_end")

        engine.schedule_at(self.at, start, "fault-jitter-start")
        engine.schedule_at(end, stop, "fault-jitter-end")


class PreemptStormFault(FaultInjector):
    """Force-preempt every online processor every ``period`` in a window."""

    kind = "preempt-storm"

    def __init__(self, at: int = 0, duration: int = 0, period: int = 1000):
        if duration <= 0:
            raise ValueError("preempt storm duration must be positive")
        if period <= 0:
            raise ValueError("preempt storm period must be positive")
        self.at = at
        self.duration = duration
        self.period = period

    def params(self) -> Dict[str, Any]:
        return {"at": self.at, "duration": self.duration, "period": self.period}

    def install(self, ctx: FaultContext) -> None:
        kernel = ctx.kernel
        engine = kernel.engine
        end = self.at + self.duration
        bolts = [0]

        def bolt() -> None:
            for cpu in kernel.online_cpus():
                kernel.force_preempt(cpu)
            bolts[0] += 1

        def start() -> None:
            ctx.log("preempt_storm_start", period=self.period)
            bolt()
            engine.schedule_every(self.period, bolt, "fault-storm", until=end)
            engine.schedule_at(
                end,
                lambda: ctx.log("preempt_storm_end", bolts=bolts[0]),
                "fault-storm-end",
            )

        engine.schedule_at(self.at, start, "fault-storm-start")
