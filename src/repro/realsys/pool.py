"""A process pool whose worker count is dynamically controlled.

This is the paper's modified threads package on real OS processes:

* workers pull ``(task_id, fn, args)`` work items from a shared queue;
* **between tasks** -- the safe suspension point of Section 4.1 -- each
  worker compares the pool's current *target* with the number of
  non-suspended workers and suspends itself (parks on an Event) or wakes a
  suspended peer, exactly mirroring
  :meth:`repro.threads.package.ThreadsPackage._control_point`;
* suspension never drops below one runnable worker (starvation avoidance).

The target is set externally -- by a
:class:`~repro.realsys.controller.CentralController`, or directly by the
application via :meth:`ControlledPool.set_target`.

All coordination uses primitive shared state (Values, Events, Queues), no
Manager server, so the pool works with fork and spawn start methods alike.
"""

from __future__ import annotations

import multiprocessing as mp
import queue as queue_module
import time
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

#: Sentinel telling a worker to exit.
_POISON = ("__poison__", None, None)


def _worker_main(
    index: int,
    task_queue: "mp.JoinableQueue",
    result_queue: "mp.Queue",
    target: "mp.Value",
    runnable: "mp.Value",
    state_lock: "mp.Lock",
    suspended_stack: "mp.Queue",
    resume_events: Sequence["mp.Event"],
    shutting_down: "mp.Event",
    suspend_count: "mp.Value",
    resume_count: "mp.Value",
) -> None:
    """Worker process body.  Module-level so it is picklable under spawn."""
    my_event = resume_events[index]
    while True:
        # --- safe suspension point: between tasks ---------------------
        if not shutting_down.is_set():
            with state_lock:
                should_suspend = (
                    runnable.value > max(target.value, 1)
                )
                if should_suspend:
                    runnable.value -= 1
                    suspend_count.value += 1
                    my_event.clear()
                    suspended_stack.put(index)
            if should_suspend:
                my_event.wait()
            else:
                with state_lock:
                    if runnable.value < target.value:
                        try:
                            peer = suspended_stack.get_nowait()
                        except queue_module.Empty:
                            peer = None
                        if peer is not None:
                            runnable.value += 1
                            resume_count.value += 1
                            resume_events[peer].set()
        # --- dequeue and run one task ----------------------------------
        item = task_queue.get()
        try:
            task_id, fn, args = item
            if task_id == "__poison__":
                return
            try:
                result: Any = fn(*args)
                result_queue.put((task_id, True, result, index))
            except Exception as exc:  # noqa: BLE001 - report, don't die
                result_queue.put((task_id, False, repr(exc), index))
        finally:
            task_queue.task_done()


class ControlledPool:
    """A dynamically controllable pool of real worker processes.

    Usage::

        pool = ControlledPool(n_workers=4, name="fft")
        pool.start()
        pool.submit_many([(tasks.sum_squares, (10_000,))] * 32)
        pool.set_target(2)          # or let a CentralController do it
        results = pool.join_results(32)
        pool.shutdown()
    """

    def __init__(
        self,
        n_workers: int,
        name: str = "pool",
        ctx: Optional[Any] = None,
    ) -> None:
        if n_workers < 1:
            raise ValueError("n_workers must be >= 1")
        self.name = name
        self.n_workers = n_workers
        self._ctx = ctx or mp.get_context()
        self._task_queue: Optional[Any] = None
        self._result_queue: Optional[Any] = None
        self._workers: List[Any] = []
        self._target: Optional[Any] = None
        self._runnable: Optional[Any] = None
        self._state_lock: Optional[Any] = None
        self._suspended: Optional[Any] = None
        self._resume_events: List[Any] = []
        self._shutting_down: Optional[Any] = None
        self._suspend_count: Optional[Any] = None
        self._resume_count: Optional[Any] = None
        self._next_task_id = 0
        self._submitted = 0

    # -- lifecycle ---------------------------------------------------------

    def start(self) -> None:
        """Create the shared state and spawn the worker processes."""
        if self._workers:
            raise RuntimeError(f"pool {self.name!r} already started")
        ctx = self._ctx
        self._task_queue = ctx.JoinableQueue()
        self._result_queue = ctx.Queue()
        self._target = ctx.Value("i", self.n_workers)
        self._runnable = ctx.Value("i", self.n_workers)
        self._state_lock = ctx.Lock()
        self._suspended = ctx.Queue()
        self._resume_events = [ctx.Event() for _ in range(self.n_workers)]
        for event in self._resume_events:
            event.set()
        self._shutting_down = ctx.Event()
        self._suspend_count = ctx.Value("i", 0)
        self._resume_count = ctx.Value("i", 0)
        for index in range(self.n_workers):
            process = ctx.Process(
                target=_worker_main,
                args=(
                    index,
                    self._task_queue,
                    self._result_queue,
                    self._target,
                    self._runnable,
                    self._state_lock,
                    self._suspended,
                    self._resume_events,
                    self._shutting_down,
                    self._suspend_count,
                    self._resume_count,
                ),
                name=f"{self.name}-w{index}",
                daemon=True,
            )
            process.start()
            self._workers.append(process)

    def shutdown(self, timeout: float = 10.0) -> None:
        """Wake everyone, poison the queue, and join the workers."""
        if not self._workers:
            return
        self._shutting_down.set()
        # Wake any suspended workers so they can consume their poison.
        with self._state_lock:
            while True:
                try:
                    index = self._suspended.get_nowait()
                except queue_module.Empty:
                    break
                self._runnable.value += 1
                self._resume_events[index].set()
        for _ in self._workers:
            self._task_queue.put(_POISON)
        deadline = time.monotonic() + timeout
        for process in self._workers:
            process.join(max(0.0, deadline - time.monotonic()))
            if process.is_alive():
                process.terminate()
                process.join(1.0)
        self._workers = []

    # -- work submission -----------------------------------------------------

    def submit(self, fn: Callable, args: Tuple = ()) -> int:
        """Enqueue one task; returns its task id."""
        if not self._workers:
            raise RuntimeError(f"pool {self.name!r} is not running")
        task_id = self._next_task_id
        self._next_task_id += 1
        self._task_queue.put((task_id, fn, args))
        self._submitted += 1
        return task_id

    def submit_many(self, items: Sequence[Tuple[Callable, Tuple]]) -> List[int]:
        """Enqueue many ``(fn, args)`` items; returns their task ids."""
        return [self.submit(fn, args) for fn, args in items]

    def join_results(
        self, n_results: int, timeout: float = 60.0
    ) -> Dict[int, Any]:
        """Collect *n_results* completed task results (id -> value).

        Raises ``TimeoutError`` if they do not all arrive in time and
        ``RuntimeError`` if any task failed.
        """
        results: Dict[int, Any] = {}
        deadline = time.monotonic() + timeout
        while len(results) < n_results:
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                raise TimeoutError(
                    f"pool {self.name!r}: got {len(results)}/{n_results} "
                    "results before timeout"
                )
            try:
                task_id, ok, value, _worker = self._result_queue.get(
                    timeout=min(remaining, 0.5)
                )
            except queue_module.Empty:
                continue
            if not ok:
                raise RuntimeError(f"task {task_id} failed: {value}")
            results[task_id] = value
        return results

    # -- control interface -----------------------------------------------------

    def set_target(self, target: int) -> None:
        """Set the allowed number of runnable workers (the server's verdict).

        Suspension happens lazily at each worker's next safe point; a raise
        of the target wakes suspended peers immediately.
        """
        if target < 1:
            raise ValueError("target must be >= 1")
        self._target.value = min(target, self.n_workers)
        with self._state_lock:
            while self._runnable.value < self._target.value:
                try:
                    index = self._suspended.get_nowait()
                except queue_module.Empty:
                    break
                self._runnable.value += 1
                if self._resume_count is not None:
                    self._resume_count.value += 1
                self._resume_events[index].set()

    @property
    def target(self) -> int:
        return self._target.value if self._target is not None else self.n_workers

    @property
    def runnable_workers(self) -> int:
        """Workers currently not suspended by control."""
        return (
            self._runnable.value if self._runnable is not None else self.n_workers
        )

    @property
    def suspensions(self) -> int:
        """Times a worker parked itself at a safe suspension point.

        The real-system counterpart of the simulator's per-application
        ``suspensions`` statistic; the co-simulation oracle diffs the two.
        """
        return self._suspend_count.value if self._suspend_count is not None else 0

    @property
    def resumes(self) -> int:
        """Times a suspended worker was woken (by a peer or a target raise)."""
        return self._resume_count.value if self._resume_count is not None else 0

    @property
    def alive_workers(self) -> int:
        """Worker processes still alive on the OS (crash visibility)."""
        return sum(1 for process in self._workers if process.is_alive())

    @property
    def pending_tasks(self) -> int:
        """Approximate queued-but-unfinished task count."""
        if self._task_queue is None:
            return 0
        return self._task_queue.qsize()
