"""Picklable CPU-bound task functions for the real-process demonstrator.

Task functions must be importable top-level callables so that
``multiprocessing`` can ship them to worker processes on any start method
(fork, spawn, or forkserver).
"""

from __future__ import annotations

from typing import List, Tuple


def burn_cpu(iterations: int) -> int:
    """Pure CPU burn; returns a checksum so results are verifiable."""
    total = 0
    for i in range(iterations):
        total = (total * 31 + i) % 1_000_003
    return total


def sum_squares(n: int) -> int:
    """Sum of squares below *n* (cheap, deterministic)."""
    return sum(i * i for i in range(n))


def matmul_block(size: int) -> int:
    """A small dense matrix multiply on Python lists; returns a checksum."""
    a = [[(i + j) % 7 for j in range(size)] for i in range(size)]
    b = [[(i * j + 1) % 5 for j in range(size)] for i in range(size)]
    total = 0
    for i in range(size):
        row = a[i]
        for j in range(size):
            acc = 0
            for k in range(size):
                acc += row[k] * b[k][j]
            total = (total + acc) % 1_000_003
    return total


def merge_sorted(lists: Tuple[List[int], List[int]]) -> List[int]:
    """Merge two sorted lists (the sort application's merge step)."""
    left, right = lists
    merged: List[int] = []
    i = j = 0
    while i < len(left) and j < len(right):
        if left[i] <= right[j]:
            merged.append(left[i])
            i += 1
        else:
            merged.append(right[j])
            j += 1
    merged.extend(left[i:])
    merged.extend(right[j:])
    return merged
