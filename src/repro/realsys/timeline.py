"""Live runnable-worker timeline for real pools: Figure 5 on the host OS.

A :class:`TimelineSampler` polls each registered pool's runnable-worker
count on a daemon thread and records a step series per pool, so the
real-process demonstrator can print the same runnable-vs-time picture the
simulation produces for Figure 5.
"""

from __future__ import annotations

import threading
import time
from typing import Dict, List, Optional, Tuple

from repro.realsys.pool import ControlledPool


class TimelineSampler:
    """Sample pools' runnable-worker counts over wall-clock time."""

    def __init__(self, interval: float = 0.05) -> None:
        if interval <= 0:
            raise ValueError("interval must be positive")
        self.interval = interval
        self._pools: Dict[str, ControlledPool] = {}
        self._lock = threading.Lock()
        self._thread: Optional[threading.Thread] = None
        self._stop = threading.Event()
        self._t0: Optional[float] = None
        #: pool name -> list of (seconds-since-start, runnable) samples.
        self.samples: Dict[str, List[Tuple[float, int]]] = {}

    def watch(self, pool: ControlledPool) -> None:
        """Add a pool to the sampling set (before or after start)."""
        with self._lock:
            self._pools[pool.name] = pool
            self.samples.setdefault(pool.name, [])

    def start(self) -> None:
        if self._thread is not None:
            raise RuntimeError("sampler already started")
        self._t0 = time.monotonic()
        self._stop.clear()
        self._thread = threading.Thread(
            target=self._loop, name="timeline-sampler", daemon=True
        )
        self._thread.start()

    def stop(self) -> None:
        if self._thread is None:
            return
        self._stop.set()
        self._thread.join(timeout=5.0)
        self._thread = None

    def _loop(self) -> None:
        while not self._stop.wait(self.interval):
            self._sample_once()

    def _sample_once(self) -> None:
        now = time.monotonic() - (self._t0 or 0.0)
        with self._lock:
            for name, pool in self._pools.items():
                self.samples[name].append((now, pool.runnable_workers))

    def total_series(self) -> List[Tuple[float, int]]:
        """Summed runnable workers across pools, merged on sample index."""
        with self._lock:
            streams = [list(s) for s in self.samples.values()]
        if not streams:
            return []
        length = min(len(s) for s in streams)
        merged = []
        for index in range(length):
            t = streams[0][index][0]
            merged.append((t, sum(s[index][1] for s in streams)))
        return merged

    def render(self, width: int = 60) -> str:
        """A small ASCII table of the sampled timeline."""
        total = self.total_series()
        if not total:
            return "(no samples)"
        step = max(len(total) // width, 1)
        lines = ["t(s)   total  " + "  ".join(sorted(self.samples))]
        with self._lock:
            names = sorted(self.samples)
            streams = {name: list(self.samples[name]) for name in names}
        for index in range(0, len(total), step):
            t, total_count = total[index]
            per_pool = "  ".join(
                str(streams[name][index][1]) if index < len(streams[name]) else "-"
                for name in names
            )
            lines.append(f"{t:5.2f}  {total_count:5d}  {per_pool}")
        return "\n".join(lines)
