"""The centralized controller for real process pools.

This is the paper's central server, run against live OS processes: a
daemon thread that periodically partitions the host's processors among all
registered :class:`~repro.realsys.pool.ControlledPool` instances -- using
the *same* :func:`repro.core.policy.partition_processors` decision rule as
the simulated server -- and pushes each pool its target.

``reserve_cpus`` plays the role of the uncontrollable-application load the
paper's server subtracts (Section 5): CPUs the controller must leave for
the rest of the machine.
"""

from __future__ import annotations

import os
import threading
import time
from typing import Dict, List, Optional, Tuple

from repro.core.policy import partition_processors
from repro.realsys.pool import ControlledPool


class CentralController:
    """Periodically repartition host CPUs among registered pools."""

    def __init__(
        self,
        interval: float = 0.25,
        n_cpus: Optional[int] = None,
        reserve_cpus: int = 0,
    ) -> None:
        if interval <= 0:
            raise ValueError("interval must be positive")
        if reserve_cpus < 0:
            raise ValueError("reserve_cpus must be >= 0")
        self.interval = interval
        self.n_cpus = n_cpus if n_cpus is not None else (os.cpu_count() or 1)
        self.reserve_cpus = reserve_cpus
        self._pools: Dict[str, ControlledPool] = {}
        self._lock = threading.Lock()
        self._thread: Optional[threading.Thread] = None
        self._stop = threading.Event()
        self.updates = 0
        #: (wall time, {pool: target}) after each update, for inspection.
        self.history: List[Tuple[float, Dict[str, int]]] = []

    # -- registration ------------------------------------------------------

    def register(self, pool: ControlledPool) -> None:
        """Add a pool to the partition (the paper's 'register' message)."""
        with self._lock:
            if pool.name in self._pools:
                raise ValueError(f"pool name {pool.name!r} already registered")
            self._pools[pool.name] = pool
        self.update_once()

    def unregister(self, pool: ControlledPool) -> None:
        """Remove a pool (application exit)."""
        with self._lock:
            self._pools.pop(pool.name, None)
        self.update_once()

    # -- the decision ------------------------------------------------------

    def compute_targets(self) -> Dict[str, int]:
        """One partitioning decision over the registered pools."""
        with self._lock:
            totals = {
                name: pool.n_workers for name, pool in self._pools.items()
            }
        return partition_processors(self.n_cpus, self.reserve_cpus, totals)

    def update_once(self) -> Dict[str, int]:
        """Recompute and push targets immediately; returns the decision."""
        targets = self.compute_targets()
        with self._lock:
            for name, target in targets.items():
                pool = self._pools.get(name)
                if pool is not None:
                    pool.set_target(target)
        self.updates += 1
        self.history.append((time.monotonic(), dict(targets)))
        return targets

    # -- background loop -----------------------------------------------------

    def start(self) -> None:
        """Run the update loop on a daemon thread."""
        if self._thread is not None:
            raise RuntimeError("controller already started")
        self._stop.clear()
        self._thread = threading.Thread(
            target=self._loop, name="pc-controller", daemon=True
        )
        self._thread.start()

    def stop(self) -> None:
        """Stop the loop and join the thread."""
        if self._thread is None:
            return
        self._stop.set()
        self._thread.join(timeout=5.0)
        self._thread = None

    def _loop(self) -> None:
        while not self._stop.wait(self.interval):
            self.update_once()
