"""Process control on *real* operating-system processes.

Everything else in this repository simulates the paper's system; this
package demonstrates the mechanism live, on the host OS, using
``multiprocessing`` worker processes (Python threads cannot occupy multiple
processors because of the GIL, so real processes are the faithful
analogue of the paper's UMAX processes).

The pieces map one-to-one onto the paper's design:

- :class:`~repro.realsys.pool.ControlledPool` -- the modified threads
  package: worker processes pull tasks from a shared queue and suspend /
  resume themselves *between tasks* (the safe suspension point) to track a
  target count.
- :class:`~repro.realsys.controller.CentralController` -- the centralized
  server: it periodically partitions the host's CPUs among all registered
  pools using the same :func:`repro.core.policy.partition_processors`
  the simulated server uses.
- :mod:`~repro.realsys.tasks` -- picklable CPU-bound task functions.

See ``examples/real_process_control.py`` for a live run.
"""

from repro.realsys.pool import ControlledPool
from repro.realsys.controller import CentralController
from repro.realsys.timeline import TimelineSampler

__all__ = ["ControlledPool", "CentralController", "TimelineSampler"]
