"""The paper's contribution: centralized, dynamic process control.

- :func:`~repro.core.policy.partition_processors` -- the server's fair
  partitioning rule (Section 5): subtract uncontrollable load, divide the
  rest equally, cap at each application's process count, guarantee one.
- :class:`~repro.core.server.ProcessControlServer` -- the centralized
  user-level server process: periodically scans the process table,
  recomputes the partition, and publishes per-application targets that
  applications poll.
- The application-side half (polling, safe suspension, resumption) lives in
  :class:`repro.threads.package.ThreadsPackage`, because the paper embeds
  it in the threads package, transparently to applications.
"""

from repro.core.policy import partition_processors
from repro.core.server import ProcessControlServer

__all__ = ["partition_processors", "ProcessControlServer"]
