"""The paper's contribution: centralized, dynamic process control.

- :func:`~repro.core.policy.partition_processors` -- the server's fair
  partitioning rule (Section 5): subtract uncontrollable load, divide the
  rest equally, cap at each application's process count, guarantee one.
- :class:`~repro.core.allocation.AllocationPolicy` and friends -- the
  partitioning rule behind a typed protocol, with a registry
  (:func:`~repro.core.allocation.make_policy`) mirroring
  ``make_scheduler``: ``equal`` (the paper's rule), ``weighted``
  (priority shares), ``demand`` (backlog-capped feedback), plus
  :class:`~repro.core.allocation.SpaceAwarePolicy` wrapping the space
  partition scheduler.
- :class:`~repro.core.server.ProcessControlServer` -- the centralized
  user-level server process: periodically scans the process table, asks
  its policy to recompute the partition, and publishes per-application
  targets that applications poll.
- :class:`~repro.core.plane.ControlPlane` -- a thin router over N sharded
  servers, each owning a processor region; ``shards=1`` reproduces the
  single server bit-identically.
- The application-side half (polling, safe suspension, resumption) lives in
  :class:`repro.threads.package.ThreadsPackage`, because the paper embeds
  it in the threads package, transparently to applications.
"""

from repro.core.allocation import (
    POLICY_ENV_VAR,
    POLICY_NAMES,
    AllocationPolicy,
    AllocationRequest,
    DemandPolicy,
    EquipartitionPolicy,
    SpaceAwarePolicy,
    WeightedPolicy,
    make_policy,
)
from repro.core.plane import SHARDS_ENV_VAR, ControlPlane
from repro.core.policy import partition_processors
from repro.core.server import ProcessControlServer

__all__ = [
    "AllocationPolicy",
    "AllocationRequest",
    "ControlPlane",
    "DemandPolicy",
    "EquipartitionPolicy",
    "POLICY_ENV_VAR",
    "POLICY_NAMES",
    "ProcessControlServer",
    "SHARDS_ENV_VAR",
    "SpaceAwarePolicy",
    "WeightedPolicy",
    "make_policy",
    "partition_processors",
]
