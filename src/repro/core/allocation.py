"""Pluggable allocation policies: the server's decision rule, behind a
typed protocol.

The paper's Section 5 server bakes in one rule -- water-filled
equipartition.  This module splits that *policy* from the server's
*mechanism* (scanning the table, posting targets) the same way
``repro.workloads.schedulers`` splits kernel policies from the kernel:
a small protocol class, concrete instances, and a ``make_policy`` registry
mirroring ``make_scheduler``.

Policies:

* :class:`EquipartitionPolicy` (``"equal"``) -- the paper's rule verbatim:
  subtract uncontrollable load, water-fill the rest equally, cap at each
  application's process count, guarantee one.
* :class:`WeightedPolicy` (``"weighted"``) -- the paper's "given that all
  three have the same priority" aside, generalized: water-filling under
  relative priority shares.
* :class:`DemandPolicy` (``"demand"``) -- demand-aware feedback in the
  spirit of Dice & Kogan's concurrency restriction: each application's
  target is additionally capped at its *measured* task-queue backlog
  (reported by the threads package at registration and every poll), and
  the slack an idle-wide application cannot use water-fills to the
  applications that can.
* :class:`SLOPolicy` (``"slo"``) -- latency-objective feedback on top of
  the demand caps: service applications piggyback a latency-slowdown
  estimate and a tier tag on their polls, and interactive tenants whose
  slowdown exceeds the target get their water-filling weight boosted (up
  to a cap), so batch tenants absorb the slack.  Optional per-application
  processor floors are restored after water-filling.
* :class:`CompliancePolicy` (``"compliance"``) -- runtime-compliance
  feedback on top of the demand caps: adapters piggyback adoption-lag /
  residual-overshoot / structural-floor telemetry on their polls, and
  the policy charges processors a tenant never releases as uncontrolled
  load, stops growing such a tenant's grant, and discounts slow
  compliers' water-filling weights (uncontrolled load is the
  zero-compliance end of the same continuum).
* :class:`SpaceAwarePolicy` -- the Section 7 integration: when the kernel
  runs the ``partition`` space scheduler, each application's target is the
  size of its processor group, so a controlled application is not starved
  by greedy uncontrolled load the partition already isolates.  Not
  constructible by bare name (it needs the live scheduler instance).

Policies are pure unless marked ``stateful``: ``allocate`` maps an
:class:`AllocationRequest` snapshot to per-application targets, and a
stateless instance may serve several sharded servers.  Stateful policies
(cross-round feedback memory) override :meth:`AllocationPolicy.clone`,
and the scenario runner gives each shard its own clone -- the per-shard
weight tables the sharding work left open.
"""

from __future__ import annotations

import inspect
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Mapping, Optional, Tuple

from repro.core.policy import partition_processors

#: Environment knob consulted by ``run_scenario`` when the scenario leaves
#: ``policy`` unset (the experiments CLI sets it from ``--policy``).
POLICY_ENV_VAR = "REPRO_POLICY"

#: Environment knob holding a per-application weight table (the experiments
#: CLI sets it from ``--weights``); consulted by ``run_scenario`` when no
#: explicit policy wins the resolution.
WEIGHTS_ENV_VAR = "REPRO_WEIGHTS"


def parse_weights(spec: str) -> Dict[str, float]:
    """Parse a weight-table spec like ``"fft=2,sort=0.5"``.

    Each comma-separated entry is ``app_id=weight`` with a positive float
    weight; whitespace around entries is tolerated.  Raises ``ValueError``
    on malformed entries, duplicates, or non-positive weights.
    """
    weights: Dict[str, float] = {}
    for entry in spec.split(","):
        entry = entry.strip()
        if not entry:
            continue
        app_id, sep, raw = entry.partition("=")
        app_id = app_id.strip()
        if not sep or not app_id:
            raise ValueError(
                f"malformed weight entry {entry!r}; expected app=weight"
            )
        try:
            weight = float(raw)
        except ValueError:
            raise ValueError(
                f"weight for {app_id!r} is not a number: {raw.strip()!r}"
            ) from None
        if weight <= 0:
            raise ValueError(f"weight for {app_id!r} must be positive")
        if app_id in weights:
            raise ValueError(f"duplicate weight entry for {app_id!r}")
        weights[app_id] = weight
    if not weights:
        raise ValueError("empty weight table")
    return weights


@dataclass(frozen=True)
class AllocationRequest:
    """One round's input snapshot, as the server sees it.

    Attributes:
        n_processors: processors this server is responsible for (the whole
            machine, or one shard's region).
        uncontrolled_runnable: runnable processes of uncontrollable
            applications charged against this server's pool.
        app_totals: total (alive) process count per controllable
            application -- the hard cap on what each can use.
        demands: last task-queue backlog each application reported
            (queued + in-execution tasks); applications that never
            reported are absent, meaning "demand unknown".
        demand_reported_at: when each backlog figure was written (board
            timestamp); absent = never reported.  Lets policies age the
            telemetry instead of trusting a dead application's last word.
        qos: latency telemetry service applications piggyback on their
            polls: ``app_id -> (slowdown estimate, tier tag, reported
            at)``.  Slowdown is observed request latency over the
            application's nominal zero-load latency; applications that
            never reported are absent.
        published: the targets currently in force on the board (last
            round's decision), so a policy can see what each application
            was *asked* to run and compare it with what it reports.
        runnable: runnable process count per application, from the
            kernel census the server already scans.  The server-side
            ground truth for residual overshoot: ``runnable - published``
            is what a tenant is actually holding *right now*, while the
            board's compliance report only reflects its last safe point.
        compliance: runtime-compliance telemetry adapters piggyback on
            their polls: ``app_id ->`` a duck-typed
            :class:`repro.threads.compliance.ComplianceReport` (the core
            layer reads its fields via ``getattr`` and must not import
            the threads layer).  Applications that never reported are
            absent.
        now: the server's scan time, for aging the telemetry.
    """

    n_processors: int
    uncontrolled_runnable: int
    app_totals: Mapping[str, int]
    demands: Mapping[str, int] = field(default_factory=dict)
    demand_reported_at: Mapping[str, int] = field(default_factory=dict)
    qos: Mapping[str, Tuple[float, str, int]] = field(default_factory=dict)
    published: Mapping[str, int] = field(default_factory=dict)
    runnable: Mapping[str, int] = field(default_factory=dict)
    compliance: Mapping[str, Any] = field(default_factory=dict)
    now: int = 0


class AllocationPolicy:
    """Protocol for the server's partitioning rule.

    Implementations provide :meth:`allocate`; everything else (scan
    cadence, board posting, sharding) is the server's mechanism.  The
    contract mirrors :func:`~repro.core.policy.partition_processors`:
    every application in ``request.app_totals`` appears in the result with
    ``1 <= target <= total``.
    """

    #: Registry name (``make_policy(name)``); also used in reports.
    name: str = "policy"

    #: Whether the policy keeps cross-round feedback memory that must not
    #: be shared between sharded servers.  Shards see disjoint application
    #: sets, and a stateful policy prunes its memory against whatever set
    #: it saw last -- two shards sharing one instance would evict each
    #: other's entries every round.  Stateful policies override
    #: :meth:`clone`; the scenario runner hands each shard its own clone.
    stateful: bool = False

    def allocate(self, request: AllocationRequest) -> Dict[str, int]:
        """Map one snapshot to per-application runnable-process targets."""
        raise NotImplementedError

    def clone(self) -> "AllocationPolicy":
        """A same-configuration instance safe to hand another shard.

        Stateless policies return ``self``; stateful ones return a fresh
        instance with the same knobs and empty cross-round memory.
        """
        return self

    def describe(self) -> str:
        """Human-readable label for experiment reports."""
        return self.name

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{type(self).__name__} {self.describe()!r}>"


class EquipartitionPolicy(AllocationPolicy):
    """The paper's Section 5 rule: equal shares, water-filled."""

    name = "equal"

    def allocate(self, request: AllocationRequest) -> Dict[str, int]:
        return partition_processors(
            request.n_processors,
            request.uncontrolled_runnable,
            request.app_totals,
        )


class WeightedPolicy(AllocationPolicy):
    """Water-filling under relative priority shares.

    ``weights`` is a global priority table; applications it does not name
    default to weight 1.0, and entries naming applications that are not
    currently running are ignored (the raw ``partition_processors``
    function, by contrast, rejects unknown names -- the server knowingly
    holds weights for applications that come and go).
    """

    name = "weighted"

    def __init__(self, weights: Optional[Mapping[str, float]] = None) -> None:
        self.weights: Dict[str, float] = dict(weights) if weights else {}

    def allocate(self, request: AllocationRequest) -> Dict[str, int]:
        known = {
            app_id: weight
            for app_id, weight in self.weights.items()
            if app_id in request.app_totals
        }
        return partition_processors(
            request.n_processors,
            request.uncontrolled_runnable,
            request.app_totals,
            weights=known or None,
        )

    def describe(self) -> str:
        if not self.weights:
            return self.name
        shares = ",".join(
            f"{app}={weight:g}" for app, weight in sorted(self.weights.items())
        )
        return f"{self.name}({shares})"


class DemandPolicy(AllocationPolicy):
    """Demand-aware water-filling: never grant beyond measured backlog.

    An application whose task queue holds fewer tasks than it has worker
    processes cannot use its full equipartition share -- the extra workers
    would only busy-wait on the empty queue (the Section 2 point-2 waste).
    This policy caps each application's effective process count at its
    reported backlog (floored at one, the starvation guarantee), then
    water-fills, so the released slack flows to applications whose backlog
    can absorb it.  Applications that never reported keep their full cap:
    unknown demand is treated as unbounded, which degrades to
    equipartition and is exactly the pre-feedback behaviour.

    Two robustness knobs (both off by default, preserving bit-identical
    behaviour for existing runs):

    * ``smoothing`` -- EWMA coefficient in ``(0, 1]``.  Each round the
      policy tracks ``s = alpha*report + (1-alpha)*s`` per application and
      caps on the *smoothed* backlog (rounded up, so a single-task burst
      is never smoothed below one grantable slot).  Damps target jitter
      under bursty phase structure.  ``1.0`` is equivalent to no
      smoothing; ``None`` disables the tracker entirely.
    * ``report_ttl`` -- microseconds after which an unrefreshed backlog
      report stops being trusted: the application reverts to "demand
      unknown" (full cap) and its EWMA state is dropped.  Mirrors the
      threads package's stale-target TTL in the opposite direction, so a
      dead application's last backlog cannot pin machine shares forever.

    The EWMA tracker is the one place a policy keeps per-round state; it
    is keyed by application id and pruned as applications vanish, so a
    single instance still serves several sharded servers (shards see
    disjoint application sets).
    """

    name = "demand"

    def __init__(
        self,
        weights: Optional[Mapping[str, float]] = None,
        smoothing: Optional[float] = None,
        report_ttl: Optional[int] = None,
    ) -> None:
        if smoothing is not None and not 0.0 < smoothing <= 1.0:
            raise ValueError(
                f"demand smoothing must be in (0, 1], got {smoothing}"
            )
        if report_ttl is not None and report_ttl <= 0:
            raise ValueError(
                f"demand report_ttl must be positive, got {report_ttl}"
            )
        self.weights: Dict[str, float] = dict(weights) if weights else {}
        self.smoothing = smoothing
        self.report_ttl = report_ttl
        self._smoothed: Dict[str, float] = {}

    def _effective_demand(
        self, app_id: str, request: AllocationRequest
    ) -> Optional[int]:
        """The backlog figure to cap on, or ``None`` for "unknown"."""
        demand = request.demands.get(app_id)
        if demand is not None and self.report_ttl is not None:
            reported_at = request.demand_reported_at.get(app_id)
            if (
                reported_at is None
                or request.now - reported_at > self.report_ttl
            ):
                demand = None  # report went stale: back to unbounded
        if demand is None:
            self._smoothed.pop(app_id, None)
            return None
        if self.smoothing is None:
            return demand
        alpha = self.smoothing
        previous = self._smoothed.get(app_id)
        smoothed = (
            float(demand)
            if previous is None
            else alpha * demand + (1.0 - alpha) * previous
        )
        self._smoothed[app_id] = smoothed
        # Round up: a fractional smoothed backlog still needs a slot.
        return int(smoothed) + (smoothed > int(smoothed))

    def allocate(self, request: AllocationRequest) -> Dict[str, int]:
        for app_id in list(self._smoothed):
            if app_id not in request.app_totals:
                del self._smoothed[app_id]
        caps: Dict[str, int] = {}
        for app_id, total in request.app_totals.items():
            demand = self._effective_demand(app_id, request)
            if demand is None:
                caps[app_id] = total
            else:
                caps[app_id] = max(1, min(total, demand))
        known = {
            app_id: weight
            for app_id, weight in self.weights.items()
            if app_id in caps
        }
        return partition_processors(
            request.n_processors,
            request.uncontrolled_runnable,
            caps,
            weights=known or None,
        )

    def describe(self) -> str:
        knobs = []
        if self.smoothing is not None:
            knobs.append(f"ewma={self.smoothing:g}")
        if self.report_ttl is not None:
            knobs.append(f"report_ttl={self.report_ttl}us")
        return f"{self.name}({','.join(knobs)})" if knobs else self.name


#: Tier tag carried in QoS reports that marks a latency-sensitive tenant
#: (mirrors ``repro.workloads.service.TIER_INTERACTIVE``; duplicated here
#: because the core layer must not import the workloads layer).
_INTERACTIVE_TIER = "interactive"


def _restore_floors(
    targets: Dict[str, int], effective: Mapping[str, int]
) -> Dict[str, int]:
    """Raise each floored application to its *effective* floor after
    water-filling, moving processors from the applications with the most
    headroom so the total grant is preserved.  Shared by the SLO policy's
    reservation floors and the compliance policy's structural runtime
    floors; mutates and returns *targets*."""
    for app_id in sorted(effective):
        while targets[app_id] < effective[app_id]:
            donors = [
                other
                for other in targets
                if other != app_id
                and targets[other] > max(1, effective.get(other, 1))
            ]
            if not donors:
                break  # no headroom anywhere: floors oversubscribed
            donor = max(donors, key=lambda other: (targets[other], other))
            targets[donor] -= 1
            targets[app_id] += 1
    return targets


class SLOPolicy(DemandPolicy):
    """Latency-objective feedback: boost starving interactive tenants.

    Extends the demand caps with the QoS reverse channel: service
    applications piggyback ``(slowdown, tier)`` on their polls, where
    slowdown is observed request latency over the tenant's nominal
    zero-load latency.  Each round, an *interactive* tenant whose fresh
    slowdown estimate exceeds ``target_slowdown`` has its water-filling
    weight multiplied by the (EWMA-smoothed) pressure ratio
    ``slowdown / target_slowdown``, capped at ``boost_cap`` -- so a
    tenant missing its objective pulls processors from tenants that are
    not, and batch tenants (weight never boosted) absorb the slack.
    Tenants with no fresh QoS report keep their base weight, which
    degrades to plain demand-aware behaviour.

    Interactive tenants are exempt from the demand cap entirely: a
    backlog snapshot taken between open arrivals says nothing about the
    work the next instant will bring, and capping an open-arrival tenant
    at that snapshot starves it exactly when its queue is about to grow
    (the threads package announces a tenant's tier at registration, so
    the exemption holds from the first round).  Batch tenants and
    ordinary applications keep the demand caps -- their backlog is their
    demand, and the slack a drained batch job releases is what the boost
    redistributes.

    ``floors`` optionally names hard per-application processor minimums
    (e.g. a paid tier's reservation).  Floors are restored *after*
    water-filling by moving processors from the applications with the
    most headroom, preserving the total grant.  Guarantee: every target
    is at least 1 always; and whenever there is no uncontrolled load and
    the machine has room for every floor (counting one processor for
    each unfloored application), every application meets its effective
    floor ``min(floor, own process count)``.

    The pressure EWMA is cross-round feedback memory, so the policy is
    ``stateful``: the scenario runner hands each shard its own
    :meth:`clone` rather than sharing one instance -- the per-shard
    weight tables realized.
    """

    name = "slo"
    stateful = True

    def __init__(
        self,
        weights: Optional[Mapping[str, float]] = None,
        smoothing: Optional[float] = None,
        report_ttl: Optional[int] = None,
        target_slowdown: float = 2.0,
        boost_cap: float = 8.0,
        pressure_smoothing: float = 0.5,
        floors: Optional[Mapping[str, int]] = None,
    ) -> None:
        super().__init__(
            weights=weights, smoothing=smoothing, report_ttl=report_ttl
        )
        if target_slowdown <= 0:
            raise ValueError(
                f"target_slowdown must be positive, got {target_slowdown}"
            )
        if boost_cap < 1.0:
            raise ValueError(f"boost_cap must be >= 1, got {boost_cap}")
        if not 0.0 < pressure_smoothing <= 1.0:
            raise ValueError(
                f"pressure_smoothing must be in (0, 1], got {pressure_smoothing}"
            )
        self.floors: Dict[str, int] = dict(floors) if floors else {}
        for app_id, floor in self.floors.items():
            if floor < 1:
                raise ValueError(
                    f"floor for {app_id!r} must be >= 1, got {floor}"
                )
        self.target_slowdown = target_slowdown
        self.boost_cap = boost_cap
        self.pressure_smoothing = pressure_smoothing
        self._pressure: Dict[str, float] = {}

    def clone(self) -> "SLOPolicy":
        return type(self)(
            weights=self.weights,
            smoothing=self.smoothing,
            report_ttl=self.report_ttl,
            target_slowdown=self.target_slowdown,
            boost_cap=self.boost_cap,
            pressure_smoothing=self.pressure_smoothing,
            floors=self.floors,
        )

    def _fresh_qos(
        self, app_id: str, request: AllocationRequest
    ) -> Optional[Tuple[float, str]]:
        """The usable QoS report for *app_id*, or ``None`` when absent/stale."""
        entry = request.qos.get(app_id)
        if entry is None:
            return None
        slowdown, tier, reported_at = entry
        if (
            self.report_ttl is not None
            and request.now - reported_at > self.report_ttl
        ):
            return None
        return slowdown, tier

    def _boosted_weights(
        self, request: AllocationRequest
    ) -> Tuple[Optional[Dict[str, float]], set]:
        """Per-app water-filling weights and the interactive-tenant set."""
        weights: Dict[str, float] = {}
        interactive = set()
        for app_id in request.app_totals:
            weight = self.weights.get(app_id, 1.0)
            qos = self._fresh_qos(app_id, request)
            if qos is None:
                self._pressure.pop(app_id, None)
            else:
                slowdown, tier = qos
                if tier == _INTERACTIVE_TIER:
                    interactive.add(app_id)
                    pressure = slowdown / self.target_slowdown
                    alpha = self.pressure_smoothing
                    previous = self._pressure.get(app_id)
                    if previous is not None:
                        pressure = alpha * pressure + (1.0 - alpha) * previous
                    self._pressure[app_id] = pressure
                    weight *= min(self.boost_cap, max(1.0, pressure))
            weights[app_id] = weight
        if all(weight == 1.0 for weight in weights.values()):
            # Equal weights: take the unweighted fill's exact tie-breaks.
            return None, interactive
        return weights, interactive

    def _apply_floors(
        self, targets: Dict[str, int], request: AllocationRequest
    ) -> Dict[str, int]:
        if not self.floors:
            return targets
        effective = {
            app_id: min(floor, request.app_totals[app_id])
            for app_id, floor in self.floors.items()
            if app_id in targets
        }
        return _restore_floors(targets, effective)

    def allocate(self, request: AllocationRequest) -> Dict[str, int]:
        for app_id in list(self._pressure):
            if app_id not in request.app_totals:
                del self._pressure[app_id]
        weights, interactive = self._boosted_weights(request)
        caps: Dict[str, int] = {}
        for app_id, total in request.app_totals.items():
            if app_id in interactive:
                # Open arrivals: the snapshot backlog is not a demand
                # signal, so interactive tenants are never demand-capped.
                self._smoothed.pop(app_id, None)
                demand = None
            else:
                demand = self._effective_demand(app_id, request)
            if demand is None:
                caps[app_id] = total
            else:
                caps[app_id] = max(1, min(total, demand))
            # A floor raises the cap so the capacity it reserves exists.
            floor = self.floors.get(app_id)
            if floor is not None:
                caps[app_id] = max(caps[app_id], min(floor, total))
        targets = partition_processors(
            request.n_processors,
            request.uncontrolled_runnable,
            caps,
            weights=weights,
        )
        return self._apply_floors(targets, request)

    def describe(self) -> str:
        knobs = [f"target={self.target_slowdown:g}x"]
        if self.smoothing is not None:
            knobs.append(f"ewma={self.smoothing:g}")
        if self.report_ttl is not None:
            knobs.append(f"report_ttl={self.report_ttl}us")
        if self.floors:
            floors = ";".join(
                f"{app}>={floor}" for app, floor in sorted(self.floors.items())
            )
            knobs.append(floors)
        return f"{self.name}({','.join(knobs)})"


class CompliancePolicy(DemandPolicy):
    """Compliance-aware water-filling: grant real processors, not virtual.

    The equipartition arithmetic assumes every application actually runs
    the target it is given.  A runtime that complies *slowly* (a
    fork-join package that can only shrink at the next phase barrier) or
    *partially* (a pipeline whose structural floor of one worker per
    stage exceeds its grant) keeps extra workers runnable, and granting
    those processors to someone else just recreates the Section 2
    time-slicing the control server exists to remove.  An uncontrolled
    tenant is the limit of that continuum -- permanently runnable,
    never adopting -- and the paper already *charges* it against the
    pool instead of allocating around it.  This policy extends the same
    treatment to the partially-compliant middle, using the
    :class:`~repro.threads.compliance.ComplianceReport` telemetry the
    runtime adapters piggyback on their polls:

    * **charge residual overshoot**: workers a tenant reports runnable
      above its published target (beyond its structural floor) are load
      the machine already carries; they are added (rounded up) to the
      uncontrolled count before water-filling, so compliant tenants are
      handed processors that exist rather than shares of an
      overcommitted machine;
    * **stop re-granting**: a tenant holding such *non-structural*
      overshoot is capped at its currently-published target -- its
      grant can shrink with the pool but never grows while it sits on
      processors it was already asked to release;
    * **discount slow compliers**: a tenant whose last adoption lag
      exceeded ``lag_grace`` has its water-filling weight divided by the
      pressure ratio ``lag / lag_grace`` (capped at ``discount_cap``),
      shifting share toward runtimes that hand processors back promptly;
    * **respect declared floors**: overshoot up to a runtime's declared
      structural floor (``min(floor, process count)``) is never capped
      or discounted -- the pipeline cannot run below one worker per
      stage, and punishing physics only oscillates.  The floor is
      instead *reserved*: the tenant's cap rises to it and the target is
      restored to it after water-filling (the SLO policy's reservation
      mechanism), so the published target moves to where the runtime can
      actually follow it and the capacity it occupies is accounted
      inside the fill rather than double-charged.

    Tenants that report no compliance telemetry (or whose report went
    stale past ``report_ttl``) are treated like prompt compliers, which
    degrades to plain demand-aware behaviour -- exactly how unknown
    demand degrades to equipartition.  The policy keeps no cross-round
    state of its own, so a single instance may serve several shards.
    """

    name = "compliance"

    #: Default adoption-lag grace: the paper's 6-second poll interval --
    #: a runtime cannot be expected to adopt faster than it polls.
    DEFAULT_LAG_GRACE = 6_000_000

    def __init__(
        self,
        weights: Optional[Mapping[str, float]] = None,
        smoothing: Optional[float] = None,
        report_ttl: Optional[int] = None,
        lag_grace: int = DEFAULT_LAG_GRACE,
        discount_cap: float = 4.0,
    ) -> None:
        super().__init__(
            weights=weights, smoothing=smoothing, report_ttl=report_ttl
        )
        if lag_grace <= 0:
            raise ValueError(f"lag_grace must be positive, got {lag_grace}")
        if discount_cap < 1.0:
            raise ValueError(f"discount_cap must be >= 1, got {discount_cap}")
        self.lag_grace = lag_grace
        self.discount_cap = discount_cap

    def _fresh_report(
        self, app_id: str, request: AllocationRequest
    ) -> Optional[Any]:
        """The usable compliance report for *app_id* (duck-typed), or
        ``None`` when the tenant never reported or the report went stale."""
        report = request.compliance.get(app_id)
        if report is None:
            return None
        if self.report_ttl is not None:
            reported_at = getattr(report, "reported_at", None)
            if (
                reported_at is None
                or request.now - reported_at > self.report_ttl
            ):
                return None
        return report

    def allocate(self, request: AllocationRequest) -> Dict[str, int]:
        for app_id in list(self._smoothed):
            if app_id not in request.app_totals:
                del self._smoothed[app_id]
        # Demand caps, exactly as DemandPolicy computes them.
        caps: Dict[str, int] = {}
        for app_id, total in request.app_totals.items():
            demand = self._effective_demand(app_id, request)
            if demand is None:
                caps[app_id] = total
            else:
                caps[app_id] = max(1, min(total, demand))
        weights = {
            app_id: weight
            for app_id, weight in self.weights.items()
            if app_id in caps
        }
        charged = 0
        floors: Dict[str, int] = {}
        for app_id, total in request.app_totals.items():
            report = self._fresh_report(app_id, request)
            if report is None:
                continue
            floor = min(max(1, int(getattr(report, "floor", 1))), total)
            if floor > 1:
                # Structural floor: reserve the capacity it will occupy
                # regardless, and restore it after water-filling.
                floors[app_id] = floor
                caps[app_id] = max(caps[app_id], floor)
            published = request.published.get(app_id)
            overshoot = float(getattr(report, "overshoot", 0.0) or 0.0)
            runnable = request.runnable.get(app_id)
            if published is not None and runnable is not None:
                # The kernel census is fresher than the board report: a
                # deferred-adoption runtime only samples its overshoot at
                # safe points, so mid-phase holdouts never show up there.
                overshoot = max(overshoot, float(runnable - published))
            structural = (
                max(0, floor - published) if published is not None else floor
            )
            excess = max(0.0, overshoot - structural)
            if excess > 0.0 and published is not None:
                # Workers held above the published grant (and above the
                # structural floor, which the reservation below already
                # accounts for) are load the rest of the machine sees;
                # charge them like uncontrolled processes (rounded up: a
                # fractional holdout still occupies a processor) and
                # never grow the grant of a tenant sitting on processors
                # it was asked to free.
                charged += int(excess) + (excess > int(excess))
                caps[app_id] = min(caps[app_id], max(published, floor))
            lag = getattr(report, "adoption_lag_us", None)
            if lag is not None and lag > self.lag_grace:
                penalty = min(self.discount_cap, lag / self.lag_grace)
                weights[app_id] = weights.get(app_id, 1.0) / penalty
        if all(weight == 1.0 for weight in weights.values()):
            # Equal weights: take the unweighted fill's exact tie-breaks.
            weights = None  # type: ignore[assignment]
        targets = partition_processors(
            request.n_processors,
            request.uncontrolled_runnable + charged,
            caps,
            weights=weights or None,
        )
        return _restore_floors(targets, floors)

    def describe(self) -> str:
        knobs = [f"grace={self.lag_grace}us", f"cap={self.discount_cap:g}"]
        if self.smoothing is not None:
            knobs.append(f"ewma={self.smoothing:g}")
        if self.report_ttl is not None:
            knobs.append(f"report_ttl={self.report_ttl}us")
        return f"{self.name}({','.join(knobs)})"


class SpaceAwarePolicy(AllocationPolicy):
    """Targets from the space partition's processor groups (Section 7).

    Wraps a scheduler exposing ``partition_of(app_id) -> [cpu, ...]``
    (:class:`~repro.kernel.scheduler.partition.SpacePartitionScheduler`):
    each application's target is the size of its group, capped by its
    process count and floored at one.  This replaces the untyped
    ``partition_policy`` escape hatch the server used to carry.
    """

    name = "space"

    def __init__(self, scheduler) -> None:
        if not hasattr(scheduler, "partition_of"):
            raise TypeError(
                "SpaceAwarePolicy needs a scheduler with partition_of(), "
                f"got {type(scheduler).__name__}"
            )
        self.scheduler = scheduler

    def allocate(self, request: AllocationRequest) -> Dict[str, int]:
        return {
            app_id: max(1, min(total, len(self.scheduler.partition_of(app_id))))
            for app_id, total in request.app_totals.items()
        }


_FACTORIES: Dict[str, Callable[..., AllocationPolicy]] = {
    "equal": EquipartitionPolicy,
    "weighted": WeightedPolicy,
    "demand": DemandPolicy,
    "slo": SLOPolicy,
    "compliance": CompliancePolicy,
}

#: Names accepted by :func:`make_policy` / ``Scenario.policy`` / ``--policy``
#: (``"space"`` is additionally accepted by the scenario runner, which owns
#: the live partition scheduler the policy must wrap).
POLICY_NAMES = tuple(sorted(_FACTORIES))


def make_policy(name: str, **kwargs) -> AllocationPolicy:
    """Build a fresh allocation policy by name (mirrors ``make_scheduler``).

    ``kwargs`` are forwarded to the policy constructor (e.g.
    ``make_policy("weighted", weights={"a": 2.0})``).  Unknown keywords
    raise a ``ValueError`` naming the offending keyword and the ones the
    policy actually accepts, so a typo'd experiment knob fails loudly
    instead of surfacing as a bare ``TypeError`` deep in a sweep.
    """
    factory = _FACTORIES.get(name)
    if factory is None:
        raise ValueError(
            f"unknown allocation policy {name!r}; valid names: "
            f"{', '.join(POLICY_NAMES)}"
        )
    accepted = inspect.signature(factory).parameters
    for keyword in kwargs:
        if keyword not in accepted:
            valid = ", ".join(sorted(accepted)) or "(none)"
            raise ValueError(
                f"policy {name!r} got an unknown keyword {keyword!r}; "
                f"accepted keywords: {valid}"
            )
    return factory(**kwargs)
