"""Processor partitioning policy (the server's decision rule, Section 5).

"[The server] first determines the number of runnable processes not
belonging to controllable applications.  It then subtracts this from the
number of processors in the system, to determine the number of processors
available ...  It then partitions these processors among the applications
fairly ...  Special provisions are made so that an application will not be
'assigned' more processors than it can use ...  It also ensures that each
application has at least one runnable process to avoid starvation."

The fair division is a water-filling allocation: applications are
considered in increasing order of their process-count cap, each taking
``min(cap, remaining // apps_left)`` (but at least one), so capacity an
application cannot use flows to the applications that can.  The worked
example of Section 5 (8 processors, 2 uncontrollable processes, three
applications with 2, 6 and 6 processes) yields 2/2/2, exactly as the paper
describes.
"""

from __future__ import annotations

from typing import Dict, Mapping, Optional, Tuple


def partition_processors(
    n_processors: int,
    uncontrolled_runnable: int,
    app_totals: Mapping[str, int],
    weights: Optional[Mapping[str, float]] = None,
) -> Dict[str, int]:
    """Compute per-application runnable-process targets.

    Args:
        n_processors: processors in the machine.
        uncontrolled_runnable: runnable processes of uncontrollable
            applications (subtracted from the pool).
        app_totals: total (alive) process count per controllable
            application -- the cap on what each can use.
        weights: optional relative priorities; equal weights reproduce the
            paper's policy ("given that all three have the same priority,
            each of them gets two processors").  Every key must name an
            application in *app_totals* (unknown names raise
            ``ValueError``); applications without a weight default to 1.0.

    Returns:
        target runnable-process count per application; every application
        gets at least 1 (starvation avoidance) and at most its total.
    """
    if n_processors < 1:
        raise ValueError("n_processors must be >= 1")
    if uncontrolled_runnable < 0:
        raise ValueError("uncontrolled_runnable must be >= 0")
    for app_id, total in app_totals.items():
        if total < 1:
            raise ValueError(f"application {app_id!r} has no processes")
    if weights is not None:
        unknown = sorted(set(weights) - set(app_totals))
        if unknown:
            # A weight naming no application is a caller bug (a typo'd app
            # id would otherwise silently fall back to equal shares).
            # Callers with long-lived priority tables filter first -- see
            # repro.core.allocation.WeightedPolicy.
            raise ValueError(
                f"weights name unknown application(s): {', '.join(map(repr, unknown))}"
            )
    if not app_totals:
        return {}

    available = max(n_processors - uncontrolled_runnable, 0)
    if weights is None:
        weight_of = {app_id: 1.0 for app_id in app_totals}
    else:
        weight_of = {app_id: float(weights.get(app_id, 1.0)) for app_id in app_totals}
        for app_id, weight in weight_of.items():
            if weight <= 0:
                raise ValueError(f"weight for {app_id!r} must be positive")

    # Water-filling: visit applications in increasing cap order (per unit
    # of weight) so unused share flows to larger applications; ties break
    # on the application id for determinism.
    order = sorted(
        app_totals, key=lambda a: (app_totals[a] / weight_of[a], a)
    )
    targets: Dict[str, int] = {}
    remaining = available
    weight_left = sum(weight_of.values())
    for app_id in order:
        cap = app_totals[app_id]
        fair = int(remaining * weight_of[app_id] / weight_left) if weight_left else 0
        give = min(cap, max(1, fair))
        targets[app_id] = give
        remaining = max(remaining - give, 0)
        weight_left -= weight_of[app_id]

    # Distribute any leftover (from integer truncation) to applications
    # still below their cap, smallest allocation first.
    while remaining > 0:
        candidates = [a for a in order if targets[a] < app_totals[a]]
        if not candidates:
            break
        candidates.sort(key=lambda a: (targets[a] / weight_of[a], a))
        targets[candidates[0]] += 1
        remaining -= 1
    return targets


class IncrementalWaterFiller:
    """Equal-weight water-filling against a *persistent* sorted-cap
    structure, so one application arriving, leaving, or changing its
    process count costs O(log C) instead of re-partitioning the world.

    :func:`partition_processors` recomputes the whole allocation from a
    fresh snapshot every round -- O(n log n) per scan, which the paper's
    16-processor machine never notices but a 1024-CPU / 10k-application
    deployment pays on every control-server interval.  This structure
    maintains the same allocation incrementally:

    * a Fenwick (binary indexed) tree over cap *values* holds, for every
      process-count cap ``c``, how many applications sit at ``c`` and the
      sum of their caps.  :meth:`set_cap` / :meth:`remove` are O(log C)
      where ``C`` is the largest cap ever seen;
    * :meth:`targets` finds the water level ``L`` -- the largest level
      with ``sum(min(cap_i, L)) <= available`` -- by binary search over
      Fenwick prefix sums (O(log^2 C), no sorting), then hands the
      truncation remainder to the lexicographically-last applications
      above the level, which is provably where the batch loop's floor
      arithmetic deposits it.

    The result is **bit-identical** to ``partition_processors(...,
    weights=None)`` on the same inputs; ``tests/test_incremental_filler.py``
    drives the two against each other over randomized churn (the
    incremental-vs-batch oracle), and the control server re-checks every
    round under ``REPRO_SANITIZE=1``.  Weighted allocations keep the batch
    path: their water levels move in weight-space where the integer cap
    multiset no longer sorts the visit order.
    """

    __slots__ = ("_caps", "_ids_by_cap", "_cnt", "_sum", "_limit", "_n", "_total")

    def __init__(self) -> None:
        self._caps: Dict[str, int] = {}
        #: cap value -> sorted application ids at that cap (bisect-managed).
        self._ids_by_cap: Dict[int, list] = {}
        # 1-based Fenwick trees over cap values.
        self._limit = 1
        self._cnt = [0, 0]
        self._sum = [0, 0]
        self._n = 0
        self._total = 0

    def __len__(self) -> int:
        return self._n

    def __contains__(self, app_id: str) -> bool:
        return app_id in self._caps

    def caps(self) -> Dict[str, int]:
        """Current cap per application (a copy; oracle/diagnostic use)."""
        return dict(self._caps)

    # -- Fenwick plumbing ------------------------------------------------

    def _grow(self, cap: int) -> None:
        limit = self._limit
        while limit < cap:
            limit *= 2
        self._limit = limit
        self._cnt = cnt = [0] * (limit + 1)
        self._sum = sm = [0] * (limit + 1)
        for value, ids in self._ids_by_cap.items():
            k = len(ids)
            if not k:
                continue
            i = value
            dc, ds = k, value * k
            while i <= limit:
                cnt[i] += dc
                sm[i] += ds
                i += i & -i

    def _add(self, cap: int, dc: int, ds: int) -> None:
        if cap > self._limit:
            self._grow(cap)
        cnt, sm, limit = self._cnt, self._sum, self._limit
        i = cap
        while i <= limit:
            cnt[i] += dc
            sm[i] += ds
            i += i & -i

    def _prefix(self, cap: int) -> Tuple[int, int]:
        """(applications, cap mass) over cap values ``<= cap``."""
        cnt, sm = self._cnt, self._sum
        i = cap if cap < self._limit else self._limit
        c = s = 0
        while i > 0:
            c += cnt[i]
            s += sm[i]
            i -= i & -i
        return c, s

    # -- Mutations (the O(log) hot path) ---------------------------------

    def set_cap(self, app_id: str, cap: int) -> None:
        """Insert *app_id* or move it to a new process-count cap."""
        if cap < 1:
            raise ValueError(f"application {app_id!r} has no processes")
        from bisect import insort

        old = self._caps.get(app_id)
        if old == cap:
            return
        if old is not None:
            ids = self._ids_by_cap[old]
            ids.remove(app_id)
            self._add(old, -1, -old)
            self._n -= 1
            self._total -= old
        self._caps[app_id] = cap
        # Fenwick first: _add may grow the tree, and _grow rebuilds from
        # the id buckets -- the new entry must not be in them yet or it
        # would be counted twice.
        self._add(cap, 1, cap)
        bucket = self._ids_by_cap.get(cap)
        if bucket is None:
            self._ids_by_cap[cap] = [app_id]
        else:
            insort(bucket, app_id)
        self._n += 1
        self._total += cap

    def remove(self, app_id: str) -> bool:
        """Forget *app_id*; returns False if it was not tracked."""
        cap = self._caps.pop(app_id, None)
        if cap is None:
            return False
        self._ids_by_cap[cap].remove(app_id)
        self._add(cap, -1, -cap)
        self._n -= 1
        self._total -= cap
        return True

    # -- The allocation --------------------------------------------------

    def level(self, available: int) -> int:
        """The water level for *available* processors: the largest ``L >= 1``
        with ``sum(min(cap_i, L)) <= available``, or 0 when even one
        processor per application overcommits (the starvation floor)."""
        if self._n == 0 or available < self._n:
            return 0
        lo, hi = 1, self._limit
        while lo < hi:  # invariant: S(lo) <= available
            mid = (lo + hi + 1) // 2
            c, s = self._prefix(mid)
            if s + mid * (self._n - c) <= available:
                lo = mid
            else:
                hi = mid - 1
        return lo

    def targets(self, n_processors: int, uncontrolled_runnable: int) -> Dict[str, int]:
        """Per-application targets, identical to ``partition_processors``
        with equal weights on the same (caps, pool) snapshot."""
        if self._n == 0:
            return {}
        available = n_processors - uncontrolled_runnable
        if available < 0:
            available = 0
        caps = self._caps
        level = self.level(available)
        if level == 0:
            # Overcommitted: the >=1 floor hands every application exactly
            # one (caps are >= 1 by construction).
            return {app_id: 1 for app_id in caps}
        c_at, s_at = self._prefix(level)
        above = self._n - c_at
        extras = available - (s_at + level * above)
        bonus_cap = 0
        bonus_ids: Tuple[str, ...] = ()
        if extras > 0 and above > 0:
            # The batch loop's floor-division remainders accrete on the
            # *last* applications in ascending (cap, id) order.  Find the
            # smallest threshold T whose strictly-above population fits in
            # the remainder; full cap-classes above T all take +1, and the
            # partial class at T contributes its largest ids.
            lo, hi = level, self._limit
            while lo < hi:  # find min T with count(cap > T) <= extras
                mid = (lo + hi) // 2
                if self._n - self._prefix(mid)[0] <= extras:
                    hi = mid
                else:
                    lo = mid + 1
            bonus_cap = lo
            partial = extras - (self._n - self._prefix(lo)[0])
            if partial > 0:
                ids = self._ids_by_cap[lo]
                bonus_ids = tuple(ids[len(ids) - partial :])
        out: Dict[str, int] = {}
        bonus_set = set(bonus_ids)
        for app_id, cap in caps.items():
            if cap <= level:
                out[app_id] = cap
            elif cap > bonus_cap and bonus_cap:
                out[app_id] = level + 1
            elif cap == bonus_cap and app_id in bonus_set:
                out[app_id] = level + 1
            else:
                out[app_id] = level
        return out
