"""Processor partitioning policy (the server's decision rule, Section 5).

"[The server] first determines the number of runnable processes not
belonging to controllable applications.  It then subtracts this from the
number of processors in the system, to determine the number of processors
available ...  It then partitions these processors among the applications
fairly ...  Special provisions are made so that an application will not be
'assigned' more processors than it can use ...  It also ensures that each
application has at least one runnable process to avoid starvation."

The fair division is a water-filling allocation: applications are
considered in increasing order of their process-count cap, each taking
``min(cap, remaining // apps_left)`` (but at least one), so capacity an
application cannot use flows to the applications that can.  The worked
example of Section 5 (8 processors, 2 uncontrollable processes, three
applications with 2, 6 and 6 processes) yields 2/2/2, exactly as the paper
describes.
"""

from __future__ import annotations

from typing import Dict, Mapping, Optional


def partition_processors(
    n_processors: int,
    uncontrolled_runnable: int,
    app_totals: Mapping[str, int],
    weights: Optional[Mapping[str, float]] = None,
) -> Dict[str, int]:
    """Compute per-application runnable-process targets.

    Args:
        n_processors: processors in the machine.
        uncontrolled_runnable: runnable processes of uncontrollable
            applications (subtracted from the pool).
        app_totals: total (alive) process count per controllable
            application -- the cap on what each can use.
        weights: optional relative priorities; equal weights reproduce the
            paper's policy ("given that all three have the same priority,
            each of them gets two processors").  Every key must name an
            application in *app_totals* (unknown names raise
            ``ValueError``); applications without a weight default to 1.0.

    Returns:
        target runnable-process count per application; every application
        gets at least 1 (starvation avoidance) and at most its total.
    """
    if n_processors < 1:
        raise ValueError("n_processors must be >= 1")
    if uncontrolled_runnable < 0:
        raise ValueError("uncontrolled_runnable must be >= 0")
    for app_id, total in app_totals.items():
        if total < 1:
            raise ValueError(f"application {app_id!r} has no processes")
    if weights is not None:
        unknown = sorted(set(weights) - set(app_totals))
        if unknown:
            # A weight naming no application is a caller bug (a typo'd app
            # id would otherwise silently fall back to equal shares).
            # Callers with long-lived priority tables filter first -- see
            # repro.core.allocation.WeightedPolicy.
            raise ValueError(
                f"weights name unknown application(s): {', '.join(map(repr, unknown))}"
            )
    if not app_totals:
        return {}

    available = max(n_processors - uncontrolled_runnable, 0)
    if weights is None:
        weight_of = {app_id: 1.0 for app_id in app_totals}
    else:
        weight_of = {app_id: float(weights.get(app_id, 1.0)) for app_id in app_totals}
        for app_id, weight in weight_of.items():
            if weight <= 0:
                raise ValueError(f"weight for {app_id!r} must be positive")

    # Water-filling: visit applications in increasing cap order (per unit
    # of weight) so unused share flows to larger applications; ties break
    # on the application id for determinism.
    order = sorted(
        app_totals, key=lambda a: (app_totals[a] / weight_of[a], a)
    )
    targets: Dict[str, int] = {}
    remaining = available
    weight_left = sum(weight_of.values())
    for app_id in order:
        cap = app_totals[app_id]
        fair = int(remaining * weight_of[app_id] / weight_left) if weight_left else 0
        give = min(cap, max(1, fair))
        targets[app_id] = give
        remaining = max(remaining - give, 0)
        weight_left -= weight_of[app_id]

    # Distribute any leftover (from integer truncation) to applications
    # still below their cap, smallest allocation first.
    while remaining > 0:
        candidates = [a for a in order if targets[a] < app_totals[a]]
        if not candidates:
            break
        candidates.sort(key=lambda a: (targets[a] / weight_of[a], a))
        targets[candidates[0]] += 1
        remaining -= 1
    return targets
