"""The process-control server (Section 5), shardable.

A user-level daemon process that, every ``interval`` (6 seconds in the
paper), scans the kernel's process table, determines the runnable load of
uncontrollable applications, asks its :class:`~repro.core.allocation.
AllocationPolicy` to partition the remaining processors among the
controllable applications, and publishes the per-application targets on a
:class:`~repro.kernel.ipc.ControlBoard`.  Applications poll the board
(through their threads package) and suspend or resume their own worker
processes to match; the same polls piggyback each application's task-queue
backlog back onto the board, which demand-aware policies consume.

Applications announce themselves by sending a registration message with
their root pid (and initial backlog) on the server's channel; the server
keeps a registry (used for reporting and for the paper's parent-pid
bookkeeping) but derives its load information from the process table each
round, so it also notices applications that vanish without deregistering.

A server normally owns the whole machine.  Under a
:class:`~repro.core.plane.ControlPlane` it is *bound to a shard*: it then
considers only the applications the plane routes to it, against the
processor region and uncontrolled-load share the plane assigns it -- the
mechanism by which the paper's centralized bottleneck scales out.
"""

from __future__ import annotations

import os
import warnings
from typing import Any, Dict, List, Mapping, Optional, Tuple

from repro.core.allocation import (
    AllocationPolicy,
    AllocationRequest,
    EquipartitionPolicy,
    WeightedPolicy,
)
from repro.core.policy import IncrementalWaterFiller, partition_processors
from repro.kernel import Kernel
from repro.kernel import syscalls as sc
from repro.kernel.ipc import Channel, ControlBoard
from repro.kernel.process import Process
from repro.sim import units


#: One-time guard for the legacy-registration deprecation warning (module
#: level, so a fleet of sharded servers does not repeat it per shard).
_legacy_registration_warned = False


def _warn_legacy_registration(app_id: str) -> None:
    """Deprecation notice for 3-tuple ``("register", app_id, root_pid)``
    messages; senders should include their initial backlog as a fourth
    field so demand-aware policies see the application from round one."""
    global _legacy_registration_warned
    if _legacy_registration_warned:
        return
    _legacy_registration_warned = True
    warnings.warn(
        f"application {app_id!r} registered with the legacy 3-tuple "
        "('register', app_id, root_pid); send ('register', app_id, "
        "root_pid, initial_backlog) instead -- the 3-tuple form is "
        "deprecated and will be removed",
        DeprecationWarning,
        stacklevel=2,
    )


class ProcessControlServer:
    """One process-control server (the whole machine, or one shard).

    Create it, then call :meth:`start` to spawn the server process.  Pass
    :attr:`board` (and optionally :attr:`channel`) to each application's
    :class:`~repro.threads.package.ThreadsPackageConfig`.

    Args:
        kernel: the simulated kernel to scan and spawn on.
        interval: update period (paper: 6 s); must be positive.
        compute_cost: CPU cost of one partitioning decision (>= 0).
        weights: shorthand for ``policy=WeightedPolicy(weights)``;
            mutually exclusive with *policy*.
        name: process name (and registration-channel prefix).
        policy: the :class:`~repro.core.allocation.AllocationPolicy`
            deciding each round's targets; defaults to the paper's
            :class:`~repro.core.allocation.EquipartitionPolicy`.
    """

    #: Use :class:`~repro.kernel.syscalls.GetLoadSummary` + journal replay
    #: instead of a full :class:`GetProcessTable` scan.  Same simulated
    #: cost and bit-identical targets; host-side work per scan becomes
    #: O(changes since the last scan) instead of O(processes).  A class
    #: attribute so tests can flip every server back to the legacy table
    #: scan (the differential baseline) in one place; instances may also
    #: override it individually.
    fast_scan = True

    def __init__(
        self,
        kernel: Kernel,
        interval: Optional[int] = None,
        compute_cost: int = 500,
        weights: Optional[Mapping[str, float]] = None,
        name: str = "pc-server",
        policy: Optional[AllocationPolicy] = None,
    ) -> None:
        self.kernel = kernel
        self.interval = interval if interval is not None else units.seconds(6)
        if self.interval <= 0:
            raise ValueError("server interval must be positive")
        if compute_cost < 0:
            raise ValueError("server compute_cost must be >= 0")
        if policy is not None and weights:
            raise ValueError(
                "pass weights via WeightedPolicy(weights), not alongside "
                "an explicit policy"
            )
        self.compute_cost = compute_cost
        self.name = name
        if policy is None:
            policy = WeightedPolicy(weights) if weights else EquipartitionPolicy()
        #: The allocation rule this server applies each round.
        self.policy: AllocationPolicy = policy
        self.board = ControlBoard()
        self.channel = Channel(f"{name}.register")
        self.pid: Optional[int] = None
        self.updates = 0
        self.registered: Dict[str, int] = {}
        #: (time, targets) after every update -- experiment diagnostics.
        self.history: List[Tuple[int, Dict[str, int]]] = []
        #: Fault-injection hook: when set, called once per round and the
        #: returned offset (us, may be negative) is added to the sleep
        #: interval.  ``None`` (the default) sleeps exactly ``interval``.
        self.interval_jitter = None
        self.crashes = 0
        self.restarts = 0
        #: When :meth:`set_policy` last swapped the rule (``None`` = never);
        #: the sanitizer reads this to open its transition window.
        self.policy_swapped_at: Optional[int] = None
        self.policy_swaps = 0
        # Shard binding (None = this server owns the whole machine).
        self._plane: Optional[Any] = None
        self._shard_index: int = 0
        # --- Sparse-census scan state (see the fast_scan class attr) ----
        self._census_cursor = 0
        #: Machine-wide alive process totals per controllable application,
        #: as of this server's journal cursor.
        self._alive_view: Dict[str, int] = {}
        #: The slice of ``_alive_view`` routed to this shard (aliases the
        #: full view on an unsharded server).
        self._my_apps: Dict[str, int] = self._alive_view
        #: Applications seen in the journal before the plane routed them
        #: (sharded only); reconciled -- in first-spawn order, matching
        #: the table scan's assignment order -- at each scan.
        self._unassigned: Dict[str, int] = {}
        #: Sorted-cap structure mirroring ``_my_apps``; gives the default
        #: equipartition rule O(log n) updates per application change.
        self._filler = IncrementalWaterFiller()
        #: Under REPRO_SANITIZE, re-derive every fast-scan round from
        #: first principles (batch water-filling over a fresh snapshot)
        #: and fail loudly on any divergence.
        self._check_scans = bool(os.environ.get("REPRO_SANITIZE"))

    # ------------------------------------------------------------------
    # Sharding
    # ------------------------------------------------------------------

    def bind_shard(self, plane: Any, index: int) -> None:
        """Attach this server to *plane* as shard *index*.

        A bound server partitions only the plane's processor region for
        this shard, among the applications the plane routes here, and
        excludes every sibling server from the uncontrolled load.
        """
        self._plane = plane
        self._shard_index = index
        # A bound server's shard slice is a proper subset of the machine
        # view, so it needs its own dict (unsharded servers alias them).
        self._my_apps = {}

    @property
    def shard_index(self) -> int:
        """This server's shard number (0 for an unbound server)."""
        return self._shard_index

    @property
    def boards(self) -> List[ControlBoard]:
        """Uniform multi-shard surface (fault injectors iterate this)."""
        return [self.board]

    @property
    def channels(self) -> List[Channel]:
        """Uniform multi-shard surface (fault injectors iterate this)."""
        return [self.channel]

    def published_targets(self) -> Dict[str, int]:
        """The targets currently in force (what the sanitizer audits)."""
        return dict(self.board.targets)

    def set_policy(self, policy: AllocationPolicy) -> AllocationPolicy:
        """Hot-swap the allocation rule; returns the one replaced.

        Safe at any instant: the running scan loop re-reads
        ``self.policy`` each round, so the swap takes effect at the next
        scan boundary.  Targets on the board stay whatever the *old*
        policy posted until then -- the one-scan transition window the
        sanitizer's share-overrun check is taught to tolerate (it reads
        :attr:`policy_swapped_at`).
        """
        previous = self.policy
        self.policy = policy
        self.policy_swapped_at = self.kernel.now
        self.policy_swaps += 1
        self.kernel.trace.emit(
            self.kernel.now,
            "pc.policy_swap",
            server=self.name,
            shard=self._shard_index,
            old=getattr(previous, "name", type(previous).__name__),
            new=getattr(policy, "name", type(policy).__name__),
        )
        return previous

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    def start(self) -> Process:
        """Spawn the server process (daemon: it never exits by itself)."""
        if self.pid is not None:
            raise RuntimeError("server already started")
        process = self.kernel.spawn(
            self._program(), name=self.name, daemon=True, controllable=False
        )
        self.pid = process.pid
        return process

    def crash(self) -> bool:
        """Kill the server process in place (fault injection).

        The board deliberately keeps its now-stale targets: applications
        discover the outage through their stale-target TTL, not through
        the crash itself -- exactly the partial-failure mode a silent
        server death produces.  Returns ``False`` if not running.
        """
        if self.pid is None:
            return False
        killed = self.kernel.kill(self.pid)
        self.kernel.trace.emit(self.kernel.now, "server.crash", pid=self.pid)
        # Stamp the crash epoch: the targets stay readable, but readers
        # (and the watchdog) can now age them from the death instant
        # instead of from whenever the server last wrote.
        self.board.mark_crashed(self.kernel.now)
        self.pid = None
        self.crashes += 1
        return killed

    def restart(self) -> Process:
        """Restart after a crash, rebuilding the registry from the process
        table (the crash-safe re-registration the module docstring
        promises: registration is a courtesy, the table is the truth)."""
        if self.pid is not None:
            raise RuntimeError("server is already running")
        rebuilt: Dict[str, int] = {}
        for process in self.kernel.processes.values():
            if process.alive and process.controllable and process.app_id:
                root = rebuilt.get(process.app_id)
                # The root is the first-spawned (lowest-pid) live worker.
                if root is None or process.pid < root:
                    rebuilt[process.app_id] = process.pid
        self.registered = rebuilt
        process = self.kernel.spawn(
            self._program(), name=self.name, daemon=True, controllable=False
        )
        self.pid = process.pid
        # The new incarnation owns the board again; its first post would
        # clear the epoch anyway, but readers should not treat the
        # restart window as an ongoing crash.
        self.board.crashed_at = None
        self.restarts += 1
        self.kernel.trace.emit(
            self.kernel.now,
            "server.restart",
            pid=self.pid,
            reregistered=sorted(rebuilt),
        )
        return process

    # ------------------------------------------------------------------
    # Sparse-census scanning (journal replay)
    # ------------------------------------------------------------------

    def _replay_census(self, journal_len: int) -> None:
        """Fold kernel census-journal entries ``[cursor, journal_len)``
        into this server's views.  O(changes since the last scan)."""
        entries = self.kernel.census_journal_entries(
            self._census_cursor, journal_len
        )
        self._census_cursor = journal_len
        plane = self._plane
        if plane is None:
            # Unsharded: _my_apps aliases _alive_view; one pass updates
            # both, plus the sorted-cap structure.
            view = self._alive_view
            filler = self._filler
            for app_id, total in entries:
                if total > 0:
                    view[app_id] = total
                    filler.set_cap(app_id, total)
                else:
                    view.pop(app_id, None)
                    filler.remove(app_id)
            return
        index = self._shard_index
        assignment = plane.assignment
        view = self._alive_view
        mine = self._my_apps
        unassigned = self._unassigned
        filler = self._filler
        for app_id, total in entries:
            if total > 0:
                view[app_id] = total
            else:
                view.pop(app_id, None)
            shard = assignment.get(app_id)
            if shard == index:
                if total > 0:
                    mine[app_id] = total
                    filler.set_cap(app_id, total)
                else:
                    mine.pop(app_id, None)
                    filler.remove(app_id)
            elif shard is None:
                if total > 0:
                    unassigned[app_id] = total
                else:
                    unassigned.pop(app_id, None)

    def _reconcile_unassigned(self, plane: Any) -> None:
        """Route applications that appeared in the journal before the
        plane assigned them a shard.

        The table-scan path assigns unrouted applications as a side
        effect of filtering each scan, in table (first-spawn) order; the
        journal inserts them into ``_unassigned`` in the same order, so
        replaying the round-robin here keeps the plane's assignment
        sequence -- and therefore every shard's application set --
        bit-identical to the legacy scan's.
        """
        if not self._unassigned:
            return
        index = self._shard_index
        mine = self._my_apps
        filler = self._filler
        for app_id, total in list(self._unassigned.items()):
            shard = plane.assignment.get(app_id)
            if shard is None:
                shard = plane.shard_of(app_id)
            if shard == index:
                mine[app_id] = total
                filler.set_cap(app_id, total)
            del self._unassigned[app_id]

    def note_routing_moves(self, moves: Mapping[str, int]) -> None:
        """Plane callback: applications were re-routed (rebalance,
        failover, restart).  Patch this shard's views in place; totals
        come from *this server's* journal cursor, so the views stay
        internally consistent however far each shard's replay has got."""
        if self._plane is None:
            return
        index = self._shard_index
        mine = self._my_apps
        filler = self._filler
        for app_id, target in moves.items():
            if target == index:
                self._unassigned.pop(app_id, None)
                total = self._alive_view.get(app_id)
                if total:
                    mine[app_id] = total
                    filler.set_cap(app_id, total)
            elif app_id in mine:
                del mine[app_id]
                filler.remove(app_id)

    def _targets_from_summary(
        self, summary: sc.LoadSummary, now: int
    ) -> Dict[str, int]:
        """One partitioning decision from a :class:`GetLoadSummary` reply
        (the sparse sibling of :meth:`compute_targets`)."""
        self._replay_census(summary.journal_len)
        plane = self._plane
        if plane is not None:
            self._reconcile_unassigned(plane)
            index = self._shard_index
            capacity = plane.shard_capacity(index)
            uncontrolled = plane.shard_uncontrolled(
                index, summary.uncontrolled_runnable
            )
        else:
            capacity = self.kernel.online_processor_count()
            uncontrolled = summary.uncontrolled_runnable
        policy = self.policy
        if type(policy) is EquipartitionPolicy:
            # The paper's default rule: O(log n) incremental water-filling
            # against the sorted-cap structure the replay maintains.
            targets = self._filler.targets(capacity, uncontrolled)
        else:
            targets = policy.allocate(
                AllocationRequest(
                    n_processors=capacity,
                    uncontrolled_runnable=uncontrolled,
                    app_totals=dict(self._my_apps),
                    demands=self.board.demand_snapshot(),
                    demand_reported_at=dict(self.board.demand_reported_at),
                    qos=self.board.qos_snapshot(),
                    published=dict(self.board.targets),
                    runnable=dict(summary.runnable_by_app),
                    compliance=self.board.compliance_snapshot(),
                    now=now,
                )
            )
        if self._check_scans:
            self._check_fast_scan(targets, capacity, uncontrolled)
        return targets

    def _check_fast_scan(
        self, targets: Dict[str, int], capacity: int, uncontrolled: int
    ) -> None:
        """REPRO_SANITIZE oracle: the incremental allocation must equal the
        batch rule on the same inputs, and the replayed views must equal
        the filler's.  (The census counters themselves are cross-checked
        against a real table walk inside the kernel's syscall handler,
        where both sides see the same instant.)"""
        if type(self.policy) is EquipartitionPolicy:
            batch = partition_processors(
                capacity, uncontrolled, dict(self._my_apps)
            )
            if batch != targets:
                raise AssertionError(
                    "incremental water-filling diverged from the batch "
                    f"oracle: incremental={targets} batch={batch} "
                    f"caps={dict(self._my_apps)} capacity={capacity} "
                    f"uncontrolled={uncontrolled}"
                )
        if self._filler.caps() != dict(self._my_apps):
            raise AssertionError(
                "sorted-cap structure diverged from the replayed census "
                f"view: filler={self._filler.caps()} view={dict(self._my_apps)}"
            )

    # ------------------------------------------------------------------
    # The partitioning round
    # ------------------------------------------------------------------

    def compute_targets(
        self, table: List[sc.Syscall], now: int
    ) -> Dict[str, int]:
        """One partitioning decision from a process-table snapshot.

        Split out of the server loop so tests can drive it directly with a
        synthetic table.
        """
        plane = self._plane
        if plane is not None:
            # Sibling shard servers are system daemons too; none of them
            # is load the applications should be charged for.
            own_pids = plane.server_pids()
        else:
            own_pids = {self.pid}
        uncontrolled = sum(
            1
            for row in table
            if row.runnable and not row.controllable and row.pid not in own_pids
        )
        app_totals: Dict[str, int] = {}
        app_runnable: Dict[str, int] = {}
        for row in table:
            if row.controllable and row.app_id is not None:
                app_totals[row.app_id] = app_totals.get(row.app_id, 0) + 1
                if row.runnable:
                    app_runnable[row.app_id] = (
                        app_runnable.get(row.app_id, 0) + 1
                    )
        if plane is not None:
            index = self._shard_index
            app_totals = {
                app_id: total
                for app_id, total in app_totals.items()
                if plane.shard_of(app_id) == index
            }
            capacity = plane.shard_capacity(index)
            uncontrolled = plane.shard_uncontrolled(index, uncontrolled)
        else:
            # Only the processors that are actually in service: the
            # water-filling policy's >=1-per-application floor then keeps
            # every application alive even under CPU loss (the starvation
            # floor holds because it is computed against real capacity).
            capacity = self.kernel.online_processor_count()
        return self.policy.allocate(
            AllocationRequest(
                n_processors=capacity,
                uncontrolled_runnable=uncontrolled,
                app_totals=app_totals,
                demands=self.board.demand_snapshot(),
                demand_reported_at=dict(self.board.demand_reported_at),
                qos=self.board.qos_snapshot(),
                published=dict(self.board.targets),
                runnable=app_runnable,
                compliance=self.board.compliance_snapshot(),
                now=now,
            )
        )

    def _program(self):
        while True:
            # Drain registration messages without blocking: on a
            # shared-memory machine peeking at the queue depth is free;
            # each actual receive is charged normally.
            while len(self.channel):
                message = yield sc.ChannelReceive(self.channel)
                # Legacy senders omit the trailing backlog field.
                kind, app_id, root_pid, *extra = message
                if kind == "register":
                    self.registered[app_id] = root_pid
                    if extra:
                        self.board.report_demand(
                            app_id, extra[0], self.kernel.now
                        )
                    else:
                        _warn_legacy_registration(app_id)
                    self.kernel.trace.emit(
                        self.kernel.now,
                        "server.register",
                        app_id=app_id,
                        root_pid=root_pid,
                    )
            if self.fast_scan:
                # Same snapshot instant and same simulated cost as the
                # table scan below; the reply is O(1) counters plus a
                # journal watermark, so the host-side round costs
                # O(changes) instead of O(processes).
                plane = self._plane
                own_pids = (
                    plane.server_pids() if plane is not None else {self.pid}
                )
                summary = yield sc.GetLoadSummary(
                    exclude_pids=tuple(
                        pid for pid in own_pids if pid is not None
                    )
                )
                targets = self._targets_from_summary(summary, self.kernel.now)
            else:
                table = yield sc.GetProcessTable()
                targets = self.compute_targets(table, self.kernel.now)
            yield sc.Compute(self.compute_cost)
            if self.fast_scan:
                # Sparse publish: patch only the entries that moved, so a
                # quiet scan bumps no per-application dirty versions and
                # readers can tell their entry did not change.
                board_targets = self.board.targets
                changes = {
                    app_id: target
                    for app_id, target in targets.items()
                    if board_targets.get(app_id) != target
                }
                removals = tuple(
                    app_id for app_id in board_targets if app_id not in targets
                )
                self.board.post_delta(changes, removals, self.kernel.now)
            else:
                self.board.post(targets, self.kernel.now)
            # Liveness word for the watchdog: a free shared-memory stamp
            # once per scan (never an event, so golden traces hold).
            self.board.beat(self.kernel.now)
            self.updates += 1
            self.history.append((self.kernel.now, dict(targets)))
            self.kernel.trace.emit(
                self.kernel.now, "server.update", targets=dict(targets)
            )
            sleep_for = self.interval
            if self.interval_jitter is not None:
                sleep_for = max(1, sleep_for + int(self.interval_jitter()))
            yield sc.Sleep(sleep_for)
