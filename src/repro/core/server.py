"""The centralized process-control server (Section 5).

A user-level daemon process that, every ``interval`` (6 seconds in the
paper), scans the kernel's process table, determines the runnable load of
uncontrollable applications, partitions the remaining processors fairly
among the controllable applications, and publishes the per-application
targets on a :class:`~repro.kernel.ipc.ControlBoard`.  Applications poll
the board (through their threads package) and suspend or resume their own
worker processes to match.

Applications announce themselves by sending a registration message with
their root pid on the server's channel; the server keeps a registry (used
for reporting and for the paper's parent-pid bookkeeping) but derives its
load information from the process table each round, so it also notices
applications that vanish without deregistering.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Optional, Tuple

from repro.core.policy import partition_processors
from repro.kernel import Kernel
from repro.kernel import syscalls as sc
from repro.kernel.ipc import Channel, ControlBoard
from repro.kernel.process import Process
from repro.sim import units


class ProcessControlServer:
    """The centralized server of the paper's scheme.

    Create it, then call :meth:`start` to spawn the server process.  Pass
    :attr:`board` (and optionally :attr:`channel`) to each application's
    :class:`~repro.threads.package.ThreadsPackageConfig`.
    """

    def __init__(
        self,
        kernel: Kernel,
        interval: Optional[int] = None,
        compute_cost: int = 500,
        weights: Optional[Mapping[str, float]] = None,
        name: str = "pc-server",
        partition_policy: Optional[object] = None,
    ) -> None:
        self.kernel = kernel
        self.interval = interval if interval is not None else units.seconds(6)
        if self.interval <= 0:
            raise ValueError("server interval must be positive")
        if compute_cost < 0:
            raise ValueError("server compute_cost must be >= 0")
        self.compute_cost = compute_cost
        self.weights = dict(weights) if weights else None
        self.name = name
        #: Section 7 integration: when set to the machine's
        #: :class:`~repro.kernel.scheduler.partition.SpacePartitionScheduler`,
        #: each application's target is the size of its processor group
        #: rather than a flat machine-wide division, so a controlled
        #: application is not starved by greedy uncontrolled load that the
        #: partition already isolates.
        self.partition_policy = partition_policy
        self.board = ControlBoard()
        self.channel = Channel(f"{name}.register")
        self.pid: Optional[int] = None
        self.updates = 0
        self.registered: Dict[str, int] = {}
        #: (time, targets) after every update -- experiment diagnostics.
        self.history: List[Tuple[int, Dict[str, int]]] = []
        #: Fault-injection hook: when set, called once per round and the
        #: returned offset (us, may be negative) is added to the sleep
        #: interval.  ``None`` (the default) sleeps exactly ``interval``.
        self.interval_jitter = None
        self.crashes = 0
        self.restarts = 0

    def start(self) -> Process:
        """Spawn the server process (daemon: it never exits by itself)."""
        if self.pid is not None:
            raise RuntimeError("server already started")
        process = self.kernel.spawn(
            self._program(), name=self.name, daemon=True, controllable=False
        )
        self.pid = process.pid
        return process

    def crash(self) -> bool:
        """Kill the server process in place (fault injection).

        The board deliberately keeps its now-stale targets: applications
        discover the outage through their stale-target TTL, not through
        the crash itself -- exactly the partial-failure mode a silent
        server death produces.  Returns ``False`` if not running.
        """
        if self.pid is None:
            return False
        killed = self.kernel.kill(self.pid)
        self.kernel.trace.emit(self.kernel.now, "server.crash", pid=self.pid)
        self.pid = None
        self.crashes += 1
        return killed

    def restart(self) -> Process:
        """Restart after a crash, rebuilding the registry from the process
        table (the crash-safe re-registration the module docstring
        promises: registration is a courtesy, the table is the truth)."""
        if self.pid is not None:
            raise RuntimeError("server is already running")
        rebuilt: Dict[str, int] = {}
        for process in self.kernel.processes.values():
            if process.alive and process.controllable and process.app_id:
                root = rebuilt.get(process.app_id)
                # The root is the first-spawned (lowest-pid) live worker.
                if root is None or process.pid < root:
                    rebuilt[process.app_id] = process.pid
        self.registered = rebuilt
        process = self.kernel.spawn(
            self._program(), name=self.name, daemon=True, controllable=False
        )
        self.pid = process.pid
        self.restarts += 1
        self.kernel.trace.emit(
            self.kernel.now,
            "server.restart",
            pid=self.pid,
            reregistered=sorted(rebuilt),
        )
        return process

    def compute_targets(
        self, table: List[sc.Syscall], now: int
    ) -> Dict[str, int]:
        """One partitioning decision from a process-table snapshot.

        Split out of the server loop so tests can drive it directly with a
        synthetic table.
        """
        uncontrolled = sum(
            1
            for row in table
            if row.runnable and not row.controllable and row.pid != self.pid
        )
        app_totals: Dict[str, int] = {}
        for row in table:
            if row.controllable and row.app_id is not None:
                app_totals[row.app_id] = app_totals.get(row.app_id, 0) + 1
        if self.partition_policy is not None:
            # Section 7: the policy module has already assigned each
            # application a processor group; target = group size (capped
            # by the application's process count, at least one).
            return {
                app_id: max(
                    1,
                    min(total, len(self.partition_policy.partition_of(app_id))),
                )
                for app_id, total in app_totals.items()
            }
        return partition_processors(
            # Only the processors that are actually in service: the
            # water-filling policy's >=1-per-application floor then keeps
            # every application alive even under CPU loss (the starvation
            # floor holds because it is computed against real capacity).
            self.kernel.online_processor_count(),
            uncontrolled,
            app_totals,
            self.weights,
        )

    def _program(self):
        while True:
            # Drain registration messages without blocking: on a
            # shared-memory machine peeking at the queue depth is free;
            # each actual receive is charged normally.
            while len(self.channel):
                message = yield sc.ChannelReceive(self.channel)
                kind, app_id, root_pid = message
                if kind == "register":
                    self.registered[app_id] = root_pid
                    self.kernel.trace.emit(
                        self.kernel.now,
                        "server.register",
                        app_id=app_id,
                        root_pid=root_pid,
                    )
            table = yield sc.GetProcessTable()
            targets = self.compute_targets(table, self.kernel.now)
            yield sc.Compute(self.compute_cost)
            self.board.post(targets, self.kernel.now)
            self.updates += 1
            self.history.append((self.kernel.now, dict(targets)))
            self.kernel.trace.emit(
                self.kernel.now, "server.update", targets=dict(targets)
            )
            sleep_for = self.interval
            if self.interval_jitter is not None:
                sleep_for = max(1, sleep_for + int(self.interval_jitter()))
            yield sc.Sleep(sleep_for)
