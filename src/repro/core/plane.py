"""ControlPlane: a thin router over sharded process-control servers.

The paper's Section 5 server is a single daemon -- a centralized
bottleneck once applications and processors grow.  The control plane
scales it horizontally: N :class:`~repro.core.server.ProcessControlServer`
instances, each owning a processor *region* (an equal slice of the online
processors, recomputed every round so CPU hot-plug rebalances
automatically), with applications routed to shards round-robin in arrival
order.  Every shard runs the same :class:`~repro.core.allocation.
AllocationPolicy` over its own region and its own applications, so the
aggregate allocation converges to the single-server one while each
server's scan/partition work shrinks by the shard count.

With ``shards=1`` (the default everywhere) the plane degenerates to
exactly the paper's single server -- same process name, same spawn, same
syscall sequence -- so default runs stay bit-identical to the unsharded
implementation.

Failure handling mirrors the single server's: shard crashes leave their
boards stale (applications degrade through the threads package's
stale-target TTL), and :meth:`rebalance` re-routes the dead shard's
applications to live shards; a restart re-spreads them.  The plane also
exposes the single-server fault surface (``crash``/``restart``/``pid``/
``interval_jitter``/``boards``/``channels``), so every fault injector
works unchanged against every shard.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Mapping, Optional, Set, Tuple

from repro.core.allocation import AllocationPolicy
from repro.core.server import ProcessControlServer
from repro.kernel import Kernel
from repro.kernel.ipc import Channel, ControlBoard
from repro.kernel.process import Process

#: Environment knob consulted by ``run_scenario`` when the scenario leaves
#: ``shards`` unset (the experiments CLI sets it from ``--shards``).
SHARDS_ENV_VAR = "REPRO_SHARDS"


class _RoutedBoard:
    """A per-application view that follows the plane's shard routing.

    Threads packages hold one board reference for the whole run; routing
    reads through the plane keeps that reference valid across rebalances
    (the view always delegates to the application's *current* shard), and
    keeps fault shims effective (they wrap the underlying shard boards,
    which the view resolves on every access).
    """

    __slots__ = ("_plane", "_app_id")

    def __init__(self, plane: "ControlPlane", app_id: str) -> None:
        self._plane = plane
        self._app_id = app_id

    @property
    def _board(self) -> ControlBoard:
        return self._plane.shard_server(self._app_id).board

    def read(self, app_id: str) -> Optional[int]:
        return self._board.read(app_id)

    def read_app(self, app_id: str):
        return self._board.read_app(app_id)

    def report_demand(self, app_id: str, backlog: int, now: int) -> None:
        self._board.report_demand(app_id, backlog, now)

    def report_qos(
        self, app_id: str, slowdown: float, tier: str, now: int
    ) -> None:
        self._board.report_qos(app_id, slowdown, tier, now)

    def report_compliance(self, app_id: str, report: object) -> None:
        self._board.report_compliance(app_id, report)

    def posted_at(self, app_id: str) -> Optional[int]:
        return self._board.posted_at(app_id)

    @property
    def updated_at(self) -> Optional[int]:
        return self._board.updated_at

    @property
    def crashed_at(self) -> Optional[int]:
        return self._board.crashed_at

    @property
    def heartbeat_at(self) -> Optional[int]:
        return self._board.heartbeat_at

    @property
    def heartbeat_seq(self) -> int:
        return self._board.heartbeat_seq

    @property
    def targets(self) -> Dict[str, int]:
        return self._board.targets

    @property
    def version(self) -> int:
        return self._board.version

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<RoutedBoard {self._app_id!r} -> {self._board!r}>"


class ControlPlane:
    """Router + lifecycle manager for N sharded control servers.

    Args:
        kernel: the simulated kernel.
        shards: server count; 1 reproduces the paper's single server
            bit-identically.
        interval / compute_cost / weights / policy: forwarded to every
            :class:`ProcessControlServer` (one shared policy instance --
            policies are stateless between rounds).
        policy_factory: per-shard policy construction -- called once per
            shard with the shard index and returning that shard's
            :class:`~repro.core.allocation.AllocationPolicy`.  This is how
            heterogeneous planes are built (e.g. a different weight table
            per shard); mutually exclusive with *policy* and *weights*.
        name: base process name; shard *i* of a multi-shard plane is
            ``f"{name}-{i}"``.
    """

    def __init__(
        self,
        kernel: Kernel,
        shards: int = 1,
        interval: Optional[int] = None,
        compute_cost: int = 500,
        weights: Optional[Mapping[str, float]] = None,
        policy: Optional[AllocationPolicy] = None,
        policy_factory: Optional[Callable[[int], AllocationPolicy]] = None,
        name: str = "pc-server",
    ) -> None:
        if shards < 1:
            raise ValueError("shards must be >= 1")
        if policy_factory is not None and (policy is not None or weights):
            raise ValueError(
                "policy_factory is mutually exclusive with policy/weights"
            )
        self.kernel = kernel
        self.n_shards = shards
        self.name = name
        self.servers: List[ProcessControlServer] = []
        for index in range(shards):
            server = ProcessControlServer(
                kernel,
                interval=interval,
                compute_cost=compute_cost,
                weights=weights,
                name=name if shards == 1 else f"{name}-{index}",
                policy=policy_factory(index) if policy_factory else policy,
            )
            if shards > 1:
                server.bind_shard(self, index)
            self.servers.append(server)
        #: app_id -> shard index (first-seen round-robin; rebalanced on
        #: shard failure/recovery).
        self.assignment: Dict[str, int] = {}
        self._assign_order: List[str] = []
        self._next_shard = 0
        #: Shards still owning a processor region.  ``None`` (the normal
        #: state) means *all* of them -- kept as a sentinel rather than a
        #: full set so the default capacity math is byte-for-byte the
        #: legacy formula.  :meth:`fail_over` shrinks it; restarts grow
        #: it back and restore the sentinel at full strength.
        self._active: Optional[Set[int]] = None

    # ------------------------------------------------------------------
    # Routing
    # ------------------------------------------------------------------

    def shard_of(self, app_id: str) -> int:
        """The shard responsible for *app_id* (assigning round-robin on
        first sight, so arrival order fully determines the routing)."""
        index = self.assignment.get(app_id)
        if index is None:
            index = self._next_shard % self.n_shards
            self._next_shard += 1
            self.assignment[app_id] = index
            self._assign_order.append(app_id)
        return index

    def shard_server(self, app_id: str) -> ProcessControlServer:
        """The server instance currently responsible for *app_id*."""
        return self.servers[self.shard_of(app_id)]

    def board_for(self, app_id: str) -> Any:
        """The board *app_id*'s threads package should poll.

        Single-shard planes hand out the raw board (the exact legacy
        object); multi-shard planes hand out a routed view that follows
        rebalances.
        """
        if self.n_shards == 1:
            self.shard_of(app_id)  # record the assignment anyway
            return self.servers[0].board
        return _RoutedBoard(self, app_id)

    def channel_for(self, app_id: str) -> Channel:
        """The registration channel for *app_id*'s shard."""
        return self.shard_server(app_id).channel

    def active_shards(self) -> List[int]:
        """Shards currently owning a processor region, ascending."""
        if self._active is None:
            return list(range(self.n_shards))
        return sorted(self._active)

    def shard_capacity(self, index: int) -> int:
        """Processors shard *index* is responsible for right now.

        The online processors are sliced into near-equal regions over the
        *active* shards each round, so CPU hot-plug -- and shard failover,
        which removes a shard from the active set and lets the survivors
        absorb its region -- rebalances capacity automatically.  Floored
        at 1: a shard that lost its whole region (or was failed over but
        somehow still scans) still honours the starvation guarantee for
        any application routed to it.
        """
        active = self.active_shards()
        if index not in active:
            return 1
        online = len(self.kernel.online_cpus())
        base, extra = divmod(online, len(active))
        position = active.index(index)
        return max(1, base + (1 if position < extra else 0))

    def shard_uncontrolled(self, index: int, total: int) -> int:
        """Shard *index*'s slice of the machine-wide uncontrolled load."""
        active = self.active_shards()
        if index not in active:
            return 0
        base, extra = divmod(total, len(active))
        position = active.index(index)
        return base + (1 if position < extra else 0)

    def server_pids(self) -> Set[Optional[int]]:
        """Live pids of every shard server (excluded from uncontrolled
        load -- the control plane must not charge itself to the apps)."""
        return {server.pid for server in self.servers}

    def rebalance(self, spread: bool = False) -> Dict[str, int]:
        """Re-route applications after a shard failure or recovery.

        With *spread* false (the post-crash mode), only applications whose
        shard is dead move, round-robin onto the live shards.  With
        *spread* true (the post-restart mode), every application is
        re-routed round-robin over the live shards in first-assignment
        order, restoring the balanced routing.  Returns the moves
        (``app_id -> new shard``); no live shard means nothing to do --
        the stale-target TTL in the threads package owns a total outage.
        """
        active = set(self.active_shards())
        live = [
            index
            for index, server in enumerate(self.servers)
            if server.pid is not None and index in active
        ]
        if not live:
            return {}
        moves: Dict[str, int] = {}
        cursor = 0
        for app_id in self._assign_order:
            current = self.assignment[app_id]
            if spread or current not in live:
                target = live[cursor % len(live)]
                cursor += 1
                if target != current:
                    self.assignment[app_id] = target
                    moves[app_id] = target
        if moves:
            # Invalidate the shards' sparse-census views: the moved
            # applications change which server's scan must count them.
            for server in self.servers:
                server.note_routing_moves(moves)
            self.kernel.trace.emit(
                self.kernel.now, "plane.rebalance", moves=dict(moves)
            )
        return moves

    # ------------------------------------------------------------------
    # Lifecycle (single-server fault surface, fanned out)
    # ------------------------------------------------------------------

    def start(self) -> List[Process]:
        """Spawn every shard server."""
        return [server.start() for server in self.servers]

    @property
    def pid(self) -> Optional[int]:
        """A live shard's pid, or ``None`` when the whole plane is down
        (the shape fault injectors probe before crash/restart)."""
        for server in self.servers:
            if server.pid is not None:
                return server.pid
        return None

    def crash(self) -> bool:
        """Crash every live shard (total control-plane outage)."""
        crashed = False
        for server in self.servers:
            if server.pid is not None:
                crashed = server.crash() or crashed
        self.rebalance()
        return crashed

    def crash_shard(self, index: int) -> bool:
        """Crash one shard and re-route its applications to the others."""
        crashed = self.servers[index].crash()
        if crashed:
            self.rebalance()
        return crashed

    def restart(self) -> Process:
        """Restart every dead shard and re-spread the routing."""
        restarted: List[Process] = []
        for server in self.servers:
            if server.pid is None:
                restarted.append(server.restart())
        if not restarted:
            raise RuntimeError("server is already running")
        self._active = None  # full strength: every region owned again
        self.rebalance(spread=True)
        return restarted[0]

    def restart_shard(self, index: int) -> Process:
        """Restart one dead shard, return its region, re-spread routing."""
        process = self.servers[index].restart()
        if self._active is not None:
            self._active.add(index)
            if len(self._active) == self.n_shards:
                self._active = None
        self.rebalance(spread=True)
        return process

    def fail_over(self, index: int) -> Dict[str, int]:
        """Write shard *index* off: give its region and apps to survivors.

        The shard leaves the active set (so :meth:`shard_capacity` splits
        the online processors over the remaining shards -- the survivors
        absorb the orphaned region) and its applications are re-routed to
        live active shards.  If no survivor exists the routing is left
        alone and the returned move map is empty: the plane is *degraded*,
        and the threads package's stale-target TTL owns recovery.  A later
        :meth:`restart_shard`/:meth:`restart` returns the shard to
        service.
        """
        if self._active is None:
            self._active = set(range(self.n_shards))
        self._active.discard(index)
        server = self.servers[index]
        if server.pid is not None:
            server.crash()
        moves = self.rebalance()
        self.kernel.trace.emit(
            self.kernel.now,
            "plane.failover",
            shard=index,
            active=self.active_shards(),
            moves=dict(moves),
        )
        return moves

    def set_policy(
        self, policy: AllocationPolicy, shard: Optional[int] = None
    ) -> None:
        """Hot-swap the allocation rule on one shard (or all of them)."""
        targets = self.servers if shard is None else [self.servers[shard]]
        for server in targets:
            server.set_policy(policy)

    @property
    def interval_jitter(self):
        return self.servers[0].interval_jitter

    @interval_jitter.setter
    def interval_jitter(self, fn) -> None:
        for server in self.servers:
            server.interval_jitter = fn

    # ------------------------------------------------------------------
    # Aggregated diagnostics (single-server report surface)
    # ------------------------------------------------------------------

    @property
    def board(self) -> ControlBoard:
        """Shard 0's board (single-shard compatibility surface)."""
        return self.servers[0].board

    @property
    def channel(self) -> Channel:
        """Shard 0's channel (single-shard compatibility surface)."""
        return self.servers[0].channel

    @property
    def boards(self) -> List[ControlBoard]:
        return [server.board for server in self.servers]

    @property
    def channels(self) -> List[Channel]:
        return [server.channel for server in self.servers]

    @property
    def updates(self) -> int:
        return sum(server.updates for server in self.servers)

    @property
    def crashes(self) -> int:
        return sum(server.crashes for server in self.servers)

    @property
    def restarts(self) -> int:
        return sum(server.restarts for server in self.servers)

    @property
    def registered(self) -> Dict[str, int]:
        merged: Dict[str, int] = {}
        for server in self.servers:
            merged.update(server.registered)
        return merged

    @property
    def history(self) -> List[Tuple[int, Dict[str, int]]]:
        """Every shard's update history, merged in time order."""
        merged: List[Tuple[int, Dict[str, int]]] = []
        for server in self.servers:
            merged.extend(server.history)
        merged.sort(key=lambda entry: entry[0])
        return merged

    def published_targets(self) -> Dict[str, int]:
        """Targets in force across all shards (what the sanitizer audits).

        Shards own disjoint application sets under the current routing;
        after a rebalance both the old and new shard may list an
        application, in which case the *current* shard's word wins.
        """
        merged: Dict[str, int] = {}
        for server in self.servers:
            merged.update(server.board.targets)
        for app_id, index in self.assignment.items():
            target = self.servers[index].board.targets.get(app_id)
            if target is not None:
                merged[app_id] = target
        return merged

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        live = sum(1 for s in self.servers if s.pid is not None)
        return f"<ControlPlane shards={self.n_shards} live={live}>"
