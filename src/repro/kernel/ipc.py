"""Inter-process communication.

UMAX "provides interprocess communication through sockets" (Section 5); the
central server and the applications talk over them.  We model two pieces:

* :class:`Channel` -- a bounded FIFO message queue with blocking send (when
  full) and blocking receive (when empty).  Passive state, transitions by
  the kernel when servicing ``ChannelSend`` / ``ChannelReceive``.
* :class:`ControlBoard` -- the shared-memory bulletin board the server
  posts per-application process targets on.  On a shared-memory machine the
  server's replies are equivalent to writes that applications read at their
  next poll; the board keeps the same staleness semantics as the paper's
  socket polling (applications look at most once per poll interval) without
  simulating byte streams.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Deque, Dict, List, Optional, Tuple


class Channel:
    """A bounded, FIFO, blocking message channel.

    Attributes:
        name: label for traces.
        capacity: maximum queued messages; ``None`` means unbounded.
        messages: queued payloads.
        recv_waiters / send_waiters: blocked processes (kernel-managed).
        fault_filter: fault-injection hook; maps an outgoing message to the
            sequence actually delivered (``[]`` drops it, ``[m, m]``
            duplicates it).  ``None`` (the default) delivers normally.
    """

    __slots__ = (
        "name",
        "capacity",
        "messages",
        "recv_waiters",
        "send_waiters",
        "sends",
        "receives",
        "fault_filter",
    )

    def __init__(self, name: str = "channel", capacity: Optional[int] = None) -> None:
        if capacity is not None and capacity < 1:
            raise ValueError(f"channel capacity must be >= 1, got {capacity}")
        self.name = name
        self.capacity = capacity
        self.messages: Deque[Any] = deque()
        self.recv_waiters: List[Any] = []
        # send_waiters holds (process, message) pairs awaiting space.
        self.send_waiters: List[Tuple[Any, Any]] = []
        self.sends = 0
        self.receives = 0
        self.fault_filter = None

    @property
    def full(self) -> bool:
        """True when a send would block."""
        return self.capacity is not None and len(self.messages) >= self.capacity

    @property
    def empty(self) -> bool:
        """True when a receive would block."""
        return not self.messages

    def __len__(self) -> int:
        return len(self.messages)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Channel {self.name!r} queued={len(self.messages)}>"


class ControlBoard:
    """Shared-memory cell holding the server's per-application targets.

    The server writes ``targets[app_id] -> allowed runnable processes``
    whenever it recomputes the partition; applications read their entry at
    safe suspension points, at most once per poll interval.  ``version``
    increments on every server update so readers (and tests) can tell stale
    data from fresh.

    The board also carries the *reverse* channel of the demand-aware
    policies: applications piggyback their task-queue backlog on each poll
    (and on registration) via :meth:`report_demand` -- another free
    shared-memory write on the simulated machine -- and the server's
    :class:`~repro.core.allocation.DemandPolicy` reads the accumulated
    snapshot when partitioning.
    """

    def __init__(self) -> None:
        self.targets: Dict[str, int] = {}
        self.version = 0
        #: Per-application dirty tracking: the board version at which each
        #: application's target last *changed value* (not merely was
        #: re-posted unchanged).  Readers remember the version they last
        #: acted on and skip work when their entry has not moved.
        self.app_version: Dict[str, int] = {}
        self.updated_at: Optional[int] = None
        #: Last backlog each application reported (queued + in-execution
        #: tasks), and when; consumed by demand-aware allocation policies.
        self.demands: Dict[str, int] = {}
        self.demand_reported_at: Dict[str, int] = {}
        #: QoS telemetry service tenants piggyback on the same polls:
        #: ``app_id -> (slowdown estimate, tier tag, reported at)``.
        #: Slowdown is observed latency over the tenant's nominal
        #: zero-load latency; tier is ``"interactive"`` or ``"batch"``.
        #: Consumed by the SLO-aware allocation policy; applications
        #: without a service profile never write here, so the channel is
        #: free for every pre-existing workload.
        self.qos: Dict[str, Tuple[float, str, int]] = {}
        #: Compliance telemetry runtime adapters piggyback on their polls:
        #: ``app_id -> ComplianceReport`` (see
        #: :mod:`repro.threads.compliance`).  Records how promptly the
        #: tenant's runtime adopts published targets (adoption lag), how
        #: many workers it keeps runnable above its target (residual
        #: overshoot), and how often it reaches a safe suspension point.
        #: Consumed by the compliance-aware allocation policy; free
        #: shared-memory writes, so the channel costs nothing when unused.
        self.compliance: Dict[str, Any] = {}
        #: When each application's *current* target value was first
        #: posted (used by adapters to measure adoption lag from the
        #: server's publish instant rather than from their own read).
        self.target_posted_at: Dict[str, int] = {}
        #: Liveness word: the owning server stamps the board every scan
        #: (see :meth:`beat`); a watchdog that sees the stamp stop aging
        #: declares the server suspect.  Free shared-memory traffic.
        self.heartbeat_at: Optional[int] = None
        self.heartbeat_seq = 0
        #: Crash epoch: when the owning server dies *detectably* (killed
        #: by an injector, not merely wedged) the kernel-side teardown
        #: stamps the time here, so readers age the stale targets from
        #: the crash instant rather than from the last write.
        self.crashed_at: Optional[int] = None

    def post(self, targets: Dict[str, int], now: int) -> None:
        """Publish a new target map (server side)."""
        for app_id, target in targets.items():
            if target < 0:
                raise ValueError(
                    f"negative target {target} for application {app_id!r}"
                )
        old = self.targets
        self.version += 1
        version = self.version
        app_version = self.app_version
        posted_at = self.target_posted_at
        for app_id, target in targets.items():
            if old.get(app_id) != target:
                app_version[app_id] = version
                posted_at[app_id] = now
        for app_id in old:
            if app_id not in targets:
                app_version.pop(app_id, None)
                posted_at.pop(app_id, None)
        self.targets = dict(targets)
        self.updated_at = now
        # A live post supersedes any recorded crash of a prior incarnation.
        self.crashed_at = None

    def post_delta(
        self,
        changes: Dict[str, int],
        removals: Tuple[str, ...],
        now: int,
    ) -> None:
        """Patch the target map in place (server side, sparse path).

        Equivalent to :meth:`post` of the full map with *changes* applied
        and *removals* dropped, but the cost is proportional to what
        actually changed -- the write the incremental control server emits
        when only a handful of the 10k applications moved this scan.
        """
        for app_id, target in changes.items():
            if target < 0:
                raise ValueError(
                    f"negative target {target} for application {app_id!r}"
                )
        targets = self.targets
        self.version += 1
        version = self.version
        app_version = self.app_version
        posted_at = self.target_posted_at
        for app_id, target in changes.items():
            if targets.get(app_id) != target:
                targets[app_id] = target
                app_version[app_id] = version
                posted_at[app_id] = now
        for app_id in removals:
            if targets.pop(app_id, None) is not None:
                app_version.pop(app_id, None)
                posted_at.pop(app_id, None)
        self.updated_at = now
        self.crashed_at = None

    def read_app(self, app_id: str) -> Tuple[Optional[int], int]:
        """Read ``(target, dirty version)`` for *app_id* (application side).

        The second element is the board version at which the entry last
        changed (0 when never posted); a reader that remembers the version
        it last honoured can skip its adjustment logic entirely when the
        entry is clean.
        """
        return self.targets.get(app_id), self.app_version.get(app_id, 0)

    def beat(self, now: int) -> None:
        """Stamp the liveness word (server side, once per scan)."""
        self.heartbeat_at = now
        self.heartbeat_seq += 1

    def mark_crashed(self, now: int) -> None:
        """Record the owning server's death (kernel/injector side)."""
        self.crashed_at = now

    def read(self, app_id: str) -> Optional[int]:
        """Read the current target for *app_id* (application side).

        Returns ``None`` when the server has not yet published a target for
        this application, in which case the application leaves its process
        count alone.
        """
        return self.targets.get(app_id)

    def report_demand(self, app_id: str, backlog: int, now: int) -> None:
        """Record *app_id*'s task-queue backlog (application side)."""
        if backlog < 0:
            raise ValueError(
                f"negative backlog {backlog} for application {app_id!r}"
            )
        self.demands[app_id] = backlog
        self.demand_reported_at[app_id] = now

    def demand_snapshot(self) -> Dict[str, int]:
        """The reported backlogs (server side; absent = never reported)."""
        return dict(self.demands)

    def report_qos(
        self, app_id: str, slowdown: float, tier: str, now: int
    ) -> None:
        """Record *app_id*'s latency-slowdown estimate (application side)."""
        if slowdown < 0:
            raise ValueError(
                f"negative slowdown {slowdown} for application {app_id!r}"
            )
        self.qos[app_id] = (slowdown, tier, now)

    def qos_snapshot(self) -> Dict[str, Tuple[float, str, int]]:
        """The reported QoS estimates (server side; absent = no report)."""
        return dict(self.qos)

    def report_compliance(self, app_id: str, report: Any) -> None:
        """Record *app_id*'s runtime-compliance report (application side).

        *report* is a :class:`repro.threads.compliance.ComplianceReport`
        (kept duck-typed here: the kernel layer must not import the
        threads layer).
        """
        self.compliance[app_id] = report

    def compliance_snapshot(self) -> Dict[str, Any]:
        """The reported compliance telemetry (server side)."""
        return dict(self.compliance)

    def posted_at(self, app_id: str) -> Optional[int]:
        """When *app_id*'s current target value was first published."""
        return self.target_posted_at.get(app_id)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<ControlBoard v{self.version} {self.targets}>"
