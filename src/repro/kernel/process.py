"""Process control blocks.

A :class:`Process` is the kernel's record of one preemptively-scheduled
process (the paper's sense of "process": the kernel-visible schedulable
entity, as opposed to the user-level *tasks* multiplexed on top by the
threads package).
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum, auto
from typing import Any, Generator, List, Optional


class ProcessState(Enum):
    """Lifecycle states of a simulated process."""

    #: Created but not yet enqueued (transient, inside ``spawn`` only).
    NEW = auto()
    #: On the run queue, waiting for a processor.
    READY = auto()
    #: Dispatched on a processor (possibly spinning on a lock).
    RUNNING = auto()
    #: Off-processor, waiting on a primitive, timer, signal, or channel.
    BLOCKED = auto()
    #: Finished; kept in the process table for post-mortem statistics.
    TERMINATED = auto()


#: States that count as "runnable" for the paper's purposes (Figure 5 plots
#: runnable processes, which includes those currently running).
RUNNABLE_STATES = frozenset({ProcessState.READY, ProcessState.RUNNING})


@dataclass
class ProcessStats:
    """Per-process accounting, filled in by the kernel.

    All times are integer microseconds.

    Attributes:
        cpu_time: useful compute executed.
        spin_time: time burnt busy-waiting on spinlocks.
        ready_wait_time: time spent on the run queue (the paper's requeue
            latency: grows with the number of runnable processes).
        block_time: time spent blocked.
        dispatches: times placed on a processor.
        preemptions: involuntary de-schedules at quantum expiry.
        preemptions_in_critical_section: preemptions that occurred while the
            process held at least one spinlock -- the paper's degradation
            source #1, reported in the ablation tables.
        suspensions: times the process suspended itself via ``WaitSignal``
            (i.e. process-control suspensions when used by the threads
            package).
        signals_sent: ``SendSignal`` calls issued.
    """

    cpu_time: int = 0
    spin_time: int = 0
    ready_wait_time: int = 0
    block_time: int = 0
    dispatches: int = 0
    preemptions: int = 0
    preemptions_in_critical_section: int = 0
    suspensions: int = 0
    signals_sent: int = 0


@dataclass(frozen=True)
class RunnableProcessInfo:
    """One row of the ``GetRunnableInfo`` snapshot.

    This mirrors what the UMAX system call of Section 5 exposes: enough for
    the server to count runnable processes and attribute them to
    applications via parent pids.
    """

    pid: int
    ppid: int
    app_id: Optional[str]
    controllable: bool
    state: ProcessState
    name: str

    @property
    def runnable(self) -> bool:
        """True when the row was READY or RUNNING at snapshot time."""
        return self.state in RUNNABLE_STATES


class Process:
    """One kernel process.

    Attributes of interest to policy code and upper layers:

    * ``pid`` / ``ppid`` / ``name`` -- identity.
    * ``app_id`` -- application this process belongs to (``None`` for system
      daemons and stand-alone processes).
    * ``controllable`` -- whether the owning application participates in
      process control; the server subtracts uncontrollable processes from
      the processor pool (Section 5).
    * ``daemon`` -- daemon processes (e.g. the central server) do not keep
      an experiment alive: runners stop once all non-daemon work finishes.
    * ``state`` / ``cpu`` / ``last_cpu`` -- scheduling state.
    * ``spinning_on`` -- the spinlock this process is currently burning its
      processor on, or ``None``.
    * ``locks_held`` -- number of spinlocks currently held (lets the kernel
      flag preemptions inside critical sections).
    * ``no_preempt`` / ``deferred_preempt`` -- Zahorjan-scheme flags.
    """

    def __init__(
        self,
        pid: int,
        program: Generator[Any, Any, None],
        name: str = "process",
        app_id: Optional[str] = None,
        controllable: bool = False,
        daemon: bool = False,
        ppid: int = 0,
    ) -> None:
        self.pid = pid
        self.ppid = ppid
        self.program = program
        self.name = name
        self.app_id = app_id
        self.controllable = controllable
        self.daemon = daemon
        #: Scale factor on cache-reload penalties: how much reusable working
        #: set this process keeps in a processor cache (a streaming matrix
        #: multiply refetches little; an FFT rereads its butterflies).
        self.cache_footprint = 1.0

        self.state = ProcessState.NEW
        self.cpu: Optional[int] = None
        self.last_cpu: Optional[int] = None

        # Syscall-servicing state (kernel-managed).
        self.pending_syscall: Optional[Any] = None
        self.syscall_result: Any = None

        # Synchronization state.
        self.spinning_on: Optional[Any] = None
        self.locks_held = 0
        self.waiting_signal = False
        self.pending_signals: List[Any] = []
        self.block_reason: Optional[str] = None

        # Zahorjan no-preempt scheme.
        self.no_preempt = False
        self.deferred_preempt = False

        #: Processes blocked in ``WaitPid`` on this process (kernel-managed).
        self.join_waiters: List["Process"] = []

        # Scheduling bookkeeping.
        self.ready_since: Optional[int] = None
        self.blocked_since: Optional[int] = None
        self.spawn_time: Optional[int] = None
        self.exit_time: Optional[int] = None
        self.priority = 0.0  # used by the priority-decay (UMAX-like) policy

        self.stats = ProcessStats()

    @property
    def alive(self) -> bool:
        """True until the process terminates."""
        return self.state is not ProcessState.TERMINATED

    @property
    def runnable(self) -> bool:
        """True when READY or RUNNING (the paper's 'runnable')."""
        return self.state in RUNNABLE_STATES

    @property
    def suspended_by_control(self) -> bool:
        """True while the process is parked in ``WaitSignal``.

        This is exactly the state a process-control suspension puts a worker
        in, and what Figure 5 subtracts from each application's total.
        """
        return self.state is ProcessState.BLOCKED and self.waiting_signal

    def info(self) -> RunnableProcessInfo:
        """The ``GetRunnableInfo`` row for this process."""
        return RunnableProcessInfo(
            pid=self.pid,
            ppid=self.ppid,
            app_id=self.app_id,
            controllable=self.controllable,
            state=self.state,
            name=self.name,
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<Process {self.pid} {self.name!r} app={self.app_id} "
            f"{self.state.name}>"
        )
