"""The simulated operating system kernel.

This package models a UMAX-like kernel (the 4.2 BSD variant on the Encore
Multimax): preemptively scheduled processes, a pluggable scheduler policy,
signals, IPC channels, and the syscalls the paper's system needs -- most
importantly a ``GetRunnableInfo`` call ("a system call for determining
information about the runnable processes in the system", Section 5).

Programs are Python generators that ``yield`` syscall objects from
:mod:`repro.kernel.syscalls`; the kernel advances them, charging simulated
time for computation, lock operations, context switches, and cache reloads.

Public API
----------

- :class:`~repro.kernel.kernel.Kernel` -- the kernel proper.
- :class:`~repro.kernel.config.KernelConfig` -- syscall cost tunables.
- :class:`~repro.kernel.process.Process` / `ProcessState` -- PCBs.
- :mod:`repro.kernel.syscalls` -- the syscall vocabulary.
- :class:`~repro.kernel.ipc.Channel` -- blocking message channel (sockets).
- Scheduler policies in :mod:`repro.kernel.scheduler`.
"""

from repro.kernel.config import KernelConfig
from repro.kernel.process import Process, ProcessState, ProcessStats
from repro.kernel.kernel import Kernel
from repro.kernel.ipc import Channel
from repro.kernel import syscalls

__all__ = [
    "Kernel",
    "KernelConfig",
    "Process",
    "ProcessState",
    "ProcessStats",
    "Channel",
    "syscalls",
]
