"""The kernel: mechanism for dispatch, preemption, syscalls, and accounting.

The kernel drives simulated programs (Python generators yielding syscall
objects from :mod:`repro.kernel.syscalls`) over the processors of a
:class:`repro.machine.Machine`, under a pluggable
:class:`repro.kernel.scheduler.SchedulerPolicy`.

Mechanisms reproduced from the paper's platform:

* per-processor time quanta with preemption to the policy's queue;
* context-switch and dispatch costs, plus cache-reload penalties computed
  from the machine's warmth model (Section 2, points 3-4);
* spinlocks that burn processor time while spinning, including the
  pathological case of spinning on a lock whose holder is preempted
  (Section 2, point 1);
* signals for process suspension/resumption (Section 5);
* a ``GetRunnableInfo`` syscall for the centralized server (Section 5).
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from functools import partial
from typing import Any, Callable, Dict, List, Optional

from repro.kernel.config import KernelConfig
from repro.kernel.ipc import Channel
from repro.kernel.process import (
    Process,
    ProcessState,
    RunnableProcessInfo,
    RUNNABLE_STATES,
)
from repro.kernel import syscalls as sc
from repro.kernel.scheduler.base import SchedulerPolicy
from repro.kernel.scheduler.fifo import FifoScheduler
from repro.machine import Machine
from repro.sim import Engine, TraceLog
from repro.sim.engine import EventHandle, SimulationError


@dataclass
class _CpuState:
    """Kernel-private per-processor bookkeeping."""

    #: Accounting bucket the elapsed time belongs to: idle/overhead/busy/spin.
    kind: str = "idle"
    #: What the current segment is: None, "overhead", "compute", "micro", "spin".
    segment_kind: Optional[str] = None
    segment_started: int = 0
    segment_event: Optional[EventHandle] = None
    quantum_event: Optional[EventHandle] = None
    stint_started: int = 0


class Kernel:
    """A simulated UMAX-like kernel."""

    def __init__(
        self,
        machine: Optional[Machine] = None,
        engine: Optional[Engine] = None,
        policy: Optional[SchedulerPolicy] = None,
        config: Optional[KernelConfig] = None,
        trace: Optional[TraceLog] = None,
    ) -> None:
        self.machine = machine or Machine()
        self.engine = engine or Engine()
        self.config = config or KernelConfig()
        # Note: explicit None check -- an empty TraceLog is falsy (len == 0).
        self.trace = trace if trace is not None else TraceLog(enabled=False)
        self.policy = policy or FifoScheduler()
        self.policy.attach(self)

        self.processes: Dict[int, Process] = {}
        self._next_pid = 1
        self._alive_nondaemon = 0
        self.engine.done_hint = True  # no processes yet; see run_until_done
        self._cpu: List[_CpuState] = [
            _CpuState() for _ in range(self.machine.n_processors)
        ]
        #: Processors currently offline (fault injection / hot-unplug).
        self._offline: set = set()
        #: Cached tuple of online cpu ids: the dispatch pass iterates this
        #: every event, so membership tests against ``_offline`` would be
        #: pure overhead on the (usual) healthy machine.
        self._dispatch_cpus = tuple(range(self.machine.n_processors))
        #: Online processors with no current process.  The dispatch pass
        #: visits these (ascending, matching the full scan's order) instead
        #: of every online cpu, so a pass on a mostly-busy 1024-CPU machine
        #: costs O(idle), not O(processors).  Maintained at the only two
        #: sites that change ``Processor.current`` (_dispatch/_undispatch)
        #: plus hot-plug.
        self._idle_cpus = set(range(self.machine.n_processors))
        self._dispatch_scheduled = False
        # Hot-path caches: the processor list never changes after
        # construction, and the per-cpu completion callbacks close over
        # nothing but the cpu index, so minting a fresh closure per
        # scheduled segment/quantum event would be pure allocation churn.
        # functools.partial beats an equivalent lambda here: calling it
        # enters the bound method directly instead of an extra frame.
        self._processors = self.machine.processors
        self._cache = self.machine.cache
        # Pre-bound engine.schedule: the engine is fixed for the kernel's
        # lifetime, and hot paths schedule hundreds of thousands of events.
        self._schedule = self.engine.schedule
        n = self.machine.n_processors
        self._cb_begin_service = [partial(self._begin_service, c) for c in range(n)]
        self._cb_micro_done = [partial(self._micro_done, c) for c in range(n)]
        self._cb_compute_done = [partial(self._compute_done, c) for c in range(n)]
        self._cb_quantum_expired = [
            partial(self._quantum_expired, c) for c in range(n)
        ]
        # Trace-filter verdicts for the highest-frequency categories.
        # Filters are fixed at TraceLog construction, so deciding once here
        # spares building (and discarding) a kwargs dict per event.
        wants = self.trace.wants
        self._want_dispatch_trace = wants("kernel.dispatch")
        self._want_preempt_trace = wants("kernel.preempt")
        self._want_block_trace = wants("kernel.block")
        self._want_wake_trace = wants("kernel.wake")
        self._want_spawn_trace = wants("kernel.spawn")
        self._want_exit_trace = wants("kernel.exit")
        self._want_yield_trace = wants("kernel.yield")
        self._want_signal_trace = wants("kernel.signal")
        self._want_spin_trace = wants("spin.wait")
        self._want_runnable_trace = self.config.runnable_trace and wants(
            "kernel.runnable"
        )
        # Sparse census: the runnable counts, the per-application alive
        # totals, and the uncontrolled-runnable count are maintained
        # incrementally at every state transition, so consumers (the
        # runnable trace, the control server's load summaries) pay for
        # what changed instead of scanning the whole process table.
        self._runnable_total = 0
        self._runnable_per_app: Dict[Optional[str], int] = {}
        self._uncontrolled_runnable = 0
        self._census_dirty = False
        self._alive_total = 0
        #: Every process (alive or dead) per application id, in spawn
        #: order; backs :meth:`processes_of_app` without a table scan.
        self._procs_by_app: Dict[str, List[Process]] = {}
        #: Alive *controllable* process count per application id.
        self._app_alive: Dict[str, int] = {}
        #: Append-only change journal over ``_app_alive``: one
        #: ``(app_id, new_total)`` entry per change.  Control servers keep
        #: a cursor into it and replay only the tail on each scan
        #: (:class:`repro.kernel.syscalls.GetLoadSummary`).
        self._census_journal: List[tuple] = []
        #: Under REPRO_SANITIZE, every load-summary syscall re-derives the
        #: census counters from a real table walk at the same instant and
        #: fails loudly on drift (the sparse-census oracle).
        self._check_census = bool(os.environ.get("REPRO_SANITIZE"))
        # Policy methods called once or more per dispatch/quantum event.
        self._policy_enqueue = self.policy.enqueue
        self._policy_dequeue = self.policy.dequeue
        self._policy_has_waiting = self.policy.has_waiting
        self._policy_quantum_for = self.policy.quantum_for
        #: Callbacks invoked with the Process whenever one terminates.
        self.exit_listeners: List[Callable[[Process], None]] = []

    # ------------------------------------------------------------------
    # Public interface
    # ------------------------------------------------------------------

    @property
    def now(self) -> int:
        """Current simulation time in microseconds.

        Kernel-internal hot paths read ``self.engine.now`` directly (a plain
        attribute) instead of paying this property's descriptor hop.
        """
        return self.engine.now

    def spawn(
        self,
        program: Any,
        name: str = "process",
        app_id: Optional[str] = None,
        controllable: bool = False,
        daemon: bool = False,
        ppid: int = 0,
        cache_footprint: float = 1.0,
    ) -> Process:
        """Create a process running *program* and make it runnable."""
        if cache_footprint < 0:
            raise ValueError("cache_footprint must be >= 0")
        pid = self._next_pid
        self._next_pid += 1
        process = Process(
            pid=pid,
            program=program,
            name=name,
            app_id=app_id,
            controllable=controllable,
            daemon=daemon,
            ppid=ppid,
        )
        process.cache_footprint = cache_footprint
        process.spawn_time = self.engine.now
        process.state = ProcessState.READY
        process.ready_since = self.engine.now
        self.processes[pid] = process
        if app_id is not None:
            bucket = self._procs_by_app.get(app_id)
            if bucket is None:
                self._procs_by_app[app_id] = [process]
            else:
                bucket.append(process)
        if not daemon:
            self._alive_nondaemon += 1
            self.engine.done_hint = False
        self._alive_total += 1
        if controllable and app_id is not None:
            t = self._app_alive.get(app_id, 0) + 1
            self._app_alive[app_id] = t
            self._census_journal.append((app_id, t))
        self._census_gain(process)
        self.policy.on_process_spawn(process)
        self.policy.enqueue(process, "new")
        if self._want_spawn_trace:
            self.trace.emit(
                self.engine.now, "kernel.spawn", pid=pid, name=name, app_id=app_id
            )
        self._note_runnable_change()
        self._request_dispatch()
        return process

    def runnable_snapshot(self) -> List[RunnableProcessInfo]:
        """Rows for every READY or RUNNING process (GetRunnableInfo body)."""
        return [p.info() for p in self.processes.values() if p.runnable]

    def runnable_count(self) -> int:
        """Total runnable (READY + RUNNING) processes (O(1): maintained
        incrementally at every state transition)."""
        return self._runnable_total

    def runnable_by_app(self) -> Dict[Optional[str], int]:
        """Runnable process count per application id (O(apps), not
        O(processes): a copy of the incrementally-maintained census)."""
        return dict(self._runnable_per_app)

    def alive_nondaemon_count(self) -> int:
        """Processes that keep an experiment alive (non-daemon, not exited).

        Maintained as a counter (updated at spawn/exit): completion
        predicates consult this once per event, so an O(processes) scan
        here would dominate long oversubscribed runs.
        """
        return self._alive_nondaemon

    def processes_of_app(self, app_id: str) -> List[Process]:
        """All (alive or dead) processes tagged with *app_id*.

        Served from a spawn-ordered per-application index (spawn order ==
        pid order == the order the old full-table scan produced); the scan
        was O(processes) per call, which per-application reporting over
        10k applications turns quadratic.
        """
        return list(self._procs_by_app.get(app_id, ()))

    def force_preempt(self, cpu: int) -> None:
        """Preempt whatever runs on *cpu* now (used by gang scheduling)."""
        if self._processors[cpu].current is not None:
            self._preempt(cpu, reason="policy")

    # ------------------------------------------------------------------
    # CPU hot-plug (fault injection)
    # ------------------------------------------------------------------

    def cpu_is_online(self, cpu: int) -> bool:
        """True if *cpu* is currently accepting work."""
        return cpu not in self._offline

    def online_cpus(self) -> List[int]:
        """Ids of the processors currently online, ascending."""
        return list(self._dispatch_cpus)

    def online_processor_count(self) -> int:
        """Number of processors currently online."""
        return len(self._dispatch_cpus)

    def cpu_offline(self, cpu: int) -> bool:
        """Take *cpu* out of service, migrating its current process.

        The victim (if any) is preempted back to the policy's queue first,
        so it re-runs elsewhere with ordinary preemption semantics.  The
        last online processor cannot be removed -- the machine must keep
        making progress -- in which case this returns ``False`` and the
        topology is unchanged.  Returns ``True`` when the cpu went offline.
        """
        if not 0 <= cpu < self.machine.n_processors:
            raise ValueError(f"no such cpu {cpu}")
        if cpu in self._offline:
            return False
        if len(self._dispatch_cpus) <= 1:
            self.trace.emit(self.engine.now, "kernel.cpu_offline_refused", cpu=cpu)
            return False
        if self._processors[cpu].current is not None:
            self._preempt(cpu, reason="offline")
        self._offline.add(cpu)
        self._idle_cpus.discard(cpu)
        self._dispatch_cpus = tuple(
            c for c in range(self.machine.n_processors) if c not in self._offline
        )
        self.trace.emit(self.engine.now, "kernel.cpu_offline", cpu=cpu)
        self.policy.on_cpu_offline(cpu)
        return True

    def cpu_online(self, cpu: int) -> bool:
        """Return *cpu* to service.  Returns ``False`` if it was not offline."""
        if not 0 <= cpu < self.machine.n_processors:
            raise ValueError(f"no such cpu {cpu}")
        if cpu not in self._offline:
            return False
        self._offline.discard(cpu)
        self._idle_cpus.add(cpu)
        self._dispatch_cpus = tuple(
            c for c in range(self.machine.n_processors) if c not in self._offline
        )
        self.trace.emit(self.engine.now, "kernel.cpu_online", cpu=cpu)
        self.policy.on_cpu_online(cpu)
        self._request_dispatch()
        return True

    def kill(self, pid: int) -> bool:
        """Forcibly terminate *pid* wherever it is (fault injection).

        Works on RUNNING, READY, and BLOCKED processes; the victim is
        detached from whatever wait list it was parked on.  Like a real
        kill, any spinlock the victim holds is NOT released -- callers
        model crashes of processes at safe points (e.g. the control
        server).  Returns ``False`` if the pid is unknown or already dead.
        """
        process = self.processes.get(pid)
        if process is None or not process.alive:
            return False
        self.trace.emit(
            self.engine.now, "kernel.kill", pid=pid, state=process.state.name
        )
        if process.state is ProcessState.RUNNING:
            if process.cpu is None:
                raise SimulationError(f"running process {pid} has no cpu")
            self._exit_current(process.cpu)
        else:
            self._terminate_off_cpu(process)
        return True

    def request_dispatch(self) -> None:
        """Ask the kernel to fill idle processors (used by policies)."""
        self._request_dispatch()

    def run_until_quiescent(
        self,
        done: Optional[Callable[[], bool]] = None,
        max_events: int = 50_000_000,
        max_time: Optional[int] = None,
        done_exit_gated: bool = False,
        loop: str = "fused",
    ) -> None:
        """Step the engine until *done* returns True (default: all non-daemon
        processes have terminated), the calendar empties, or a guard trips.

        Pass ``done_exit_gated=True`` if the supplied *done* can only be
        true once every non-daemon process has exited (true of the normal
        experiment predicates): the event loop then skips the predicate
        call while the kernel's live-process counter is nonzero, which is
        observably identical but markedly cheaper on long runs.

        *loop* selects the driver: ``"fused"`` (the default) uses the
        engine's inlined :meth:`~repro.sim.engine.Engine.run_until_done`;
        ``"plain"`` drives :meth:`~repro.sim.engine.Engine.step` from an
        ordinary Python loop with identical semantics.  The plain loop
        exists as the reference side of the sanitizer's differential
        oracle (:mod:`repro.sanitize.oracle`) -- both must fire exactly
        the same events.

        Raises :class:`SimulationError` on the event guard; raises on time
        guard as well, since hitting either means a hang in an experiment.
        """
        if done is None:
            done = lambda: self.alive_nondaemon_count() == 0  # noqa: E731
            done_exit_gated = True
        if loop == "fused":
            self.engine.run_until_done(
                done,
                max_events=max_events,
                max_time=max_time,
                exit_gated=done_exit_gated,
            )
        elif loop == "plain":
            self._run_plain(done, max_events, max_time, done_exit_gated)
        else:
            raise ValueError(f"unknown loop {loop!r}; use 'fused' or 'plain'")

    def _run_plain(
        self,
        done: Callable[[], bool],
        max_events: Optional[int],
        max_time: Optional[int],
        exit_gated: bool,
    ) -> None:
        """The un-fused event loop: one :meth:`Engine.step` per iteration,
        mirroring ``run_until_done``'s guards and exit-gating exactly."""
        engine = self.engine
        ungated = not exit_gated
        fired = 0
        while not ((ungated or engine.done_hint) and done()):
            if max_events is not None and fired >= max_events:
                raise SimulationError(f"exceeded max_events={max_events}")
            if not engine.step():
                if done():  # defensive re-check, mirroring run_until_done
                    break
                raise SimulationError(
                    "event calendar empty but the completion predicate "
                    "is still false: the workload is deadlocked"
                )
            fired += 1
            if max_time is not None and engine.now > max_time:
                raise SimulationError(
                    f"simulated time exceeded max_time={max_time}us"
                )

    # ------------------------------------------------------------------
    # Accounting helpers
    # ------------------------------------------------------------------

    def _mark(self, cpu: int, new_kind: str) -> None:
        """Close the current accounting interval on *cpu*, open *new_kind*."""
        state = self._cpu[cpu]
        processor = self._processors[cpu]
        now = self.engine.now
        # Zero-length intervals are common (undispatch immediately followed
        # by dispatch at the same microsecond); account() would only
        # restamp its bookkeeping, so skip the call.
        if now != processor._last_accounted:
            processor.account(now, state.kind)
        state.kind = new_kind

    def finalize_accounting(self) -> None:
        """Settle all per-processor accounting up to the current time.

        Call once at the end of a run before reading utilization summaries.
        """
        for cpu in range(self.machine.n_processors):
            self._mark(cpu, self._cpu[cpu].kind)

    def _census_gain(self, process: Process) -> None:
        """A process became runnable (READY/RUNNING): bump the counters."""
        self._runnable_total += 1
        app = process.app_id
        per = self._runnable_per_app
        per[app] = per.get(app, 0) + 1
        if not process.controllable:
            self._uncontrolled_runnable += 1
        self._census_dirty = True

    def _census_lose(self, process: Process) -> None:
        """A process stopped being runnable: drop the counters."""
        self._runnable_total -= 1
        app = process.app_id
        per = self._runnable_per_app
        n = per[app] - 1
        if n:
            per[app] = n
        else:
            del per[app]
        if not process.controllable:
            self._uncontrolled_runnable -= 1
        self._census_dirty = True

    def _census_exit(self, process: Process) -> None:
        """A process terminated: settle the alive totals and the journal."""
        self._alive_total -= 1
        app = process.app_id
        if process.controllable and app is not None:
            t = self._app_alive[app] - 1
            if t:
                self._app_alive[app] = t
            else:
                del self._app_alive[app]
            self._census_journal.append((app, t))

    def census_journal_entries(self, start: int, stop: int) -> List[tuple]:
        """The ``(app_id, new_total)`` journal slice ``[start:stop)``."""
        return self._census_journal[start:stop]

    def _note_runnable_change(self) -> None:
        """Emit a trace record when the runnable census changes.

        The census itself is maintained incrementally (O(1) per state
        transition); this only snapshots the per-app dict when a record is
        actually wanted, so per-poll work scales with the number of
        applications that exist, not with machine or table size.
        """
        if not self._want_runnable_trace or not self._census_dirty:
            return
        self._census_dirty = False
        per_app = {
            ("<none>" if app is None else app): n
            for app, n in self._runnable_per_app.items()
        }
        self.trace.emit(
            self.engine.now,
            "kernel.runnable",
            total=self._runnable_total,
            per_app=per_app,
        )

    # ------------------------------------------------------------------
    # Dispatch machinery
    # ------------------------------------------------------------------

    def _request_dispatch(self) -> None:
        if not self._dispatch_scheduled:
            self._dispatch_scheduled = True
            self.engine.schedule(0, self._dispatch_pass, label="dispatch-pass")

    def _dispatch_pass(self) -> None:
        self._dispatch_scheduled = False
        idle = self._idle_cpus
        if not idle:
            return
        if self._check_census:
            actual = {
                cpu
                for cpu in self._dispatch_cpus
                if self._processors[cpu].current is None
            }
            if idle != actual:
                raise SimulationError(
                    f"idle-cpu set drifted: tracked {sorted(idle)} "
                    f"actual {sorted(actual)}"
                )
        # Ascending id order, exactly like the full scan the set replaces.
        cpus = (
            self._dispatch_cpus
            if len(idle) == len(self._dispatch_cpus)
            else sorted(idle)
        )
        shared = self.policy.shared_queue
        for cpu in cpus:
            if self._processors[cpu].current is None:
                process = self._policy_dequeue(cpu)
                if process is not None:
                    self._dispatch(cpu, process)
                elif shared:
                    # One empty pull from a shared queue answers for every
                    # remaining idle processor.
                    return

    def _dispatch(self, cpu: int, process: Process) -> None:
        processor = self._processors[cpu]
        if processor.current is not None:
            raise SimulationError(f"dispatch onto busy cpu {cpu}")
        if process.state is not ProcessState.READY:
            raise SimulationError(
                f"dispatch of process {process.pid} in state {process.state.name}"
            )
        state = self._cpu[cpu]
        mconfig = self.machine.config
        reload_penalty = int(
            self._cache.reload_penalty(cpu, process.pid)
            * process.cache_footprint
        )
        overhead = (
            mconfig.context_switch_cost + mconfig.dispatch_latency + reload_penalty
        )

        engine = self.engine
        now = engine.now
        if process.ready_since is not None:
            process.stats.ready_wait_time += now - process.ready_since
            process.ready_since = None
        process.state = ProcessState.RUNNING
        process.cpu = cpu
        process.stats.dispatches += 1
        processor.current = process
        self._idle_cpus.discard(cpu)
        processor.dispatches += 1

        self._mark(cpu, "overhead")
        state.stint_started = now
        state.segment_kind = "overhead"
        state.segment_started = now
        quantum = self._policy_quantum_for(process, cpu)
        state.quantum_event = self._schedule(
            overhead + quantum, self._cb_quantum_expired[cpu], "quantum"
        )
        state.segment_event = self._schedule(
            overhead, self._cb_begin_service[cpu], "begin-service"
        )
        if self._want_dispatch_trace:
            self.trace.emit(
                now,
                "kernel.dispatch",
                pid=process.pid,
                cpu=cpu,
                overhead=overhead,
                reload=reload_penalty,
            )

    def _begin_service(self, cpu: int) -> None:
        state = self._cpu[cpu]
        state.segment_event = None
        state.segment_kind = None
        self._mark(cpu, "busy")
        self._service(cpu)

    def _undispatch(self, cpu: int) -> Process:
        """Take the current process off *cpu*, settling all accounting."""
        processor = self._processors[cpu]
        state = self._cpu[cpu]
        process = processor.current
        if process is None:
            raise SimulationError(f"undispatch of idle cpu {cpu}")

        now = self.engine.now
        if state.segment_kind == "compute":
            ran = now - state.segment_started
            syscall = process.pending_syscall
            if not isinstance(syscall, sc.Compute):
                raise SimulationError("compute segment without Compute syscall")
            if syscall.remaining is None or syscall.remaining < ran:
                raise SimulationError("compute segment accounting mismatch")
            syscall.remaining -= ran
            process.stats.cpu_time += ran
        elif state.segment_kind == "spin":
            self._settle_spin(cpu, process)

        if state.segment_event is not None:
            state.segment_event.cancel()
            state.segment_event = None
        if state.quantum_event is not None:
            state.quantum_event.cancel()
            state.quantum_event = None
        state.segment_kind = None

        self._cache.note_execution(
            cpu, process.pid, now - state.stint_started
        )
        processor.current = None
        if cpu not in self._offline:
            self._idle_cpus.add(cpu)
        process.cpu = None
        process.last_cpu = cpu
        self._mark(cpu, "idle")
        return process

    def _settle_spin(self, cpu: int, process: Process) -> None:
        """Account a spinning interval ending now and detach from the lock."""
        state = self._cpu[cpu]
        elapsed = self.engine.now - state.segment_started
        lock = process.spinning_on
        if lock is None:
            raise SimulationError("spin segment without a lock")
        process.stats.spin_time += elapsed
        lock.total_spin_time += elapsed
        if process in lock.spinners:
            lock.spinners.remove(process)
        process.spinning_on = None

    # ------------------------------------------------------------------
    # Preemption
    # ------------------------------------------------------------------

    def _quantum_expired(self, cpu: int) -> None:
        state = self._cpu[cpu]
        state.quantum_event = None
        process = self._processors[cpu].current
        if process is None:
            return
        if process.no_preempt and not process.deferred_preempt:
            # Zahorjan scheme: honour the flag once, for a bounded grace.
            process.deferred_preempt = True
            state.quantum_event = self._schedule(
                self.config.nopreempt_grace,
                self._cb_quantum_expired[cpu],
                "quantum-grace",
            )
            self.trace.emit(
                self.engine.now, "kernel.preempt_deferred", pid=process.pid, cpu=cpu
            )
            return
        if not self._policy_has_waiting(cpu):
            # Nobody is waiting: extend the current process instead of a
            # pointless same-process context switch.
            quantum = self._policy_quantum_for(process, cpu)
            state.quantum_event = self._schedule(
                quantum, self._cb_quantum_expired[cpu], "quantum"
            )
            return
        self._preempt(cpu, reason="quantum")

    def _preempt(self, cpu: int, reason: str) -> None:
        process = self._undispatch(cpu)
        process.deferred_preempt = False
        process.stats.preemptions += 1
        in_cs = process.locks_held > 0
        if in_cs:
            process.stats.preemptions_in_critical_section += 1
        process.state = ProcessState.READY
        process.ready_since = self.engine.now
        self._policy_enqueue(process, "preempted")
        if self._want_preempt_trace:
            self.trace.emit(
                self.engine.now,
                "kernel.preempt",
                pid=process.pid,
                cpu=cpu,
                reason=reason,
                in_critical_section=in_cs,
            )
        self._request_dispatch()

    # ------------------------------------------------------------------
    # Blocking and waking
    # ------------------------------------------------------------------

    def _block_current(self, cpu: int, reason: str) -> Process:
        process = self._undispatch(cpu)
        process.state = ProcessState.BLOCKED
        process.block_reason = reason
        process.blocked_since = self.engine.now
        self._census_lose(process)
        if self._want_block_trace:
            self.trace.emit(
                self.engine.now, "kernel.block", pid=process.pid, reason=reason
            )
        self._note_runnable_change()
        self._request_dispatch()
        return process

    def _wake(self, process: Process) -> None:
        if process.state is not ProcessState.BLOCKED:
            raise SimulationError(
                f"wake of process {process.pid} in state {process.state.name}"
            )
        if process.blocked_since is not None:
            process.stats.block_time += self.engine.now - process.blocked_since
            process.blocked_since = None
        process.block_reason = None
        process.state = ProcessState.READY
        process.ready_since = self.engine.now
        self._census_gain(process)
        self._policy_enqueue(process, "unblocked")
        if self._want_wake_trace:
            self.trace.emit(self.engine.now, "kernel.wake", pid=process.pid)
        self._note_runnable_change()
        self._request_dispatch()

    def _exit_current(self, cpu: int) -> None:
        process = self._undispatch(cpu)
        syscall = process.pending_syscall
        if isinstance(syscall, sc.SpinAcquire):
            # Killed while actively spinning: _undispatch settled it out
            # of the spin set; drop its wait anchor too so the lock's
            # telemetry does not leak a dead pid.
            syscall.lock.wait_started.pop(process.pid, None)
        process.pending_syscall = None
        process.state = ProcessState.TERMINATED
        process.exit_time = self.engine.now
        if not process.daemon:
            self._alive_nondaemon -= 1
            if self._alive_nondaemon == 0:
                self.engine.done_hint = True
        self._census_lose(process)
        self._census_exit(process)
        self.machine.cache.evict_process(process.pid)
        self.policy.on_process_exit(process)
        if self._want_exit_trace:
            self.trace.emit(
                self.engine.now, "kernel.exit", pid=process.pid, name=process.name
            )
        self._note_runnable_change()
        # Release joiners blocked in WaitPid on this process.
        joiners, process.join_waiters = process.join_waiters, []
        for joiner in joiners:
            joiner.pending_syscall = None
            joiner.syscall_result = True
            self._wake(joiner)
        for listener in list(self.exit_listeners):
            listener(process)
        self._request_dispatch()

    def _terminate_off_cpu(self, process: Process) -> None:
        """Terminate a READY or BLOCKED process (the :meth:`kill` path).

        Mirrors :meth:`_exit_current` minus the undispatch, plus detaching
        the victim from whatever wait list it is parked on so nobody later
        tries to wake a corpse.
        """
        if process.state is ProcessState.READY:
            # The policy drops its queue entry in on_process_exit.
            self._census_lose(process)
        elif process.state is ProcessState.BLOCKED:
            self._detach_from_wait_list(process)
        else:
            raise SimulationError(
                f"off-cpu termination of process {process.pid} "
                f"in state {process.state.name}"
            )
        process.state = ProcessState.TERMINATED
        process.exit_time = self.engine.now
        process.pending_syscall = None
        process.ready_since = None
        process.blocked_since = None
        if not process.daemon:
            self._alive_nondaemon -= 1
            if self._alive_nondaemon == 0:
                self.engine.done_hint = True
        self._census_exit(process)
        self.machine.cache.evict_process(process.pid)
        self.policy.on_process_exit(process)
        if self._want_exit_trace:
            self.trace.emit(
                self.engine.now, "kernel.exit", pid=process.pid, name=process.name
            )
        self._note_runnable_change()
        joiners, process.join_waiters = process.join_waiters, []
        for joiner in joiners:
            joiner.pending_syscall = None
            joiner.syscall_result = True
            self._wake(joiner)
        for listener in list(self.exit_listeners):
            listener(process)
        self._request_dispatch()

    def _detach_from_wait_list(self, process: Process) -> None:
        """Remove a BLOCKED *process* from the structure it is waiting on.

        The pending syscall identifies the wait list.  A sleeping process
        has no pending syscall; its wake event checks the state before
        waking, so the corpse is simply ignored when the timer fires.
        A process parked in WaitSignal is found via ``waiting_signal``.
        """
        if process.waiting_signal:
            process.waiting_signal = False
            return
        syscall = process.pending_syscall
        if isinstance(syscall, sc.SpinAcquire):
            # Only culled (passivated) spinlock waiters block; active
            # spinners stay dispatched and are settled by _undispatch.
            lock = syscall.lock
            if process in lock.culled:
                lock.culled.remove(process)
            lock.wait_started.pop(process.pid, None)
        elif isinstance(syscall, sc.MutexAcquire):
            mutex = syscall.mutex
            if process in mutex.waiters:
                mutex.waiters.remove(process)
            elif process in mutex.culled:
                mutex.culled.remove(process)
            mutex.wait_started.pop(process.pid, None)
        elif isinstance(syscall, sc.SemWait):
            if process in syscall.sem.waiters:
                syscall.sem.waiters.remove(process)
        elif isinstance(syscall, sc.BarrierWait):
            if process in syscall.barrier.waiters:
                syscall.barrier.waiters.remove(process)
        elif isinstance(syscall, sc.CondWait):
            cond = syscall.cond
            if process in cond.waiters:
                cond.waiters.remove(process)
            elif process in cond.mutex.waiters:
                # Signalled under Mesa semantics but not yet granted the
                # mutex: the process moved to the mutex queue.
                cond.mutex.waiters.remove(process)
        elif isinstance(syscall, sc.ChannelReceive):
            if process in syscall.channel.recv_waiters:
                syscall.channel.recv_waiters.remove(process)
        elif isinstance(syscall, sc.ChannelSend):
            syscall.channel.send_waiters = [
                entry for entry in syscall.channel.send_waiters
                if entry[0] is not process
            ]
        elif isinstance(syscall, sc.WaitPid):
            target = self.processes.get(syscall.pid)
            if target is not None and process in target.join_waiters:
                target.join_waiters.remove(process)

    # ------------------------------------------------------------------
    # Syscall service loop
    # ------------------------------------------------------------------

    def _finish_syscall(self, cpu: int, process: Process, result: Any, cost: int) -> bool:
        """Complete the pending syscall; charge *cost* as CPU time.

        Returns True if the service loop may continue immediately, False if
        a cost segment was scheduled (the loop must return).
        """
        process.pending_syscall = None
        process.syscall_result = result
        if cost <= 0:
            return True
        process.stats.cpu_time += cost
        state = self._cpu[cpu]
        state.segment_kind = "micro"
        state.segment_started = self.engine.now
        state.segment_event = self._schedule(
            cost, self._cb_micro_done[cpu], "micro"
        )
        return False

    def _micro_done(self, cpu: int) -> None:
        state = self._cpu[cpu]
        state.segment_event = None
        state.segment_kind = None
        self._service(cpu)

    def _compute_done(self, cpu: int) -> None:
        process = self._processors[cpu].current
        if process is None:
            raise SimulationError("compute completion on idle cpu")
        syscall = process.pending_syscall
        if not isinstance(syscall, sc.Compute):
            raise SimulationError("compute completion without Compute syscall")
        process.stats.cpu_time += syscall.remaining or 0
        syscall.remaining = 0
        state = self._cpu[cpu]
        state.segment_event = None
        state.segment_kind = None
        process.pending_syscall = None
        process.syscall_result = None
        self._service(cpu)

    def _service(self, cpu: int) -> None:
        """Drive the current process until it blocks, computes, or exits."""
        processor = self._processors[cpu]
        handlers = self._HANDLERS
        compute_type = sc.Compute
        while True:
            process = processor.current
            if process is None:
                return
            syscall = process.pending_syscall
            if syscall is None:
                # Inlined :meth:`_advance`: resume the program generator.
                try:
                    result = process.syscall_result
                    process.syscall_result = None
                    syscall = process.program.send(result)
                except StopIteration:
                    self._exit_current(cpu)
                    return
                except Exception as exc:
                    raise SimulationError(
                        f"program of process {process.pid} ({process.name!r}) "
                        f"raised {type(exc).__name__}: {exc}"
                    ) from exc
                process.pending_syscall = syscall

            syscall_type = type(syscall)
            if syscall_type is compute_type:
                # Inlined :meth:`_sys_compute`: Compute dominates every
                # workload's syscall mix, so skip the handler dispatch.
                remaining = syscall.remaining
                if remaining is None:
                    remaining = syscall.remaining = syscall.amount
                if remaining <= 0:
                    process.pending_syscall = None
                    process.syscall_result = None
                    continue
                state = self._cpu[cpu]
                state.segment_kind = "compute"
                state.segment_started = self.engine.now
                state.segment_event = self._schedule(
                    remaining, self._cb_compute_done[cpu], "compute"
                )
                return

            handler = handlers.get(syscall_type)
            if handler is None:
                raise SimulationError(
                    f"process {process.pid} yielded unknown syscall "
                    f"{type(syscall).__name__}"
                )
            if not handler(self, cpu, process, syscall):
                return

    # Each handler returns True to continue the service loop immediately,
    # False if the process left the loop (blocked, spinning, computing,
    # exited, or a cost segment was scheduled).

    def _sys_compute(self, cpu: int, process: Process, syscall: sc.Compute) -> bool:
        if syscall.remaining is None:
            syscall.remaining = syscall.amount
        if syscall.remaining <= 0:
            process.pending_syscall = None
            process.syscall_result = None
            return True
        state = self._cpu[cpu]
        state.segment_kind = "compute"
        state.segment_started = self.engine.now
        state.segment_event = self._schedule(
            syscall.remaining, self._cb_compute_done[cpu], "compute"
        )
        return False

    def _sys_spin_acquire(
        self, cpu: int, process: Process, syscall: sc.SpinAcquire
    ) -> bool:
        lock = syscall.lock
        if not lock.held:
            lock.note_acquired(process.pid, self.engine.now, contended=False)
            process.locks_held += 1
            return self._finish_syscall(cpu, process, True, lock.acquire_cost)
        holder = self.processes.get(lock.holder_pid)
        holder_running = holder is not None and holder.state is ProcessState.RUNNING
        if not holder_running:
            lock.holder_preempted_encounters += 1
            self.trace.emit(
                self.engine.now,
                "spin.holder_preempted",
                lock=lock.name,
                pid=process.pid,
                holder=lock.holder_pid,
            )
        lock.note_wait_started(process.pid, self.engine.now)
        if lock.admission is not None and len(lock.spinners) >= lock.admission:
            # Malthusian restriction: the active spin set is full.
            # Passivate this waiter -- it blocks with the acquire still
            # pending, so the next dispatch after a wake retries it.
            lock.note_culled(process)
            self.trace.emit(
                self.engine.now,
                "lock.cull",
                lock=lock.name,
                pid=process.pid,
                culled=len(lock.culled),
            )
            self._block_current(cpu, f"spinlock:{lock.name}")
            return False
        process.spinning_on = lock
        lock.spinners.append(process)
        state = self._cpu[cpu]
        state.segment_kind = "spin"
        state.segment_started = self.engine.now
        self._mark(cpu, "spin")
        if self._want_spin_trace:
            self.trace.emit(
                self.engine.now, "spin.wait", lock=lock.name, pid=process.pid, cpu=cpu
            )
        return False

    def _sys_spin_release(
        self, cpu: int, process: Process, syscall: sc.SpinRelease
    ) -> bool:
        lock = syscall.lock
        lock.note_released(process.pid, self.engine.now)
        process.locks_held -= 1
        if process.locks_held < 0:
            raise SimulationError(
                f"process {process.pid} released more spinlocks than held"
            )
        # Hand off to the longest-spinning process that is on a CPU now.
        if lock.spinners:
            # Priced before the pop: the storm is driven by the spinners
            # still chewing on the line after the grantee stops spinning.
            handoff_charge = lock.handoff_charge()
            grantee = lock.spinners.pop(0)
            gcpu = grantee.cpu
            if gcpu is None or grantee.state is not ProcessState.RUNNING:
                raise SimulationError(
                    "spinner list contained a process that is not running"
                )
            gstate = self._cpu[gcpu]
            elapsed = self.engine.now - gstate.segment_started
            grantee.stats.spin_time += elapsed
            lock.total_spin_time += elapsed
            grantee.spinning_on = None
            lock.note_acquired(grantee.pid, self.engine.now, contended=True)
            grantee.locks_held += 1
            grantee.pending_syscall = None
            grantee.syscall_result = True
            self._mark(gcpu, "busy")
            gstate.segment_kind = "micro"
            gstate.segment_started = self.engine.now
            gstate.segment_event = self.engine.schedule(
                handoff_charge, self._cb_micro_done[gcpu], "spin-handoff"
            )
        if lock.culled:
            self._spinlock_readmit(lock)
        return self._finish_syscall(cpu, process, None, lock.release_cost)

    def _spinlock_readmit(self, lock: Any) -> None:
        """Feed passivated waiters back after a release (one per release).

        If ownership went to a spinner, top the active spin set back up
        (the readmitted process wakes and *retries* its acquire, so it
        contends like any other arrival).  If the lock went completely
        free -- nobody left spinning -- grant it directly to the oldest
        culled waiter, mutex-style, so no barging window opens.
        """
        now = self.engine.now
        if lock.held:
            if lock.admission is not None and len(lock.spinners) >= lock.admission:
                return
            while lock.culled:
                waiter = lock.culled.pop(0)
                if waiter.state is ProcessState.TERMINATED:
                    continue  # killed while parked (fault injection)
                lock.note_readmitted()
                self.trace.emit(
                    now, "lock.readmit", lock=lock.name, pid=waiter.pid, direct=False
                )
                self._wake(waiter)
                break
        else:
            while lock.culled:
                waiter = lock.culled.pop(0)
                if waiter.state is ProcessState.TERMINATED:
                    continue  # killed while parked (fault injection)
                lock.note_readmitted()
                lock.note_acquired(waiter.pid, now, contended=True)
                waiter.locks_held += 1
                waiter.pending_syscall = None
                waiter.syscall_result = True
                self.trace.emit(
                    now, "lock.readmit", lock=lock.name, pid=waiter.pid, direct=True
                )
                self._wake(waiter)
                break

    def _sys_mutex_acquire(
        self, cpu: int, process: Process, syscall: sc.MutexAcquire
    ) -> bool:
        mutex = syscall.mutex
        if not mutex.held:
            mutex.note_acquired(process.pid, contended=False, now=self.engine.now)
            return self._finish_syscall(cpu, process, True, mutex.acquire_cost)
        mutex.note_wait_started(process.pid, self.engine.now)
        if mutex.admission is not None and len(mutex.waiters) >= mutex.admission:
            # Malthusian restriction: park the excess waiter outside the
            # active FIFO; releases feed the culled set back in.
            mutex.note_culled(process)
            self.trace.emit(
                self.engine.now,
                "lock.cull",
                lock=mutex.name,
                pid=process.pid,
                culled=len(mutex.culled),
            )
        else:
            mutex.waiters.append(process)
        self._block_current(cpu, f"mutex:{mutex.name}")
        return False

    def _sys_mutex_release(
        self, cpu: int, process: Process, syscall: sc.MutexRelease
    ) -> bool:
        mutex = syscall.mutex
        mutex.note_released(process.pid)
        while mutex.waiters:
            waiter = mutex.waiters.pop(0)
            if waiter.state is ProcessState.TERMINATED:
                continue  # killed while parked (fault injection)
            mutex.note_acquired(waiter.pid, contended=True, now=self.engine.now)
            waiter.pending_syscall = None
            waiter.syscall_result = True
            self._wake(waiter)
            break
        if mutex.culled:
            self._mutex_readmit(mutex)
        return self._finish_syscall(cpu, process, None, mutex.release_cost)

    def _mutex_readmit(self, mutex: Any) -> None:
        """Feed one culled mutex waiter back after a release.

        Culled waiters are already blocked, so rejoining the active FIFO
        is just queue membership -- no wake until a later release grants
        them.  The culled set drains LIFO (newest first, the Malthusian
        cache-warmth rule); the active FIFO stays fair.  If the mutex
        went completely free, grant it directly so no release is wasted.
        """
        now = self.engine.now
        if mutex.held or mutex.waiters:
            if mutex.admission is not None and len(mutex.waiters) >= mutex.admission:
                return
            while mutex.culled:
                waiter = mutex.culled.pop()
                if waiter.state is ProcessState.TERMINATED:
                    continue  # killed while parked (fault injection)
                mutex.note_readmitted()
                mutex.waiters.append(waiter)
                self.trace.emit(
                    now, "lock.readmit", lock=mutex.name, pid=waiter.pid, direct=False
                )
                break
        else:
            while mutex.culled:
                waiter = mutex.culled.pop()
                if waiter.state is ProcessState.TERMINATED:
                    continue  # killed while parked (fault injection)
                mutex.note_readmitted()
                mutex.note_acquired(waiter.pid, contended=True, now=now)
                waiter.pending_syscall = None
                waiter.syscall_result = True
                self.trace.emit(
                    now, "lock.readmit", lock=mutex.name, pid=waiter.pid, direct=True
                )
                self._wake(waiter)
                break

    def _sys_sem_wait(self, cpu: int, process: Process, syscall: sc.SemWait) -> bool:
        sem = syscall.sem
        sem.waits += 1
        if sem.count > 0:
            sem.count -= 1
            return self._finish_syscall(cpu, process, None, sem.wait_cost)
        sem.waiters.append(process)
        self._block_current(cpu, f"sem:{sem.name}")
        return False

    def _sys_sem_post(self, cpu: int, process: Process, syscall: sc.SemPost) -> bool:
        sem = syscall.sem
        sem.posts += 1
        while sem.waiters:
            waiter = sem.waiters.pop(0)
            if waiter.state is ProcessState.TERMINATED:
                continue  # killed while parked (fault injection)
            waiter.pending_syscall = None
            waiter.syscall_result = None
            self._wake(waiter)
            break
        else:
            sem.count += 1
        return self._finish_syscall(cpu, process, None, sem.post_cost)

    def _sys_barrier_wait(
        self, cpu: int, process: Process, syscall: sc.BarrierWait
    ) -> bool:
        barrier = syscall.barrier
        if len(barrier.waiters) + 1 == barrier.parties:
            barrier.generation += 1
            barrier.trips += 1
            generation = barrier.generation
            waiters, barrier.waiters = barrier.waiters, []
            for waiter in waiters:
                waiter.pending_syscall = None
                waiter.syscall_result = generation
                self._wake(waiter)
            return self._finish_syscall(cpu, process, generation, barrier.wait_cost)
        barrier.waiters.append(process)
        self._block_current(cpu, f"barrier:{barrier.name}")
        return False

    def _sys_cond_wait(self, cpu: int, process: Process, syscall: sc.CondWait) -> bool:
        cond = syscall.cond
        mutex = cond.mutex
        if mutex.holder_pid != process.pid:
            raise SimulationError(
                f"CondWait by process {process.pid} without holding {mutex.name!r}"
            )
        mutex.note_released(process.pid)
        if mutex.waiters:
            waiter = mutex.waiters.pop(0)
            mutex.note_acquired(waiter.pid, contended=True)
            waiter.pending_syscall = None
            waiter.syscall_result = True
            self._wake(waiter)
        cond.waiters.append(process)
        self._block_current(cpu, f"cond:{cond.name}")
        return False

    def _wake_cond_waiter(self, cond: Any, waiter: Process) -> None:
        """Move a condvar waiter to the mutex (Mesa semantics)."""
        mutex = cond.mutex
        waiter.pending_syscall = None
        waiter.syscall_result = True
        if not mutex.held:
            mutex.note_acquired(waiter.pid, contended=True)
            self._wake(waiter)
        else:
            # Stays blocked, now on the mutex queue; wait returns when the
            # mutex is handed over.
            waiter.block_reason = f"mutex:{mutex.name}"
            mutex.waiters.append(waiter)

    def _sys_cond_signal(
        self, cpu: int, process: Process, syscall: sc.CondSignal
    ) -> bool:
        cond = syscall.cond
        cond.signals += 1
        while cond.waiters:
            waiter = cond.waiters.pop(0)
            if waiter.state is ProcessState.TERMINATED:
                continue  # killed while parked (fault injection)
            self._wake_cond_waiter(cond, waiter)
            break
        return self._finish_syscall(cpu, process, None, cond.wait_cost)

    def _sys_cond_broadcast(
        self, cpu: int, process: Process, syscall: sc.CondBroadcast
    ) -> bool:
        cond = syscall.cond
        cond.broadcasts += 1
        waiters, cond.waiters = cond.waiters, []
        for waiter in waiters:
            if waiter.state is ProcessState.TERMINATED:
                continue  # killed while parked (fault injection)
            self._wake_cond_waiter(cond, waiter)
        return self._finish_syscall(cpu, process, None, cond.wait_cost)

    def _sys_sleep(self, cpu: int, process: Process, syscall: sc.Sleep) -> bool:
        duration = syscall.duration
        process.pending_syscall = None
        process.syscall_result = None
        self._block_current(cpu, "sleep")
        self.engine.schedule(
            max(duration, self.config.sleep_cost),
            partial(self._sleep_wake, process),
            "sleep-wake",
        )
        return False

    def _sleep_wake(self, process: Process) -> None:
        # The sleeper may have been killed while parked (fault injection);
        # a sleeping process can only leave BLOCKED through this event or
        # through kill, so a non-BLOCKED state here means a corpse.
        if process.state is ProcessState.BLOCKED:
            self._wake(process)

    def _sys_wait_signal(
        self, cpu: int, process: Process, syscall: sc.WaitSignal
    ) -> bool:
        if process.pending_signals:
            payload = process.pending_signals.pop(0)
            return self._finish_syscall(cpu, process, payload, self.config.signal_cost)
        process.waiting_signal = True
        process.stats.suspensions += 1
        process.pending_syscall = None
        self._block_current(cpu, "signal")
        return False

    def _sys_send_signal(
        self, cpu: int, process: Process, syscall: sc.SendSignal
    ) -> bool:
        target = self.processes.get(syscall.pid)
        process.stats.signals_sent += 1
        if target is None or not target.alive:
            return self._finish_syscall(cpu, process, False, self.config.signal_cost)
        if target.waiting_signal:
            target.waiting_signal = False
            target.syscall_result = syscall.payload
            self._wake(target)
        else:
            target.pending_signals.append(syscall.payload)
        if self._want_signal_trace:
            self.trace.emit(
                self.engine.now, "kernel.signal", src=process.pid, dst=syscall.pid
            )
        return self._finish_syscall(cpu, process, True, self.config.signal_cost)

    def _sys_fork(self, cpu: int, process: Process, syscall: sc.Fork) -> bool:
        child = self.spawn(
            syscall.program,
            name=syscall.name,
            app_id=process.app_id,
            controllable=process.controllable,
            daemon=syscall.daemon,
            ppid=process.pid,
            cache_footprint=process.cache_footprint,
        )
        return self._finish_syscall(cpu, process, child.pid, self.config.fork_cost)

    def _sys_exit(self, cpu: int, process: Process, syscall: sc.Exit) -> bool:
        self._exit_current(cpu)
        return False

    def _sys_wait_pid(self, cpu: int, process: Process, syscall: sc.WaitPid) -> bool:
        target = self.processes.get(syscall.pid)
        if target is None:
            return self._finish_syscall(cpu, process, False, self.config.yield_cost)
        if not target.alive:
            return self._finish_syscall(cpu, process, True, self.config.yield_cost)
        if target.pid == process.pid:
            raise SimulationError(f"process {process.pid} waiting on itself")
        target.join_waiters.append(process)
        self._block_current(cpu, f"waitpid:{target.pid}")
        return False

    def _sys_yield(self, cpu: int, process: Process, syscall: sc.Yield) -> bool:
        process.pending_syscall = None
        process.syscall_result = None
        yielded = self._undispatch(cpu)
        yielded.state = ProcessState.READY
        yielded.ready_since = self.engine.now
        self.policy.enqueue(yielded, "yield")
        if self._want_yield_trace:
            self.trace.emit(self.engine.now, "kernel.yield", pid=yielded.pid, cpu=cpu)
        self._request_dispatch()
        return False

    def _sys_get_runnable(
        self, cpu: int, process: Process, syscall: sc.GetRunnableInfo
    ) -> bool:
        snapshot = self.runnable_snapshot()
        alive = sum(1 for p in self.processes.values() if p.alive)
        cost = (
            self.config.getrunnable_base_cost
            + self.config.getrunnable_per_process_cost * alive
        )
        return self._finish_syscall(cpu, process, snapshot, cost)

    def _sys_get_process_table(
        self, cpu: int, process: Process, syscall: sc.GetProcessTable
    ) -> bool:
        table = [p.info() for p in self.processes.values() if p.alive]
        cost = (
            self.config.getrunnable_base_cost
            + self.config.getrunnable_per_process_cost * len(table)
        )
        return self._finish_syscall(cpu, process, table, cost)

    def _sys_get_load_summary(
        self, cpu: int, process: Process, syscall: sc.GetLoadSummary
    ) -> bool:
        """The sparse-census sibling of :meth:`_sys_get_process_table`.

        Snapshots the incrementally-maintained counters at syscall-entry
        time (exactly when the table scan would have been taken) and
        charges the same per-alive-process cost, so swapping a server from
        the table call to this one leaves the simulated timeline
        bit-identical while making the host-side scan O(changes).
        """
        uncontrolled = self._uncontrolled_runnable
        for pid in syscall.exclude_pids:
            p = self.processes.get(pid)
            if (
                p is not None
                and not p.controllable
                and p.state in RUNNABLE_STATES
            ):
                uncontrolled -= 1
        alive = self._alive_total
        if self._check_census:
            self._verify_census(syscall.exclude_pids, uncontrolled, alive)
        summary = sc.LoadSummary(
            journal_len=len(self._census_journal),
            uncontrolled_runnable=uncontrolled,
            alive=alive,
            runnable_by_app={
                app: count
                for app, count in self._runnable_per_app.items()
                if app is not None
            },
        )
        cost = (
            self.config.getrunnable_base_cost
            + self.config.getrunnable_per_process_cost * alive
        )
        return self._finish_syscall(cpu, process, summary, cost)

    def _verify_census(
        self, exclude_pids: tuple, uncontrolled: int, alive: int
    ) -> None:
        """Sparse-census oracle (REPRO_SANITIZE): the incremental counters
        and the journal-replayed per-application totals must agree with a
        full table walk taken at this very instant."""
        walk_alive = 0
        walk_uncontrolled = 0
        walk_totals: Dict[str, int] = {}
        excluded = set(exclude_pids)
        for p in self.processes.values():
            if not p.alive:
                continue
            walk_alive += 1
            if p.controllable:
                if p.app_id is not None:
                    walk_totals[p.app_id] = walk_totals.get(p.app_id, 0) + 1
            elif p.state in RUNNABLE_STATES and p.pid not in excluded:
                walk_uncontrolled += 1
        replayed = {a: t for a, t in self._app_alive.items() if t > 0}
        if (
            walk_alive != alive
            or walk_uncontrolled != uncontrolled
            or walk_totals != replayed
        ):
            raise SimulationError(
                "sparse census diverged from the process table: "
                f"alive {alive} vs {walk_alive}, uncontrolled "
                f"{uncontrolled} vs {walk_uncontrolled}, per-app "
                f"{replayed} vs {walk_totals}"
            )

    def _sys_set_no_preempt(
        self, cpu: int, process: Process, syscall: sc.SetNoPreempt
    ) -> bool:
        process.no_preempt = syscall.flag
        process.pending_syscall = None
        process.syscall_result = None
        if not syscall.flag and process.deferred_preempt:
            process.deferred_preempt = False
            if self.policy.has_waiting(cpu):
                self._preempt(cpu, reason="deferred")
                return False
        return True

    def _sys_channel_send(
        self, cpu: int, process: Process, syscall: sc.ChannelSend
    ) -> bool:
        channel: Channel = syscall.channel
        if channel.full:
            channel.send_waiters.append((process, syscall.message))
            self._block_current(cpu, f"chan-send:{channel.name}")
            return False
        # Fault injection: a filter may drop ([]) or duplicate ([m, m])
        # the message.  None (the default) is the healthy fast path.
        if channel.fault_filter is None:
            deliveries = (syscall.message,)
        else:
            deliveries = channel.fault_filter(syscall.message)
        for message in deliveries:
            channel.messages.append(message)
            channel.sends += 1
            if channel.recv_waiters:
                receiver = channel.recv_waiters.pop(0)
                receiver.pending_syscall = None
                receiver.syscall_result = channel.messages.popleft()
                channel.receives += 1
                self._wake(receiver)
        return self._finish_syscall(cpu, process, None, self.config.channel_op_cost)

    def _sys_channel_receive(
        self, cpu: int, process: Process, syscall: sc.ChannelReceive
    ) -> bool:
        channel: Channel = syscall.channel
        if channel.messages:
            message = channel.messages.popleft()
            channel.receives += 1
            if channel.send_waiters:
                sender, pending = channel.send_waiters.pop(0)
                channel.messages.append(pending)
                channel.sends += 1
                sender.pending_syscall = None
                sender.syscall_result = None
                self._wake(sender)
            return self._finish_syscall(
                cpu, process, message, self.config.channel_op_cost
            )
        channel.recv_waiters.append(process)
        self._block_current(cpu, f"chan-recv:{channel.name}")
        return False

    _HANDLERS = {
        sc.Compute: _sys_compute,
        sc.SpinAcquire: _sys_spin_acquire,
        sc.SpinRelease: _sys_spin_release,
        sc.MutexAcquire: _sys_mutex_acquire,
        sc.MutexRelease: _sys_mutex_release,
        sc.SemWait: _sys_sem_wait,
        sc.SemPost: _sys_sem_post,
        sc.BarrierWait: _sys_barrier_wait,
        sc.CondWait: _sys_cond_wait,
        sc.CondSignal: _sys_cond_signal,
        sc.CondBroadcast: _sys_cond_broadcast,
        sc.Sleep: _sys_sleep,
        sc.WaitSignal: _sys_wait_signal,
        sc.SendSignal: _sys_send_signal,
        sc.Fork: _sys_fork,
        sc.Exit: _sys_exit,
        sc.WaitPid: _sys_wait_pid,
        sc.Yield: _sys_yield,
        sc.GetRunnableInfo: _sys_get_runnable,
        sc.GetProcessTable: _sys_get_process_table,
        sc.GetLoadSummary: _sys_get_load_summary,
        sc.SetNoPreempt: _sys_set_no_preempt,
        sc.ChannelSend: _sys_channel_send,
        sc.ChannelReceive: _sys_channel_receive,
    }
