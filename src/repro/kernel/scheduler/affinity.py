"""Cache-affinity scheduling (Lazowska & Squillante; Section 3).

"A process should be scheduled on the processor on which it last executed
(before being preempted), where hopefully a large fraction of its working
set is still present in the processor's cache.  However, if this policy is
strictly followed it can lead to load imbalance ..."

We implement the *bounded* affinity variant the authors propose evaluating:
``dequeue`` scans a window at the head of the FIFO queue and picks the
process with the highest cache warmth on the requesting processor, provided
its warmth beats a threshold; otherwise the head of the queue runs (plain
FIFO), which preserves load balance.  A strict variant (``strict=True``)
only accepts processes whose last processor was this one, demonstrating the
imbalance problem in the ablation benchmarks.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Optional

from repro.kernel.process import Process, ProcessState
from repro.kernel.scheduler.base import SchedulerPolicy


class AffinityScheduler(SchedulerPolicy):
    """FIFO queue with a cache-affinity selection window."""

    def __init__(
        self,
        scan_depth: int = 8,
        warmth_threshold: float = 0.10,
        strict: bool = False,
    ) -> None:
        super().__init__()
        if scan_depth < 1:
            raise ValueError("scan_depth must be >= 1")
        if not 0.0 <= warmth_threshold <= 1.0:
            raise ValueError("warmth_threshold must be within [0, 1]")
        self.scan_depth = scan_depth
        self.warmth_threshold = warmth_threshold
        self.strict = strict
        self._queue: Deque[Process] = deque()
        self.affinity_hits = 0
        self.affinity_misses = 0

    def enqueue(self, process: Process, reason: str) -> None:
        if process.state is not ProcessState.READY:
            raise ValueError(
                f"enqueue of process {process.pid} in state {process.state.name}"
            )
        self._queue.append(process)

    def dequeue(self, cpu: int) -> Optional[Process]:
        cache = self.kernel.machine.cache
        best: Optional[Process] = None
        best_warmth = -1.0
        head: Optional[Process] = None
        scanned = 0
        for process in self._queue:
            if process.state is not ProcessState.READY:
                continue
            if head is None:
                head = process
            scanned += 1
            if scanned > self.scan_depth:
                break
            warmth = cache.warmth(cpu, process.pid)
            if warmth > best_warmth:
                best, best_warmth = process, warmth
        if self.strict:
            # Strict affinity: only run processes that last ran here (or
            # have never run anywhere).  Demonstrates load imbalance.
            for process in self._queue:
                if process.state is not ProcessState.READY:
                    continue
                if process.last_cpu in (None, cpu):
                    self._queue.remove(process)
                    return process
            return None
        if best is not None and best_warmth >= self.warmth_threshold:
            self.affinity_hits += 1
            self._queue.remove(best)
            return best
        self.affinity_misses += 1
        if head is not None:
            self._queue.remove(head)
        return head

    def has_waiting(self, cpu: int) -> bool:
        if self.strict:
            return any(
                p.state is ProcessState.READY and p.last_cpu in (None, cpu)
                for p in self._queue
            )
        return any(p.state is ProcessState.READY for p in self._queue)

    def queued_census(self):
        census = {}
        for process in self._queue:
            census[process.pid] = census.get(process.pid, 0) + 1
        return census

    def on_process_exit(self, process: Process) -> None:
        try:
            self._queue.remove(process)
        except ValueError:
            pass
