"""Reference O(n) rescan implementation of priority-decay scheduling.

:class:`~repro.kernel.scheduler.decay.PriorityDecayScheduler` earns its
O(log n) dequeue through two tricks that are easy to get subtly wrong:
epoch-normalized heap keys (so entries minted at different times stay
comparable without re-keying) and lazy invalidation of stale entries via
per-pid sequence numbers.  This module provides the differential oracle's
ground truth: the same usage-decay arithmetic, but the run queue is a plain
list and ``dequeue`` is a linear scan for the minimum key.  No heap, no
lazy skipping on pop -- stale entries are pruned eagerly during the scan.

Both schedulers must produce **bit-identical** dispatch traces on any
workload; :mod:`repro.sanitize.oracle` asserts exactly that.  To make a
divergence meaningful the key arithmetic is shared (``_decayed_usage`` and
``_normalized_key`` are inherited, so usage estimates evolve through the
identical sequence of float operations) while the queue mechanics are
reimplemented from scratch.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.kernel.process import Process, ProcessState
from repro.kernel.scheduler.decay import PriorityDecayScheduler


class ReferenceDecayScheduler(PriorityDecayScheduler):
    """Priority-decay scheduling by O(n) rescan over a plain list."""

    def __init__(self, half_life: Optional[int] = None) -> None:
        if half_life is None:
            super().__init__()
        else:
            super().__init__(half_life=half_life)
        # Shadow the heap with a plain insertion-ordered list of
        # (key, seq, process).  ``_queued`` keeps its base-class meaning:
        # pid -> seq of the live entry.
        self._entries: List[Tuple[float, int, Process]] = []

    def enqueue(self, process: Process, reason: str) -> None:
        if process.state is not ProcessState.READY:
            raise ValueError(
                f"enqueue of process {process.pid} in state {process.state.name}"
            )
        usage = self._decayed_usage(process)
        key = self._normalized_key(usage, self.kernel.engine.now)
        seq = self._next_seq
        self._next_seq += 1
        self._queued[process.pid] = seq
        self._entries.append((key, seq, process))

    def dequeue(self, cpu: int) -> Optional[Process]:
        queued = self._queued
        while True:
            # Prune stale entries (superseded or exited) eagerly, then scan
            # the survivors for the minimum (key, seq) -- the same total
            # order the heap pops in, since seqs are unique.
            live = [
                entry
                for entry in self._entries
                if queued.get(entry[2].pid) == entry[1]
            ]
            self._entries = live
            if not live:
                return None
            best = min(live, key=lambda entry: (entry[0], entry[1]))
            self._entries.remove(best)
            process = best[2]
            del queued[process.pid]
            if process.state is not ProcessState.READY:
                continue  # defensive: never hand out a non-READY process
            self._decayed_usage(process)
            return process

    def _rebase(self, now: int) -> None:
        self._epoch = now
        rebuilt: List[Tuple[float, int, Process]] = []
        for _key, seq, process in self._entries:
            if self._queued.get(process.pid) != seq:
                continue
            usage = self._decayed_usage(process)  # exponent is now zero
            rebuilt.append((usage, seq, process))
        self._entries = rebuilt

    def queued_census(self):
        return {pid: 1 for pid in self._queued}
