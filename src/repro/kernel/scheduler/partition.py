"""Space partitioning with processor groups (the paper's Section 7).

The paper's future-work design: "dynamically partitioning processors in a
machine into processor groups ... usually one processor group per parallel
application ... a separate processor group for single-process applications
... managed by a high level policy module", with per-group run queues and
ordinary scheduling inside each group.

Two pieces:

* :func:`compute_partitions` -- the **policy module**: given the set of
  active applications and the count of stand-alone (single-process /
  daemon) processes, decide how many processors each group gets and which
  ones.  Pure function, separately unit-tested.
* :class:`SpacePartitionScheduler` -- the mechanism: one FIFO queue per
  group; a processor only runs processes of the group it belongs to.
  Partitions are recomputed when applications arrive or depart.

Combined with process control this removes the unfair-hogging problem the
paper describes (an uncontrolled application can no longer steal the whole
machine from a controlled one) and keeps each processor's cache populated
by a single application.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Dict, List, Optional, Sequence

from repro.kernel.process import Process, ProcessState
from repro.kernel.scheduler.base import SchedulerPolicy

#: Group key for processes that belong to no application.
SYSTEM_GROUP = "<system>"


def compute_partitions(
    n_processors: int,
    app_ids: Sequence[str],
    n_system_processes: int,
    app_process_counts: Optional[Dict[str, int]] = None,
) -> Dict[str, List[int]]:
    """The policy module: assign processors to groups.

    Rules (following Section 7's sketch):

    * if any stand-alone/system processes exist, the system group gets
      processors proportional to its share of the total *process* load
      (one compiler among two 16-process applications deserves about one
      processor, not a third of the machine), but always at least one;
    * the remaining processors are divided equally among applications,
      remainder going to the earliest-arrived applications;
    * every application group gets at least one processor; if there are
      more applications than processors, applications share groups
      round-robin (the paper: "multiple applications may have to be
      assigned to the same processor group").

    *app_process_counts* gives each application's process count for the
    load weighting; when omitted, each application is assumed to be
    machine-sized (i.e. the system share is computed against
    ``n_processors`` processes per application).

    Returns a mapping from group key (application id or
    :data:`SYSTEM_GROUP`) to the list of processor ids it owns.  Every
    processor appears in exactly one group.
    """
    if n_processors < 1:
        raise ValueError("n_processors must be >= 1")
    if n_system_processes < 0:
        raise ValueError("n_system_processes must be >= 0")
    apps = list(app_ids)
    partitions: Dict[str, List[int]] = {}
    cursor = 0

    n_system_cpus = 0
    if n_system_processes > 0:
        if not apps:
            n_system_cpus = n_processors
        else:
            if app_process_counts is None:
                app_load = n_processors * len(apps)
            else:
                app_load = sum(
                    app_process_counts.get(app_id, n_processors)
                    for app_id in apps
                )
            total_load = n_system_processes + max(app_load, 1)
            share = round(n_processors * n_system_processes / total_load)
            n_system_cpus = max(1, min(share, n_processors - 1))
        partitions[SYSTEM_GROUP] = list(range(cursor, cursor + n_system_cpus))
        cursor += n_system_cpus

    remaining = n_processors - cursor
    if apps:
        if remaining == 0:
            # Degenerate: give applications the last system processor.
            remaining = 1
            cursor -= 1
            partitions[SYSTEM_GROUP] = partitions[SYSTEM_GROUP][:-1]
        if len(apps) <= remaining:
            base = remaining // len(apps)
            extra = remaining % len(apps)
            for index, app_id in enumerate(apps):
                width = base + (1 if index < extra else 0)
                partitions[app_id] = list(range(cursor, cursor + width))
                cursor += width
        else:
            # More applications than processors: share groups round-robin.
            for index in range(remaining):
                partitions[apps[index]] = [cursor + index]
            for index in range(remaining, len(apps)):
                partitions[apps[index]] = partitions[apps[index % remaining]]
    return partitions


class SpacePartitionScheduler(SchedulerPolicy):
    """Per-group run queues over a dynamic processor partition."""

    def __init__(self) -> None:
        super().__init__()
        self._queues: Dict[str, Deque[Process]] = {}
        self._cpu_owner: Dict[int, str] = {}
        self._partitions: Dict[str, List[int]] = {}
        self._active_apps: List[str] = []  # arrival order
        self._app_process_count: Dict[str, int] = {}
        self._system_process_count = 0
        self.repartitions = 0

    # -- group helpers -----------------------------------------------------

    @staticmethod
    def _group_key(process: Process) -> str:
        return process.app_id if process.app_id is not None else SYSTEM_GROUP

    def partition_of(self, group: str) -> List[int]:
        """Processors currently owned by *group* (diagnostics/tests)."""
        return list(self._partitions.get(group, []))

    def _queue_for(self, group: str) -> Deque[Process]:
        queue = self._queues.get(group)
        if queue is None:
            queue = deque()
            self._queues[group] = queue
        return queue

    def _repartition(self) -> None:
        self.repartitions += 1
        # Partition only the processors that are actually online; positions
        # returned by the pure policy function map through the online list,
        # so a hot-unplugged cpu simply vanishes from every group.
        online = self.kernel.online_cpus()
        slots = compute_partitions(
            len(online),
            self._active_apps,
            self._system_process_count,
            app_process_counts=dict(self._app_process_count),
        )
        self._partitions = {
            group: [online[index] for index in indices]
            for group, indices in slots.items()
        }
        self._cpu_owner = {}
        for group, cpus in self._partitions.items():
            for cpu in cpus:
                self._cpu_owner[cpu] = group
        # Processors whose owner changed pick up the right work at their
        # next quantum expiry (has_waiting consults the new owner); idle
        # ones can act immediately.
        if self.kernel is not None:
            self.kernel.request_dispatch()

    # -- policy interface -----------------------------------------------------

    def on_process_spawn(self, process: Process) -> None:
        group = self._group_key(process)
        if group == SYSTEM_GROUP:
            self._system_process_count += 1
            if self._system_process_count == 1:
                self._repartition()
        else:
            count = self._app_process_count.get(group, 0)
            self._app_process_count[group] = count + 1
            if count == 0:
                self._active_apps.append(group)
                self._repartition()

    def on_process_exit(self, process: Process) -> None:
        group = self._group_key(process)
        queue = self._queues.get(group)
        if queue is not None:
            try:
                queue.remove(process)
            except ValueError:
                pass
        if group == SYSTEM_GROUP:
            self._system_process_count -= 1
            if self._system_process_count == 0:
                self._repartition()
        else:
            self._app_process_count[group] -= 1
            if self._app_process_count[group] == 0:
                del self._app_process_count[group]
                self._active_apps.remove(group)
                self._repartition()

    def on_cpu_offline(self, cpu: int) -> None:
        self._repartition()

    def on_cpu_online(self, cpu: int) -> None:
        self._repartition()

    def enqueue(self, process: Process, reason: str) -> None:
        if process.state is not ProcessState.READY:
            raise ValueError(
                f"enqueue of process {process.pid} in state {process.state.name}"
            )
        self._queue_for(self._group_key(process)).append(process)

    def dequeue(self, cpu: int) -> Optional[Process]:
        owner = self._cpu_owner.get(cpu)
        if owner is None:
            return None
        queue = self._queues.get(owner)
        if not queue:
            return None
        for _ in range(len(queue)):
            process = queue.popleft()
            if process.state is ProcessState.READY:
                return process
            if process.state is not ProcessState.TERMINATED:
                queue.append(process)
        return None

    def has_waiting(self, cpu: int) -> bool:
        owner = self._cpu_owner.get(cpu)
        if owner is None:
            return False
        queue = self._queues.get(owner)
        if not queue:
            return False
        return any(p.state is ProcessState.READY for p in queue)

    def queued_census(self):
        census = {}
        for queue in self._queues.values():
            for process in queue:
                census[process.pid] = census.get(process.pid, 0) + 1
        return census
