"""Pluggable kernel scheduling policies.

The paper's experiments run on UMAX's shared FIFO run queue with time
quanta (:class:`~repro.kernel.scheduler.fifo.FifoScheduler`).  The related
work of Section 3 and the future work of Section 7 are implemented as
alternative policies so the benchmark suite can compare them:

- :class:`~repro.kernel.scheduler.fifo.FifoScheduler` -- shared FIFO run
  queue, round-robin quanta (the UMAX baseline).
- :class:`~repro.kernel.scheduler.decay.PriorityDecayScheduler` -- UMAX/BSD
  style CPU-usage priority decay; explains the paper's observation that
  freshly started applications (matmul in Figure 4) are favoured.
- :class:`~repro.kernel.scheduler.coscheduling.CoschedulingScheduler` --
  Ousterhout's gang scheduling.
- :class:`~repro.kernel.scheduler.nopreempt.NoPreemptAwareScheduler` --
  honours Zahorjan-style no-preempt flags and deprioritizes spinners whose
  lock holder is preempted.
- :class:`~repro.kernel.scheduler.groups.ProcessGroupScheduler` -- Edler et
  al. (NYU Ultracomputer) process groups with per-group policies.
- :class:`~repro.kernel.scheduler.affinity.AffinityScheduler` -- Lazowska &
  Squillante cache-affinity scheduling.
- :class:`~repro.kernel.scheduler.partition.SpacePartitionScheduler` -- the
  paper's Section 7 processor-group space partitioning with a high-level
  policy module.
"""

from repro.kernel.scheduler.base import SchedulerPolicy
from repro.kernel.scheduler.fifo import FifoScheduler
from repro.kernel.scheduler.decay import PriorityDecayScheduler
from repro.kernel.scheduler.decay_ref import ReferenceDecayScheduler
from repro.kernel.scheduler.coscheduling import CoschedulingScheduler
from repro.kernel.scheduler.nopreempt import NoPreemptAwareScheduler
from repro.kernel.scheduler.groups import GroupPolicy, ProcessGroupScheduler
from repro.kernel.scheduler.affinity import AffinityScheduler
from repro.kernel.scheduler.partition import SpacePartitionScheduler

__all__ = [
    "SchedulerPolicy",
    "FifoScheduler",
    "PriorityDecayScheduler",
    "ReferenceDecayScheduler",
    "CoschedulingScheduler",
    "NoPreemptAwareScheduler",
    "GroupPolicy",
    "ProcessGroupScheduler",
    "AffinityScheduler",
    "SpacePartitionScheduler",
]
