"""The UMAX-like baseline: one shared FIFO run queue, round-robin quanta.

This is the discipline the paper's Figure 1 discussion assumes:
"unscheduled processes are placed on a FIFO queue, and the more unscheduled
processes there are, the longer it takes for a preempted process to get to
the front of the queue and be rescheduled."

Preempted, yielded, newly created, and newly unblocked processes all join
the tail.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Optional

from repro.kernel.process import Process, ProcessState
from repro.kernel.scheduler.base import SchedulerPolicy


class FifoScheduler(SchedulerPolicy):
    """Single shared FIFO run queue (the paper's baseline kernel policy)."""

    shared_queue = True

    def __init__(self) -> None:
        super().__init__()
        self._queue: Deque[Process] = deque()

    def enqueue(self, process: Process, reason: str) -> None:
        if process.state is not ProcessState.READY:
            raise ValueError(
                f"enqueue of process {process.pid} in state {process.state.name}"
            )
        self._queue.append(process)

    def dequeue(self, cpu: int) -> Optional[Process]:
        # Skip any process that terminated while queued (defensive; the
        # kernel never leaves terminated processes queued today).
        while self._queue:
            process = self._queue.popleft()
            if process.state is ProcessState.READY:
                return process
        return None

    def has_waiting(self, cpu: int) -> bool:
        return any(p.state is ProcessState.READY for p in self._queue)

    def queue_length(self) -> int:
        """Current run-queue length (diagnostics and tests)."""
        return len(self._queue)

    def queued_census(self):
        census = {}
        for process in self._queue:
            census[process.pid] = census.get(process.pid, 0) + 1
        return census

    def on_process_exit(self, process: Process) -> None:
        # Cheap removal attempt keeps the queue tidy if a queued process is
        # ever terminated externally.
        try:
            self._queue.remove(process)
        except ValueError:
            pass
