"""UMAX/BSD-style priority-decay scheduling.

4.2 BSD (and UMAX, its Multimax derivative) relates priority to recent CPU
usage: the more CPU a process has consumed lately, the worse its priority.
The paper leans on this to explain Figure 4: "processes just starting up may
have higher priority than slightly older processes due to the relation of
priority to past CPU use" -- which is why the freshly started, uncontrolled
matmul was barely hurt.

Model: each process carries a usage estimate.  When a process is enqueued,
its usage is decayed exponentially by the time since its last enqueue and
incremented by the CPU it just consumed.  ``dequeue`` picks the READY
process with the *lowest* usage (best priority); ties go to FIFO order.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.kernel.process import Process, ProcessState
from repro.kernel.scheduler.base import SchedulerPolicy
from repro.sim import units


class PriorityDecayScheduler(SchedulerPolicy):
    """Priority run queue with exponential usage decay.

    Attributes:
        half_life: usage halves every this many microseconds of wall time.
    """

    def __init__(self, half_life: int = units.seconds(15)) -> None:
        super().__init__()
        if half_life <= 0:
            raise ValueError("half_life must be positive")
        self.half_life = half_life
        self._queue: List[Process] = []
        self._seq: Dict[int, int] = {}
        self._next_seq = 0
        # usage bookkeeping: pid -> (usage_estimate, last_update, cpu_time_then)
        self._usage: Dict[int, Tuple[float, int, int]] = {}

    def _decayed_usage(self, process: Process) -> float:
        now = self.kernel.now
        # Spin time is real processor consumption: without it, a process
        # busy-waiting on a preempted lock holder would keep a *better*
        # priority than the holder and could starve it indefinitely.
        consumed = process.stats.cpu_time + process.stats.spin_time
        usage, last_update, consumed_then = self._usage.get(
            process.pid, (0.0, now, consumed)
        )
        new_cpu = consumed - consumed_then
        elapsed = now - last_update
        decay = 0.5 ** (elapsed / self.half_life) if elapsed > 0 else 1.0
        usage = usage * decay + new_cpu
        self._usage[process.pid] = (usage, now, consumed)
        process.priority = usage
        return usage

    def enqueue(self, process: Process, reason: str) -> None:
        if process.state is not ProcessState.READY:
            raise ValueError(
                f"enqueue of process {process.pid} in state {process.state.name}"
            )
        self._decayed_usage(process)
        self._seq[process.pid] = self._next_seq
        self._next_seq += 1
        self._queue.append(process)

    def dequeue(self, cpu: int) -> Optional[Process]:
        best: Optional[Process] = None
        best_key: Optional[Tuple[float, int]] = None
        for process in self._queue:
            if process.state is not ProcessState.READY:
                continue
            key = (self._decayed_usage(process), self._seq[process.pid])
            if best_key is None or key < best_key:
                best, best_key = process, key
        if best is not None:
            self._queue.remove(best)
        return best

    def has_waiting(self, cpu: int) -> bool:
        return any(p.state is ProcessState.READY for p in self._queue)

    def on_process_exit(self, process: Process) -> None:
        self._usage.pop(process.pid, None)
        self._seq.pop(process.pid, None)
        try:
            self._queue.remove(process)
        except ValueError:
            pass
