"""UMAX/BSD-style priority-decay scheduling.

4.2 BSD (and UMAX, its Multimax derivative) relates priority to recent CPU
usage: the more CPU a process has consumed lately, the worse its priority.
The paper leans on this to explain Figure 4: "processes just starting up may
have higher priority than slightly older processes due to the relation of
priority to past CPU use" -- which is why the freshly started, uncontrolled
matmul was barely hurt.

Model: each process carries a usage estimate.  When a process is enqueued,
its usage is decayed exponentially by the time since its last update and
incremented by the CPU it just consumed.  ``dequeue`` picks the READY
process with the *lowest* usage (best priority); ties go to FIFO order.

Implementation: dequeue is O(log n) via a min-heap of *epoch-normalized*
keys, not an O(n) rescan.  A READY process consumes no CPU while queued,
so between enqueue (time ``t``) and any later dequeue (time ``now``) its
usage evolves purely multiplicatively::

    usage(now) = usage(t) * 0.5 ** ((now - t) / half_life)

Dividing every queued process's usage by the common factor
``0.5 ** ((now - epoch) / half_life)`` yields the time-independent key

    key = usage(t) * 2.0 ** ((t - epoch) / half_life)

which preserves the ordering of the decayed usages at every future
instant -- so the heap never needs re-keying.  ``epoch`` is rebased
(all keys rebuilt) long before ``2.0 ** ((t - epoch) / half_life)`` can
overflow a double; rebasing happens at deterministic simulated times, so
traces stay reproducible.
"""

from __future__ import annotations

import heapq
from typing import Dict, List, Optional, Tuple

from repro.kernel.process import Process, ProcessState
from repro.kernel.scheduler.base import SchedulerPolicy
from repro.sim import units

#: Rebase the key epoch once the exponent exceeds this many half-lives.
#: 2.0**512 ~ 1.3e154: far from double overflow (~1.8e308) even after
#: multiplying by microsecond-scale usage values.
_REBASE_HALF_LIVES = 512.0


class PriorityDecayScheduler(SchedulerPolicy):
    """Priority run queue with exponential usage decay.

    Attributes:
        half_life: usage halves every this many microseconds of wall time.
    """

    shared_queue = True

    def __init__(self, half_life: int = units.seconds(15)) -> None:
        super().__init__()
        if half_life <= 0:
            raise ValueError("half_life must be positive")
        self.half_life = half_life
        # usage bookkeeping: pid -> (usage_estimate, last_update, cpu_time_then)
        self._usage: Dict[int, Tuple[float, int, int]] = {}
        # run queue: heap of (normalized_key, seq, process); stale entries
        # (re-enqueued or exited processes) are skipped lazily on pop.
        self._heap: List[Tuple[float, int, Process]] = []
        # pid -> seq of its live heap entry (also the READY-census for
        # has_waiting); a pid absent here has no live entry.
        self._queued: Dict[int, int] = {}
        self._next_seq = 0
        self._epoch = 0

    def _decayed_usage(self, process: Process) -> float:
        """Materialize *process*'s usage estimate at the current time."""
        now = self.kernel.engine.now
        # Spin time is real processor consumption: without it, a process
        # busy-waiting on a preempted lock holder would keep a *better*
        # priority than the holder and could starve it indefinitely.
        stats = process.stats
        consumed = stats.cpu_time + stats.spin_time
        pid = process.pid
        try:
            usage, last_update, consumed_then = self._usage[pid]
        except KeyError:
            usage, last_update, consumed_then = 0.0, now, consumed
        new_cpu = consumed - consumed_then
        elapsed = now - last_update
        decay = 0.5 ** (elapsed / self.half_life) if elapsed > 0 else 1.0
        usage = usage * decay + new_cpu
        self._usage[pid] = (usage, now, consumed)
        process.priority = usage
        return usage

    def _normalized_key(self, usage: float, now: int) -> float:
        """Usage rescaled so keys minted at different times stay comparable."""
        exponent = (now - self._epoch) / self.half_life
        if exponent > _REBASE_HALF_LIVES:
            self._rebase(now)
            exponent = 0.0
        return usage * 2.0 ** exponent

    def _rebase(self, now: int) -> None:
        """Move the key epoch to *now*, rebuilding every live heap entry."""
        self._epoch = now
        live: List[Tuple[float, int, Process]] = []
        for _key, seq, process in self._heap:
            if self._queued.get(process.pid) != seq:
                continue  # stale entry: drop during the rebuild
            usage = self._decayed_usage(process)  # exponent is now zero
            live.append((usage, seq, process))
        heapq.heapify(live)
        self._heap = live

    def enqueue(self, process: Process, reason: str) -> None:
        if process.state is not ProcessState.READY:
            raise ValueError(
                f"enqueue of process {process.pid} in state {process.state.name}"
            )
        usage = self._decayed_usage(process)
        key = self._normalized_key(usage, self.kernel.engine.now)
        seq = self._next_seq
        self._next_seq += 1
        self._queued[process.pid] = seq
        heapq.heappush(self._heap, (key, seq, process))

    def dequeue(self, cpu: int) -> Optional[Process]:
        heap = self._heap
        queued = self._queued
        while heap:
            _key, seq, process = heapq.heappop(heap)
            if queued.get(process.pid) != seq:
                continue  # re-enqueued or exited since this entry was minted
            del queued[process.pid]
            if process.state is not ProcessState.READY:
                continue  # defensive: never hand out a non-READY process
            # Materialize usage at dispatch time so the estimate picked up
            # by the next enqueue has decayed across the queue wait.
            self._decayed_usage(process)
            return process
        return None

    def has_waiting(self, cpu: int) -> bool:
        return bool(self._queued)

    def queued_census(self):
        # ``_queued`` holds exactly the live entries; stale heap entries
        # (superseded seqs) are not part of the logical queue.
        return {pid: 1 for pid in self._queued}

    def on_process_exit(self, process: Process) -> None:
        self._usage.pop(process.pid, None)
        self._queued.pop(process.pid, None)
