"""Scheduler policy interface.

The kernel owns all mechanism (dispatch, preemption, accounting); a policy
decides *which* process runs *where* and for how long.  The interface is
deliberately small:

* :meth:`enqueue` -- a process became runnable (new / preempted /
  unblocked / yielded).
* :meth:`dequeue` -- the kernel has an idle processor; return the process
  to run there, or ``None`` to leave it idle.
* :meth:`has_waiting` -- would a preemption of the current process on this
  processor let someone else run?  (Consulted at quantum expiry; if nothing
  is waiting the kernel just extends the current process's quantum.)
* :meth:`quantum_for` -- per-dispatch quantum, default the machine's.

Policies may also keep per-process state via the spawn/exit notifications
and may schedule their own events through ``self.kernel.engine`` (the gang
scheduler uses this for its epoch ticks).
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import TYPE_CHECKING, Dict, Optional

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, types only
    from repro.kernel.kernel import Kernel
    from repro.kernel.process import Process


class SchedulerPolicy(ABC):
    """Base class for kernel scheduling policies."""

    #: True when :meth:`dequeue` ignores *cpu* entirely AND is free of
    #: observable side effects when it returns ``None`` -- i.e. one
    #: ``None`` proves every other processor would get ``None`` too.  The
    #: kernel's dispatch pass then stops at the first empty pull instead
    #: of polling all (up to 1024) idle processors.  Per-processor
    #: policies (partition, strict affinity) and policies whose failed
    #: pulls mutate state (gang rotation, miss counters) must leave this
    #: False.
    shared_queue = False

    def __init__(self) -> None:
        self.kernel: Optional["Kernel"] = None

    def attach(self, kernel: "Kernel") -> None:
        """Bind the policy to a kernel.  Called once by the kernel ctor."""
        if self.kernel is not None:
            raise RuntimeError("scheduler policy is already attached to a kernel")
        self.kernel = kernel

    @abstractmethod
    def enqueue(self, process: "Process", reason: str) -> None:
        """Add a runnable process to the policy's queue(s).

        *reason* is one of ``"new"``, ``"preempted"``, ``"unblocked"``,
        ``"yield"`` -- policies may treat them differently (e.g. decay
        scheduling boosts unblocked processes).
        """

    @abstractmethod
    def dequeue(self, cpu: int) -> Optional["Process"]:
        """Pick the next process to run on processor *cpu*, removing it
        from the queue.  ``None`` leaves the processor idle."""

    @abstractmethod
    def has_waiting(self, cpu: int) -> bool:
        """True if some queued process could run on processor *cpu* now."""

    def quantum_for(self, process: "Process", cpu: int) -> int:
        """Quantum for this dispatch; defaults to the machine-wide value."""
        assert self.kernel is not None, "policy used before attach()"
        return self.kernel.machine.config.quantum

    def on_process_spawn(self, process: "Process") -> None:
        """Notification: a process entered the system (before enqueue)."""

    def on_process_exit(self, process: "Process") -> None:
        """Notification: a process terminated."""

    def on_cpu_offline(self, cpu: int) -> None:
        """Notification: the kernel took *cpu* out of service (hot-unplug).

        The kernel stops offering the processor to :meth:`dequeue`, so
        queue-per-machine policies need no action; policies that bind work
        to specific processors (space partitioning) rebalance here.
        """

    def on_cpu_online(self, cpu: int) -> None:
        """Notification: *cpu* rejoined the machine."""

    def queued_census(self) -> Optional[Dict[int, int]]:
        """Live run-queue entries per pid, for the sanitizer's cross-checks.

        Returns a mapping ``pid -> number of live queue entries`` (stale
        lazily-dropped entries excluded), or ``None`` if the policy does
        not support introspection.  Only consulted by
        :mod:`repro.sanitize`; never on the dispatch hot path.
        """
        return None
