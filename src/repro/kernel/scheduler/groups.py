"""Process groups with per-group scheduling policies (Edler et al., NYU
Ultracomputer; Section 3 of the paper).

"Processes can be formed into groups.  The scheduling policy of a group of
processes can be set so that either the processes are scheduled and
preempted normally, or all processes in the same group are scheduled and
preempted simultaneously (as in coscheduling), or processes in the group are
never preempted."

Groups are keyed by application id.  Each group carries a
:class:`GroupPolicy`:

* ``NORMAL`` -- members are ordinary FIFO citizens.
* ``GANG`` -- members are coscheduled: gang groups take round-robin turns
  as the *active* gang each epoch; the active gang's members are preferred
  by ``dequeue`` and are not preempted mid-epoch.
* ``NO_PREEMPT`` -- members are never preempted at quantum expiry (an
  individual process can still get the same effect in any group via the
  ``SetNoPreempt`` syscall, which is the Ultracomputer's per-process knob).
"""

from __future__ import annotations

from collections import OrderedDict, deque
from enum import Enum, auto
from typing import Deque, Dict, Optional

from repro.kernel.process import Process, ProcessState
from repro.kernel.scheduler.base import SchedulerPolicy


class GroupPolicy(Enum):
    """Scheduling treatment of one process group."""

    NORMAL = auto()
    GANG = auto()
    NO_PREEMPT = auto()


class ProcessGroupScheduler(SchedulerPolicy):
    """Scheduler with per-application group policies."""

    def __init__(self, default_policy: GroupPolicy = GroupPolicy.NORMAL) -> None:
        super().__init__()
        self.default_policy = default_policy
        self._group_policy: Dict[str, GroupPolicy] = {}
        self._queue: Deque[Process] = deque()
        self._gang_rotation: "OrderedDict[str, None]" = OrderedDict()
        self._active_gang: Optional[str] = None
        self._epoch_armed = False

    # -- group administration -----------------------------------------------

    @staticmethod
    def _group_key(process: Process) -> str:
        return process.app_id if process.app_id is not None else f"pid:{process.pid}"

    def set_group_policy(self, group: str, policy: GroupPolicy) -> None:
        """Assign *policy* to the group named *group* (an application id)."""
        self._group_policy[group] = policy
        if policy is GroupPolicy.GANG:
            self._gang_rotation.setdefault(group, None)
            self._arm_epoch()
        else:
            self._gang_rotation.pop(group, None)

    def group_policy_of(self, process: Process) -> GroupPolicy:
        return self._group_policy.get(self._group_key(process), self.default_policy)

    @property
    def epoch(self) -> int:
        return self.kernel.machine.config.quantum

    # -- policy interface -----------------------------------------------------

    def enqueue(self, process: Process, reason: str) -> None:
        if process.state is not ProcessState.READY:
            raise ValueError(
                f"enqueue of process {process.pid} in state {process.state.name}"
            )
        if self.group_policy_of(process) is GroupPolicy.GANG:
            self._gang_rotation.setdefault(self._group_key(process), None)
            self._arm_epoch()
        self._queue.append(process)

    def dequeue(self, cpu: int) -> Optional[Process]:
        chosen: Optional[Process] = None
        if self._active_gang is not None:
            for process in self._queue:
                if (
                    process.state is ProcessState.READY
                    and self._group_key(process) == self._active_gang
                ):
                    chosen = process
                    break
        if chosen is None:
            for process in self._queue:
                if process.state is ProcessState.READY:
                    chosen = process
                    break
        if chosen is not None:
            self._queue.remove(chosen)
        return chosen

    def has_waiting(self, cpu: int) -> bool:
        current = self.kernel.machine.processors[cpu].current
        if current is not None:
            policy = self.group_policy_of(current)
            if policy is GroupPolicy.NO_PREEMPT:
                return False
            if (
                policy is GroupPolicy.GANG
                and self._group_key(current) == self._active_gang
            ):
                return False
        return any(p.state is ProcessState.READY for p in self._queue)

    def queued_census(self):
        census = {}
        for process in self._queue:
            census[process.pid] = census.get(process.pid, 0) + 1
        return census

    def on_process_exit(self, process: Process) -> None:
        try:
            self._queue.remove(process)
        except ValueError:
            pass

    # -- gang epochs ------------------------------------------------------------

    def _arm_epoch(self) -> None:
        if not self._epoch_armed and self.kernel is not None:
            self._epoch_armed = True
            self.kernel.engine.schedule(self.epoch, self._epoch_tick, "group-epoch")

    def _epoch_tick(self) -> None:
        kernel = self.kernel
        if self._gang_rotation:
            keys = list(self._gang_rotation.keys())
            if self._active_gang in keys:
                index = (keys.index(self._active_gang) + 1) % len(keys)
            else:
                index = 0
            self._active_gang = keys[index]
            for processor in kernel.machine.processors:
                current = processor.current
                if current is None:
                    continue
                if (
                    self.group_policy_of(current) is GroupPolicy.GANG
                    and self._group_key(current) != self._active_gang
                ):
                    kernel.force_preempt(processor.cpu_id)
            kernel.request_dispatch()
        else:
            self._active_gang = None
        kernel.engine.schedule(self.epoch, self._epoch_tick, "group-epoch")
