"""Zahorjan-style spinlock-aware scheduling (Section 3).

Two ingredients, both from the University of Washington proposal the paper
discusses:

1. **Preemption avoidance** -- a process inside a critical section sets a
   flag (our kernel's ``SetNoPreempt`` syscall) and the scheduler will not
   preempt it until the flag is cleared.  The kernel mechanism enforces a
   configurable grace bound so a malicious process cannot hog a processor
   forever (the paper's protection criticism of the scheme).

2. **Spinner avoidance** -- the scheduler "avoids rescheduling busy-waiting
   processes while a process inside a lock is suspended": ``dequeue`` skips
   processes whose next action is to spin on a lock whose holder is not
   currently running, since dispatching them would burn a quantum.

The flag itself is set by the threads package around its critical sections
when this policy is selected (see
:class:`repro.threads.package.ThreadsPackageConfig.use_no_preempt_flags`).
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Optional

from repro.kernel.process import Process, ProcessState
from repro.kernel import syscalls as sc
from repro.kernel.scheduler.base import SchedulerPolicy


class NoPreemptAwareScheduler(SchedulerPolicy):
    """FIFO queue that skips doomed spinners; pairs with no-preempt flags."""

    shared_queue = True

    def __init__(self) -> None:
        super().__init__()
        self._queue: Deque[Process] = deque()
        self.skipped_spinners = 0

    def _would_spin_uselessly(self, process: Process) -> bool:
        """True if dispatching *process* would have it spin on a lock whose
        holder is off-processor."""
        syscall = process.pending_syscall
        if not isinstance(syscall, sc.SpinAcquire):
            return False
        lock = syscall.lock
        if not lock.held:
            return False
        holder = self.kernel.processes.get(lock.holder_pid)
        return holder is None or holder.state is not ProcessState.RUNNING

    def enqueue(self, process: Process, reason: str) -> None:
        if process.state is not ProcessState.READY:
            raise ValueError(
                f"enqueue of process {process.pid} in state {process.state.name}"
            )
        self._queue.append(process)

    def dequeue(self, cpu: int) -> Optional[Process]:
        chosen: Optional[Process] = None
        for process in self._queue:
            if process.state is not ProcessState.READY:
                continue
            if self._would_spin_uselessly(process):
                self.skipped_spinners += 1
                continue
            chosen = process
            break
        if chosen is None:
            # Everyone runnable would spin uselessly (or queue is empty):
            # fall back to plain FIFO rather than idling the machine.
            for process in self._queue:
                if process.state is ProcessState.READY:
                    chosen = process
                    break
        if chosen is not None:
            self._queue.remove(chosen)
        return chosen

    def has_waiting(self, cpu: int) -> bool:
        return any(p.state is ProcessState.READY for p in self._queue)

    def queued_census(self):
        census = {}
        for process in self._queue:
            census[process.pid] = census.get(process.pid, 0) + 1
        return census

    def on_process_exit(self, process: Process) -> None:
        try:
            self._queue.remove(process)
        except ValueError:
            pass
