"""Coscheduling (gang scheduling), after Ousterhout (Section 3).

"All runnable processes of an application are scheduled to run on the
processors at the same time ... effectively, the system context switches
between applications."

Implementation: processes are grouped into *gangs* by application id
(processes without an application each form a singleton gang).  A global
epoch timer ticks every ``epoch`` microseconds; on each tick the policy
rotates to the next gang that has runnable processes, force-preempts every
processor running a process outside that gang, and dispatches the gang.
Processors left over after the gang is placed are filled with runnable
processes from other gangs in arrival order (Ousterhout's "alternate
selection", which avoids idling the machine when gangs are small).

As the paper notes, coscheduling fixes the spinlock and producer/consumer
problems (the whole gang runs together) but not context-switch overhead or
cache corruption -- each epoch still reloads every cache.  The ablation
benchmarks show exactly that trade-off.
"""

from __future__ import annotations

from collections import OrderedDict, deque
from typing import Deque, Dict, Optional

from repro.kernel.process import Process, ProcessState
from repro.kernel.scheduler.base import SchedulerPolicy


class CoschedulingScheduler(SchedulerPolicy):
    """Gang scheduler with round-robin epochs over applications."""

    def __init__(self, epoch: Optional[int] = None) -> None:
        super().__init__()
        self._epoch_override = epoch
        # gang key -> FIFO of READY members of that gang
        self._gangs: "OrderedDict[str, Deque[Process]]" = OrderedDict()
        self._active_gang: Optional[str] = None
        self._rotation: Deque[str] = deque()
        self._started = False

    # -- gang bookkeeping ------------------------------------------------

    @staticmethod
    def _gang_key(process: Process) -> str:
        if process.app_id is not None:
            return f"app:{process.app_id}"
        return f"pid:{process.pid}"

    def _ensure_gang(self, key: str) -> Deque[Process]:
        gang = self._gangs.get(key)
        if gang is None:
            gang = deque()
            self._gangs[key] = gang
            self._rotation.append(key)
        return gang

    @property
    def epoch(self) -> int:
        if self._epoch_override is not None:
            return self._epoch_override
        return self.kernel.machine.config.quantum

    @property
    def active_gang(self) -> Optional[str]:
        return self._active_gang

    # -- policy interface -------------------------------------------------

    def attach(self, kernel) -> None:
        super().attach(kernel)
        # The first epoch tick starts the rotation.
        kernel.engine.schedule(self.epoch, self._epoch_tick, "gang-epoch")
        self._started = True

    def enqueue(self, process: Process, reason: str) -> None:
        if process.state is not ProcessState.READY:
            raise ValueError(
                f"enqueue of process {process.pid} in state {process.state.name}"
            )
        self._ensure_gang(self._gang_key(process)).append(process)

    def dequeue(self, cpu: int) -> Optional[Process]:
        # Prefer the active gang; fall back to alternate selection.
        if self._active_gang is None:
            self._advance_gang()
        candidate = self._pop_ready(self._active_gang)
        if candidate is not None:
            return candidate
        for key in list(self._rotation):
            candidate = self._pop_ready(key)
            if candidate is not None:
                return candidate
        return None

    def has_waiting(self, cpu: int) -> bool:
        # Between epoch ticks a gang keeps its processors, but READY gang
        # members still displace runners at quantum expiry -- both
        # alternate-selection fillers from other gangs and, when the gang
        # is larger than the machine, the gang's own members (otherwise a
        # member spinning on a lock could starve the preempted holder
        # forever on a small machine: within-gang round-robin is what
        # eventually runs the holder again).
        gang = self._gangs.get(self._active_gang or "")
        return bool(gang) and any(
            p.state is ProcessState.READY for p in gang
        )

    def on_process_exit(self, process: Process) -> None:
        key = self._gang_key(process)
        gang = self._gangs.get(key)
        if gang is not None:
            try:
                gang.remove(process)
            except ValueError:
                pass

    def queued_census(self):
        census = {}
        for gang in self._gangs.values():
            for process in gang:
                census[process.pid] = census.get(process.pid, 0) + 1
        return census

    def quantum_for(self, process: Process, cpu: int) -> int:
        return self.epoch

    # -- internals ----------------------------------------------------------

    def _pop_ready(self, key: Optional[str]) -> Optional[Process]:
        if key is None:
            return None
        gang = self._gangs.get(key)
        if not gang:
            return None
        for _ in range(len(gang)):
            process = gang.popleft()
            if process.state is ProcessState.READY:
                return process
            # Stale entries (terminated while queued) are dropped.
            if process.state is not ProcessState.TERMINATED:
                gang.append(process)
        return None

    def _gang_has_runnable(self, key: str) -> bool:
        if any(
            p.state is ProcessState.READY for p in self._gangs.get(key, ())
        ):
            return True
        # A gang also counts as runnable if one of its members is running.
        for processor in self.kernel.machine.processors:
            current = processor.current
            if current is not None and self._gang_key(current) == key:
                return True
        return False

    def _advance_gang(self) -> None:
        """Rotate to the next gang with runnable members."""
        for _ in range(len(self._rotation)):
            self._rotation.rotate(-1)
            key = self._rotation[0] if self._rotation else None
            if key is not None and self._gang_has_runnable(key):
                self._active_gang = key
                return
        self._active_gang = self._rotation[0] if self._rotation else None

    def _epoch_tick(self) -> None:
        self._advance_gang()
        kernel = self.kernel
        if self._active_gang is not None:
            for processor in kernel.machine.processors:
                current = processor.current
                if current is not None and self._gang_key(current) != self._active_gang:
                    kernel.force_preempt(processor.cpu_id)
            kernel.request_dispatch()
        kernel.engine.schedule(self.epoch, self._epoch_tick, "gang-epoch")
