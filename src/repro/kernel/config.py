"""Kernel cost-model configuration.

Hardware-level costs (quantum, context switch, cache) live in
:class:`repro.machine.config.MachineConfig`; this dataclass holds the costs
of kernel *services*: syscall entry, fork, signals, and the
``GetRunnableInfo`` scan whose per-process cost motivates the paper's
centralized (rather than per-application) server design.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.sim import units


@dataclass
class KernelConfig:
    """Costs of kernel services, in microseconds.

    Attributes:
        fork_cost: process creation.
        exit_cost: process teardown.
        signal_cost: sending a signal (suspend/resume round uses two).
        sleep_cost: arming a timer.
        yield_cost: voluntary reschedule.
        getrunnable_base_cost: fixed part of the runnable-process scan.
        getrunnable_per_process_cost: per-process part of the scan.
        channel_op_cost: one socket send or receive.
        nopreempt_grace: how long a quantum-expired process may keep running
            because its no-preempt flag is set before the scheduler preempts
            it anyway (fairness bound for the Zahorjan scheme).
        runnable_trace: emit a trace record on every runnable-count change
            (needed for Figure 5; can be disabled for speed).
    """

    fork_cost: int = 500
    exit_cost: int = 200
    signal_cost: int = 50
    sleep_cost: int = 20
    yield_cost: int = 10
    getrunnable_base_cost: int = 100
    getrunnable_per_process_cost: int = 3
    channel_op_cost: int = 40
    nopreempt_grace: int = units.ms(5)
    runnable_trace: bool = True

    def __post_init__(self) -> None:
        for name in (
            "fork_cost",
            "exit_cost",
            "signal_cost",
            "sleep_cost",
            "yield_cost",
            "getrunnable_base_cost",
            "getrunnable_per_process_cost",
            "channel_op_cost",
            "nopreempt_grace",
        ):
            if getattr(self, name) < 0:
                raise ValueError(f"{name} must be >= 0")
