"""A single simulated processor.

A :class:`Processor` is a slot the kernel dispatches processes onto, plus
bookkeeping for utilization accounting.  It holds no scheduling logic; the
kernel and its pluggable policy decide what runs where.
"""

from __future__ import annotations

from typing import Any, Optional


class Processor:
    """One CPU of the simulated machine.

    Attributes:
        cpu_id: index of this processor in the machine, 0-based.
        current: the process control block currently dispatched here, or
            ``None`` when idle.  Typed as ``Any`` to avoid a circular import
            with the kernel package; it is always a
            :class:`repro.kernel.process.Process` in practice.
        busy_time: accumulated microseconds doing useful work.
        spin_time: accumulated microseconds burnt busy-waiting on spinlocks.
        overhead_time: accumulated context-switch / dispatch / cache-reload
            microseconds.
        idle_time: accumulated microseconds with no process dispatched.
    """

    __slots__ = (
        "cpu_id",
        "current",
        "busy_time",
        "spin_time",
        "overhead_time",
        "idle_time",
        "_last_accounted",
        "dispatches",
    )

    def __init__(self, cpu_id: int) -> None:
        self.cpu_id = cpu_id
        self.current: Optional[Any] = None
        self.busy_time = 0
        self.spin_time = 0
        self.overhead_time = 0
        self.idle_time = 0
        self._last_accounted = 0
        self.dispatches = 0

    @property
    def idle(self) -> bool:
        """True when no process is dispatched on this processor."""
        return self.current is None

    def account(self, now: int, kind: str) -> None:
        """Attribute the time since the last accounting mark to *kind*.

        *kind* is one of ``"busy"``, ``"spin"``, ``"overhead"``, ``"idle"``.
        The kernel calls this at every transition so that the utilization
        breakdown in the experiment tables sums exactly to elapsed time.
        """
        elapsed = now - self._last_accounted
        if elapsed < 0:
            raise ValueError(
                f"time went backwards on cpu {self.cpu_id}: "
                f"{self._last_accounted} -> {now}"
            )
        if elapsed:
            if kind == "busy":
                self.busy_time += elapsed
            elif kind == "spin":
                self.spin_time += elapsed
            elif kind == "overhead":
                self.overhead_time += elapsed
            elif kind == "idle":
                self.idle_time += elapsed
            else:
                raise ValueError(f"unknown accounting kind {kind!r}")
        self._last_accounted = now

    def total_accounted(self) -> int:
        """Sum of all accounted time buckets."""
        return self.busy_time + self.spin_time + self.overhead_time + self.idle_time

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        pid = getattr(self.current, "pid", None)
        return f"<Processor {self.cpu_id} running={pid}>"
