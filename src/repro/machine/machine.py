"""The machine: a processor array plus its cache model.

:class:`Machine` ties together :class:`~repro.machine.config.MachineConfig`,
the :class:`~repro.machine.processor.Processor` array, and the
:class:`~repro.machine.cache.CacheModel`.  It is pure state -- the kernel
drives all transitions.
"""

from __future__ import annotations

from typing import Iterator, List, Optional

from repro.machine.cache import CacheModel
from repro.machine.config import MachineConfig
from repro.machine.processor import Processor


class Machine:
    """A simulated shared-memory multiprocessor."""

    def __init__(self, config: Optional[MachineConfig] = None) -> None:
        self.config = config or MachineConfig()
        self.processors: List[Processor] = [
            Processor(cpu_id) for cpu_id in range(self.config.n_processors)
        ]
        self.cache = CacheModel(
            n_processors=self.config.n_processors,
            cold_penalty=self.config.cache_cold_penalty,
            warmup_time=self.config.cache_warmup_time,
            purge_time=self.config.cache_purge_time,
            enabled=self.config.cache_affinity_enabled,
        )

    @property
    def n_processors(self) -> int:
        return self.config.n_processors

    def __iter__(self) -> Iterator[Processor]:
        return iter(self.processors)

    def idle_processors(self) -> List[Processor]:
        """Processors with nothing dispatched, in index order."""
        return [p for p in self.processors if p.idle]

    def busy_processors(self) -> List[Processor]:
        """Processors currently running a process, in index order."""
        return [p for p in self.processors if not p.idle]

    def utilization_summary(self) -> dict:
        """Aggregate utilization breakdown across all processors.

        Returns a dict with total ``busy``, ``spin``, ``overhead`` and
        ``idle`` microseconds, used by the experiment reports.
        """
        summary = {"busy": 0, "spin": 0, "overhead": 0, "idle": 0}
        for processor in self.processors:
            summary["busy"] += processor.busy_time
            summary["spin"] += processor.spin_time
            summary["overhead"] += processor.overhead_time
            summary["idle"] += processor.idle_time
        return summary
