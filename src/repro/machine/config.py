"""Machine configuration.

One dataclass holds every hardware and low-level-kernel tunable so that
experiments can describe themselves completely ("this run used
``MachineConfig(n_processors=16, quantum=ms(100))``") and ablations can sweep
a single field.

Defaults approximate the paper's platform: a 16-processor Encore Multimax
running UMAX 4.2 (a BSD variant) with ~100 ms scheduling quanta.  Cache
parameters are set so that a full working-set reload costs a few
milliseconds, consistent with the paper's discussion of 50-100 cycle miss
penalties on then-emerging scalable machines.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.sim import units


@dataclass
class MachineConfig:
    """Hardware and kernel-mechanism parameters for a simulated machine.

    Attributes:
        n_processors: number of identical CPUs (paper: 16).
        quantum: scheduling time slice in microseconds (paper-era BSD: ~100 ms).
        context_switch_cost: direct cost of a context switch (register save /
            restore, queue manipulation), charged to the incoming process.
        dispatch_latency: extra cost charged when the kernel moves a process
            from the run queue onto a processor (models run-queue locking).
        cache_cold_penalty: time to refetch a process's *entire* working set
            into a cold cache.  The actual charge on dispatch is
            ``cache_cold_penalty * (1 - warmth)``.
        cache_warmup_time: CPU time a process must run for its warmth to go
            from 0 to 1 on a processor.
        cache_purge_time: CPU time of *other* processes on the same processor
            that takes a resident process's warmth from 1 to 0.
        cache_affinity_enabled: if False the cache model is bypassed entirely
            (warmth treated as always 1); used by ablations to isolate cache
            effects from queueing effects.
    """

    n_processors: int = 16
    quantum: int = field(default_factory=lambda: units.ms(100))
    context_switch_cost: int = field(default_factory=lambda: units.us(200))
    dispatch_latency: int = field(default_factory=lambda: units.us(50))
    cache_cold_penalty: int = field(default_factory=lambda: units.ms(4))
    cache_warmup_time: int = field(default_factory=lambda: units.ms(20))
    cache_purge_time: int = field(default_factory=lambda: units.ms(40))
    cache_affinity_enabled: bool = True

    def __post_init__(self) -> None:
        if self.n_processors < 1:
            raise ValueError(f"n_processors must be >= 1, got {self.n_processors}")
        if self.quantum <= 0:
            raise ValueError(f"quantum must be positive, got {self.quantum}")
        for name in (
            "context_switch_cost",
            "dispatch_latency",
            "cache_cold_penalty",
        ):
            if getattr(self, name) < 0:
                raise ValueError(f"{name} must be >= 0")
        if self.cache_warmup_time <= 0:
            raise ValueError("cache_warmup_time must be positive")
        if self.cache_purge_time <= 0:
            raise ValueError("cache_purge_time must be positive")
