"""Working-set cache model.

The paper's fourth source of degradation (Section 2) is cache corruption:
when a processor is multiplexed between applications, each reschedule must
refetch the working set through 50-100-cycle misses.

We model this at the working-set level.  For each processor we track, per
process, a *warmth* value in [0, 1]: the fraction of that process's working
set currently resident in the processor's cache.

* On dispatch, the incoming process pays ``cold_penalty * (1 - warmth)``.
* While a process runs for time ``t`` its warmth rises linearly, reaching 1
  after ``warmup_time`` of execution.
* While a process runs, every *other* process's warmth on that processor
  decays linearly, reaching 0 after ``purge_time`` of foreign execution.

Linear ramps (rather than exponentials) keep the model integer-friendly and
trivially testable while preserving the qualitative behaviour: a process that
keeps its processor pays nothing; a process bounced between busy processors
pays nearly the full reload every time.
"""

from __future__ import annotations

from typing import Dict, List


class CacheModel:
    """Per-processor, per-process cache warmth tracking.

    The model is owned by the kernel, which calls :meth:`reload_penalty`
    when dispatching and :meth:`note_execution` when a process finishes a
    stint on a processor.
    """

    def __init__(
        self,
        n_processors: int,
        cold_penalty: int,
        warmup_time: int,
        purge_time: int,
        enabled: bool = True,
    ) -> None:
        if n_processors < 1:
            raise ValueError("n_processors must be >= 1")
        if warmup_time <= 0 or purge_time <= 0:
            raise ValueError("warmup_time and purge_time must be positive")
        if cold_penalty < 0:
            raise ValueError("cold_penalty must be >= 0")
        self.n_processors = n_processors
        self.cold_penalty = cold_penalty
        self.warmup_time = warmup_time
        self.purge_time = purge_time
        self.enabled = enabled
        # _warmth[cpu][pid] -> fraction of pid's working set resident on cpu.
        self._warmth: List[Dict[int, float]] = [{} for _ in range(n_processors)]
        # Reverse index: pid -> cpus whose warmth table mentions it, so
        # eviction and warmest-cpu lookups touch the processors a process
        # actually ran on instead of sweeping all 1024.
        self._resident: Dict[int, set] = {}

    def warmth(self, cpu: int, pid: int) -> float:
        """Current warmth of process *pid* on processor *cpu* (0 if unknown)."""
        if not self.enabled:
            return 1.0
        return self._warmth[cpu].get(pid, 0.0)

    def reload_penalty(self, cpu: int, pid: int) -> int:
        """Cache-reload cost to charge when *pid* is dispatched on *cpu*."""
        if not self.enabled:
            return 0
        return int(round(self.cold_penalty * (1.0 - self.warmth(cpu, pid))))

    def note_execution(self, cpu: int, pid: int, ran_for: int) -> None:
        """Record that *pid* executed on *cpu* for *ran_for* microseconds.

        Warms *pid* up and cools every other process resident on *cpu*.
        Processes whose warmth reaches zero are dropped from the table so it
        stays small over long runs.
        """
        if not self.enabled or ran_for <= 0:
            return
        table = self._warmth[cpu]
        gained = ran_for / self.warmup_time
        lost = ran_for / self.purge_time
        dead: List[int] = []
        for other_pid, warmth in table.items():
            if other_pid == pid:
                continue
            cooled = warmth - lost
            if cooled <= 0.0:
                dead.append(other_pid)
            else:
                table[other_pid] = cooled
        resident = self._resident
        for other_pid in dead:
            del table[other_pid]
            cpus = resident.get(other_pid)
            if cpus is not None:
                cpus.discard(cpu)
                if not cpus:
                    del resident[other_pid]
        table[pid] = min(1.0, table.get(pid, 0.0) + gained)
        cpus = resident.get(pid)
        if cpus is None:
            resident[pid] = {cpu}
        else:
            cpus.add(cpu)

    def evict_process(self, pid: int) -> None:
        """Forget a terminated process on every processor it visited."""
        cpus = self._resident.pop(pid, None)
        if cpus:
            for cpu in cpus:
                self._warmth[cpu].pop(pid, None)

    def resident_processes(self, cpu: int) -> Dict[int, float]:
        """Snapshot of warmth on *cpu* (for tests and diagnostics)."""
        return dict(self._warmth[cpu])

    def warmest_cpu(self, pid: int) -> int | None:
        """Processor where *pid* is warmest, or None if cold everywhere.

        Used by the affinity scheduling policy (Lazowska & Squillante).
        """
        best_cpu = None
        best_warmth = 0.0
        # Ascending cpu order (like the full sweep this replaces) keeps
        # the strictly-greater tie-break deterministic.
        for cpu in sorted(self._resident.get(pid, ())):
            warmth = self._warmth[cpu].get(pid, 0.0)
            if warmth > best_warmth:
                best_warmth = warmth
                best_cpu = cpu
        return best_cpu
