"""The simulated shared-memory multiprocessor.

This package models the hardware substrate the paper ran on (a 16-processor
Encore Multimax): a set of identical processors sharing memory, each with a
private cache.  The cache is modelled at the working-set level (a *warmth*
fraction per process per processor) rather than per-line -- sufficient to
reproduce the paper's point 4 of Section 2 (cache corruption under
time-slicing) while keeping million-event runs fast.

Public API
----------

- :class:`~repro.machine.config.MachineConfig` -- all tunables in one place.
- :class:`~repro.machine.machine.Machine` -- the processor array.
- :class:`~repro.machine.processor.Processor` -- one CPU.
- :class:`~repro.machine.cache.CacheModel` -- per-processor cache warmth.
"""

from repro.machine.config import MachineConfig
from repro.machine.cache import CacheModel
from repro.machine.processor import Processor
from repro.machine.machine import Machine

__all__ = ["MachineConfig", "CacheModel", "Processor", "Machine"]
