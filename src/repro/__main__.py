"""``python -m repro`` -- a guided tour entry point.

With no subcommand, prints the package inventory and runs the quick
two-application comparison, so a fresh checkout can see the paper's effect
in one command.  ``python -m repro scenarios ...`` exposes the declarative
scenario corpus (list / show / run / cosim).  For the full harnesses use
``python -m repro.experiments <figure>``.
"""

from __future__ import annotations

import argparse

from repro import __version__, quick_compare
from repro.metrics import format_table
from repro.scenarios.cli import add_scenarios_parser, run_from_args


def _run_demo(args: argparse.Namespace) -> int:
    print(f"repro {__version__}: process control demo")
    print(
        f"two applications x {args.processes} processes on 16 simulated "
        "processors\n"
    )
    results = quick_compare(scale=args.scale, n_processes=args.processes)
    rows = []
    for app in results["uncontrolled"].apps:
        off = results["uncontrolled"].apps[app].wall_time
        on = results["controlled"].apps[app].wall_time
        rows.append((app, f"{off / 1e6:.1f}", f"{on / 1e6:.1f}", f"{off / on:.2f}x"))
    print(format_table(["app", "uncontrolled (s)", "controlled (s)", "gain"], rows))
    print(
        "\nNext steps: python -m repro.experiments all --preset quick"
        "\n            python -m repro scenarios list"
        "\n            pytest benchmarks/ --benchmark-only"
    )
    return 0


def main() -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description=(
            "Reproduction of Tucker & Gupta (SOSP 1989): dynamic process "
            "control for multiprogrammed shared-memory multiprocessors."
        ),
    )
    parser.add_argument(
        "--processes",
        type=int,
        default=24,
        help="worker processes per application (default 24, on 16 CPUs)",
    )
    parser.add_argument(
        "--scale",
        type=float,
        default=0.2,
        help="application size multiplier (default 0.2 for a fast demo)",
    )
    subparsers = parser.add_subparsers(dest="command")
    add_scenarios_parser(subparsers)
    args = parser.parse_args()

    if args.command == "scenarios":
        return run_from_args(args)
    return _run_demo(args)


if __name__ == "__main__":
    raise SystemExit(main())
