"""Where did the machine's cycles go?

The paper's argument is an accounting argument: oversubscription converts
useful cycles into spin waste, context-switch overhead, cache reloads, and
busy-wait idling.  :func:`waste_breakdown` extracts that ledger from a run.

Note one subtlety: the threads package's busy-wait idle polling *is* CPU
consumption, so the kernel books it as busy time; the package tracks it
separately (``idle_poll_time``) and we subtract it from "useful" here.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.workloads.runner import ScenarioResult


@dataclass
class WasteBreakdown:
    """Machine-wide cycle accounting for one run (all in microseconds).

    ``useful + idle_poll + spin + overhead + idle == capacity`` where
    capacity is ``n_processors * sim_time``.
    """

    capacity: int
    useful: int
    idle_poll: int
    spin: int
    overhead: int
    idle: int

    @property
    def waste(self) -> int:
        """Everything that is not useful work and not genuine idleness."""
        return self.idle_poll + self.spin + self.overhead

    def fraction(self, field: str) -> float:
        """One bucket as a fraction of machine capacity."""
        value = getattr(self, field)
        return value / self.capacity if self.capacity else 0.0

    def as_percentages(self) -> dict:
        """All buckets as percentages of capacity (for reports)."""
        return {
            name: round(100.0 * self.fraction(name), 2)
            for name in ("useful", "idle_poll", "spin", "overhead", "idle")
        }


def waste_breakdown(result: ScenarioResult) -> WasteBreakdown:
    """Compute the cycle ledger of a finished scenario run."""
    utilization = result.utilization
    capacity = sum(utilization.values())
    idle_poll = sum(app.idle_poll_time for app in result.apps.values())
    busy = utilization["busy"]
    useful = max(busy - idle_poll, 0)
    return WasteBreakdown(
        capacity=capacity,
        useful=useful,
        idle_poll=min(idle_poll, busy),
        spin=utilization["spin"],
        overhead=utilization["overhead"],
        idle=utilization["idle"],
    )
