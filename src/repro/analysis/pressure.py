"""Scheduling-pressure summary: preemptions, critical-section hits, and
queue-lock contention -- the direct evidence trail for Section 2's
mechanisms in a full run."""

from __future__ import annotations

from dataclasses import dataclass

from repro.workloads.runner import ScenarioResult


@dataclass
class PressureSummary:
    """Aggregate scheduling pressure of one run."""

    preemptions: int
    cs_preemptions: int
    dispatches: int
    queue_lock_contended: int
    queue_lock_holder_preempted: int
    spin_seconds: float
    preemptions_per_sim_second: float

    @property
    def cs_preemption_ratio(self) -> float:
        """Fraction of preemptions that landed inside a critical section."""
        if self.preemptions == 0:
            return 0.0
        return self.cs_preemptions / self.preemptions


def pressure_summary(result: ScenarioResult) -> PressureSummary:
    """Reduce a run's statistics into a :class:`PressureSummary`."""
    sim_seconds = result.sim_time / 1e6 if result.sim_time else 0.0
    return PressureSummary(
        preemptions=result.total_preemptions,
        cs_preemptions=result.total_cs_preemptions,
        dispatches=result.total_context_switches,
        queue_lock_contended=sum(
            app.queue_lock_contended for app in result.apps.values()
        ),
        queue_lock_holder_preempted=sum(
            app.queue_lock_holder_preempted for app in result.apps.values()
        ),
        spin_seconds=result.total_spin_time / 1e6,
        preemptions_per_sim_second=(
            result.total_preemptions / sim_seconds if sim_seconds else 0.0
        ),
    )
