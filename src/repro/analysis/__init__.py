"""Post-run analysis of scenario results.

Turns a :class:`~repro.workloads.runner.ScenarioResult` into the derived
quantities the paper argues from: where the machine's cycles actually went
(:func:`waste_breakdown`), how they were divided between applications
(:func:`cpu_shares`, :func:`jain_fairness`), and what the preemption /
lock-contention pressure looked like (:func:`pressure_summary`).
"""

from repro.analysis.waste import waste_breakdown, WasteBreakdown
from repro.analysis.shares import cpu_shares, jain_fairness
from repro.analysis.pressure import pressure_summary, PressureSummary

__all__ = [
    "waste_breakdown",
    "WasteBreakdown",
    "cpu_shares",
    "jain_fairness",
    "pressure_summary",
    "PressureSummary",
]
