"""Processor-share analysis between applications.

Used by the Section 7 fairness experiments: how the machine's useful
cycles divided between applications, and how fair that division was
(Jain's fairness index: 1.0 = perfectly equal, 1/n = one application took
everything).
"""

from __future__ import annotations

from typing import Dict, Mapping

from repro.workloads.runner import ScenarioResult


def cpu_shares(result: ScenarioResult) -> Dict[str, float]:
    """Fraction of all application CPU consumed by each application."""
    totals = {app_id: app.cpu_time for app_id, app in result.apps.items()}
    grand = sum(totals.values())
    if grand == 0:
        return {app_id: 0.0 for app_id in totals}
    return {app_id: cpu / grand for app_id, cpu in totals.items()}


def jain_fairness(shares: Mapping[str, float]) -> float:
    """Jain's fairness index over a share map.

    ``(sum x)^2 / (n * sum x^2)``; 1.0 when all equal, ``1/n`` when one
    member holds everything.  An empty map is defined as perfectly fair.
    """
    values = [v for v in shares.values() if v >= 0]
    if not values:
        return 1.0
    total = sum(values)
    squares = sum(v * v for v in values)
    if squares == 0:
        return 1.0
    return (total * total) / (len(values) * squares)
