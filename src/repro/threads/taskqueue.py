"""The shared task queue and its spinlock.

The queue's deque is plain Python state; *all* access happens inside the
worker program's spinlock-protected critical sections (the package yields
``SpinAcquire(queue.lock)`` around each operation).  That lock is precisely
the fine-grained critical section whose preemption produces the paper's
Figure 1 pathology, so it is a real simulated spinlock, not an abstraction.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Optional

from repro.sync import SpinLock
from repro.threads.task import Task

#: Sentinel a worker dequeues when the application has finished; consuming
#: one makes the worker process exit.
POISON: object = object()


class TaskQueue:
    """FIFO task queue guarded by a spinlock."""

    def __init__(self, name: str = "taskq", acquire_cost: int = 2) -> None:
        self.name = name
        self.lock = SpinLock(f"{name}.lock", acquire_cost=acquire_cost)
        self._items: Deque[object] = deque()
        self.enqueued = 0
        self.dequeued = 0
        self.high_water = 0

    def push(self, task: object) -> None:
        """Append a task.  Caller must hold :attr:`lock` (worker protocol)."""
        self._items.append(task)
        self.enqueued += 1
        if len(self._items) > self.high_water:
            self.high_water = len(self._items)

    def push_front(self, task: object) -> None:
        """Prepend an urgent task.  Caller must hold :attr:`lock`."""
        self._items.appendleft(task)
        self.enqueued += 1
        if len(self._items) > self.high_water:
            self.high_water = len(self._items)

    def pop(self) -> Optional[object]:
        """Remove and return the oldest task, or None when empty.  Caller
        must hold :attr:`lock`."""
        if not self._items:
            return None
        self.dequeued += 1
        return self._items.popleft()

    def __len__(self) -> int:
        return len(self._items)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<TaskQueue {self.name!r} depth={len(self._items)}>"
