"""The modified threads package: worker processes + transparent process
control.

This is the paper's Section 5 artifact.  An application hands the package a
stream of tasks (via ``initial_tasks`` / ``on_task_done``); the package runs
``n_processes`` worker processes that loop:

1. **safe suspension point** -- poll the server if the poll interval has
   elapsed; suspend self / resume a peer to track the target;
2. dequeue a task (semaphore + spinlock-guarded queue);
3. run the task, forwarding its syscalls, handling dynamic
   :class:`~repro.threads.task.SpawnTask` requests;
4. on completion, ask the application for follow-on tasks (this is how
   phased algorithms express their barriers in the task-queue model).

"The process monitoring, suspension, and resumption is done when the
application returns control to the threads package when a thread is
suspended or has finished execution" -- i.e. exactly between tasks, which
is when suspension is provably safe (Section 4.1).

Process control is *transparent*: applications never see it.  It is turned
on or off purely by :class:`ThreadsPackageConfig`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterable, List, Optional

from repro.kernel import Kernel
from repro.kernel import syscalls as sc
from repro.kernel.ipc import Channel, ControlBoard
from repro.metrics.latency import RequestLog
from repro.sim import units
from repro.sync import Semaphore
from repro.threads.adapter import RuntimeAdapter, TaskQueueAdapter
from repro.threads.control import FINISH
from repro.threads.task import SpawnTask, Task
from repro.threads.taskqueue import POISON, TaskQueue

#: Control modes.
CONTROL_OFF = None
CONTROL_CENTRALIZED = "centralized"
CONTROL_DECENTRALIZED = "decentralized"

#: Environment knob: default lock admission limit for scenario runs
#: (Malthusian waiter restriction; see docs/LOCKS.md).  0/unset = off.
LOCK_ADMISSION_ENV_VAR = "REPRO_LOCK_ADMISSION"


@dataclass
class ThreadsPackageConfig:
    """Configuration of the threads package (per application).

    Attributes:
        control: ``None`` (unmodified package), ``"centralized"`` (poll the
            server's control board), or ``"decentralized"`` (each
            application scans the process table itself -- the design the
            paper tried and rejected in Section 4.2).
        board: the server's :class:`ControlBoard` (centralized mode).
        server_channel: registration channel to the server, if any.
        poll_interval: how often workers check the server's answer
            (Section 5: "every 6 seconds in the current implementation").
        poll_cost: CPU cost of one poll round-trip (socket IPC).
        queue_op_cost: CPU cost of one queue operation while holding the
            queue lock -- the length of the package's critical section.
        task_overhead: per-task bookkeeping outside the lock.
        use_no_preempt_flags: bracket queue-lock critical sections with
            ``SetNoPreempt`` (for experiments with the Zahorjan scheduler).
        idle_spin: when the task queue is empty, workers busy-wait polling
            it (with exponential backoff) instead of blocking -- the
            behaviour of 1989-era threads packages, and the producer/
            consumer waste of Section 2 point 2.  ``False`` switches to a
            blocking semaphore (a modern package; ablation).
        spin_poll_gap / spin_poll_max_gap: idle-poll backoff bounds.
        stale_target_ttl: graceful degradation against a silent control
            server (centralized mode).  When set, a poll whose board entry
            is missing or older than this many microseconds counts as
            *failed*: the package backs off its polling exponentially, and
            once no fresh target has been seen for the TTL it releases the
            stale target entirely, restoring full parallelism.  ``None``
            (the default) trusts the board forever -- the paper's
            healthy-world behaviour, and what hand-driven tests expect.
        poll_backoff_max: cap on the backed-off poll gap; defaults to
            8x ``poll_interval`` when degradation is enabled.
        lock_admission: Malthusian concurrency restriction for the
            package's queue lock: at most this many workers may spin on
            it at once, the rest are passivated at the lock and readmitted
            as releases occur (see docs/LOCKS.md).  ``None`` (default)
            leaves spinning unrestricted -- the 1989 behaviour.  This is
            lock-level waiter control, deliberately independent of the
            server's processor control (``control=``): either, both, or
            neither can be on.
        lock_contention_penalty: extra hand-off microseconds per remaining
            spinner on the queue lock, modelling the invalidation storm on
            a saturated lock.  0 (default) keeps the classic fixed-cost
            hand-off.
    """

    control: Optional[str] = CONTROL_OFF
    board: Optional[ControlBoard] = None
    server_channel: Optional[Channel] = None
    poll_interval: int = field(default_factory=lambda: units.seconds(6))
    poll_cost: int = 300
    queue_op_cost: int = 25
    task_overhead: int = 30
    use_no_preempt_flags: bool = False
    idle_spin: bool = True
    spin_poll_gap: int = 500
    spin_poll_max_gap: int = field(default_factory=lambda: units.ms(8))
    stale_target_ttl: Optional[int] = None
    poll_backoff_max: Optional[int] = None
    lock_admission: Optional[int] = None
    lock_contention_penalty: int = 0

    def __post_init__(self) -> None:
        if self.lock_admission is not None and self.lock_admission < 1:
            raise ValueError("lock_admission must be >= 1 (or None)")
        if self.lock_contention_penalty < 0:
            raise ValueError("lock_contention_penalty must be >= 0")
        if self.control not in (
            CONTROL_OFF,
            CONTROL_CENTRALIZED,
            CONTROL_DECENTRALIZED,
        ):
            raise ValueError(f"unknown control mode {self.control!r}")
        if self.control == CONTROL_CENTRALIZED and self.board is None:
            raise ValueError("centralized control requires a ControlBoard")
        if self.poll_interval <= 0:
            raise ValueError("poll_interval must be positive")
        if self.stale_target_ttl is not None and self.stale_target_ttl <= 0:
            raise ValueError("stale_target_ttl must be positive")
        if (
            self.stale_target_ttl is not None
            and self.stale_target_ttl < self.poll_interval
        ):
            # A TTL shorter than the poll interval would declare the board
            # stale on every single poll: the package would back off and
            # expire a perfectly healthy server's target.
            raise ValueError(
                f"stale_target_ttl ({self.stale_target_ttl}) must be >= "
                f"poll_interval ({self.poll_interval}); a shorter TTL "
                "expires a healthy target on every poll"
            )
        if self.poll_backoff_max is None:
            self.poll_backoff_max = 8 * self.poll_interval
        elif self.poll_backoff_max < self.poll_interval:
            raise ValueError("poll_backoff_max must be >= poll_interval")


class ThreadsPackage:
    """Run one application's tasks on a pool of worker processes.

    The control-plane interaction (registration, polling, target
    adoption, compliance telemetry) lives in :attr:`adapter`, a
    :class:`~repro.threads.adapter.RuntimeAdapter`; this class is the
    *task-queue* runtime.  Subclasses override :attr:`adapter_class` and
    the worker program to model runtimes with different safe points
    (:class:`~repro.threads.forkjoin.ForkJoinPackage`,
    :class:`~repro.threads.pipeline.PipelinePackage`).
    """

    #: Runtime name (mirrors the adapter's; used by scenario specs).
    runtime = "taskqueue"
    #: The adapter this package class speaks the control plane through.
    adapter_class = TaskQueueAdapter

    def __init__(
        self,
        kernel: Kernel,
        app: Any,
        n_processes: int,
        config: Optional[ThreadsPackageConfig] = None,
    ) -> None:
        if n_processes < 1:
            raise ValueError("n_processes must be >= 1")
        self.kernel = kernel
        self.app = app
        self.app_id: str = app.app_id
        self.n_processes = n_processes
        self.config = config or ThreadsPackageConfig()

        self.queue = TaskQueue(f"{self.app_id}.queue")
        if self.config.lock_admission is not None:
            self.queue.lock.admission = self.config.lock_admission
        if self.config.lock_contention_penalty:
            self.queue.lock.contention_penalty = self.config.lock_contention_penalty
        self.adapter: RuntimeAdapter = self.adapter_class(self)
        # The adapter owns the shared control block; alias it so every
        # existing consumer (runner, sanitizer, tests) reads the same
        # object under the historical name.
        self.control = self.adapter.control
        self.work_sem = Semaphore(f"{self.app_id}.work", initial=0)

        self.worker_pids: List[int] = []
        self.started_at: Optional[int] = None
        self.finished_at: Optional[int] = None
        self.finished = False
        self._outstanding = 0
        self.tasks_completed = 0
        #: CPU time burnt polling an empty queue (the busy-wait package's
        #: producer/consumer waste; approximate, in microseconds).
        self.idle_poll_time = 0
        #: Service tenancy: applications exposing a ``service_profile``
        #: (see :class:`repro.apps.service.ServiceApp`) get per-request
        #: latency accounting and piggybacked QoS reports; for everything
        #: else these stay ``None`` and cost nothing.
        self.service_profile = getattr(app, "service_profile", None)
        self.request_log: Optional[RequestLog] = (
            RequestLog(
                slo_us=self.service_profile.slo_us,
                tier=self.service_profile.tier,
            )
            if self.service_profile is not None
            else None
        )
        self._slowdown_ewma: Optional[float] = None

    # ------------------------------------------------------------------
    # Launching
    # ------------------------------------------------------------------

    def start(self) -> None:
        """Spawn the worker processes (call at the application's arrival).

        The root worker (index 0) registers with the server and enqueues
        the application's initial tasks before entering the common loop.
        """
        if self.worker_pids:
            raise RuntimeError(f"application {self.app_id!r} already started")
        self.started_at = self.kernel.now
        controllable = self.config.control is not None
        for index in range(self.n_processes):
            process = self.kernel.spawn(
                self._worker_program(index),
                name=f"{self.app_id}.w{index}",
                app_id=self.app_id,
                controllable=controllable,
                ppid=self.worker_pids[0] if self.worker_pids else 0,
                cache_footprint=getattr(self.app, "cache_footprint", 1.0),
            )
            self.worker_pids.append(process.pid)

    @property
    def wall_time(self) -> Optional[int]:
        """Completion time minus start time, once finished."""
        if self.started_at is None or self.finished_at is None:
            return None
        return self.finished_at - self.started_at

    # ------------------------------------------------------------------
    # Worker program
    # ------------------------------------------------------------------

    def _worker_program(self, index: int):
        config = self.config
        if index == 0:
            initial = list(self.app.initial_tasks())
            if not initial:
                raise ValueError(
                    f"application {self.app_id!r} produced no initial tasks"
                )
            if config.server_channel is not None and config.control is not None:
                yield from self.adapter.register(len(initial))
            yield from self._enqueue_tasks(initial)
        backoff = config.spin_poll_gap
        # With control off, _control_point would yield nothing forever;
        # skip even constructing the generator in the per-task loop.
        controlled = config.control is not None
        # The peek below models a raw shared-memory read, so reading the
        # deque directly (not via len(queue)) is both faithful and free.
        queue_items = self.queue._items
        control_point = self.adapter.control_point
        while True:
            if controlled:
                yield from control_point(index)
            if config.idle_spin:
                # Busy-wait package: peek (free shared-memory read), take
                # the lock only when there might be work, back off while
                # the queue stays empty.
                item = None
                if queue_items:
                    item = yield from self._locked_try_pop()
                if item is None:
                    self.idle_poll_time += backoff
                    yield sc.Compute(backoff)
                    backoff = min(backoff * 2, config.spin_poll_max_gap)
                    continue
                backoff = config.spin_poll_gap
            else:
                yield sc.SemWait(self.work_sem)
                item = yield from self._locked_pop()
            if item is POISON:
                return
            yield from self._run_task(item)

    # -- queue protocol (spinlock-guarded critical sections) ---------------

    def _locked_push(self, items: Iterable[object], queue: Optional[TaskQueue] = None):
        config = self.config
        if queue is None:
            queue = self.queue
        if config.use_no_preempt_flags:
            yield sc.SetNoPreempt(True)
        yield sc.SpinAcquire(queue.lock)
        for item in items:
            if getattr(item, "urgent", False):
                queue.push_front(item)
            else:
                queue.push(item)
        yield sc.Compute(config.queue_op_cost)
        yield sc.SpinRelease(queue.lock)
        if config.use_no_preempt_flags:
            yield sc.SetNoPreempt(False)

    def _locked_pop(self, queue: Optional[TaskQueue] = None):
        config = self.config
        if queue is None:
            queue = self.queue
        if config.use_no_preempt_flags:
            yield sc.SetNoPreempt(True)
        yield sc.SpinAcquire(queue.lock)
        yield sc.Compute(config.queue_op_cost)
        item = queue.pop()
        yield sc.SpinRelease(queue.lock)
        if config.use_no_preempt_flags:
            yield sc.SetNoPreempt(False)
        if item is None:
            raise RuntimeError(
                f"{self.app_id}: semaphore/queue mismatch (empty pop)"
            )
        return item

    def _locked_try_pop(self, queue: Optional[TaskQueue] = None):
        """Like :meth:`_locked_pop` but returns None on a lost race."""
        config = self.config
        if queue is None:
            queue = self.queue
        if config.use_no_preempt_flags:
            yield sc.SetNoPreempt(True)
        yield sc.SpinAcquire(queue.lock)
        yield sc.Compute(config.queue_op_cost)
        item = queue.pop()
        yield sc.SpinRelease(queue.lock)
        if config.use_no_preempt_flags:
            yield sc.SetNoPreempt(False)
        return item

    def queue_lock_stats(self) -> "tuple[int, int, int]":
        """(contended acquisitions, holder-preempted encounters, spin time)
        summed over this package's queue locks -- one lock here; stage
        runtimes aggregate several."""
        lock = self.queue.lock
        return (
            lock.contended_acquisitions,
            lock.holder_preempted_encounters,
            lock.total_spin_time,
        )

    def _enqueue_tasks(self, tasks: List[Task]):
        self._outstanding += len(tasks)
        yield from self._locked_push(tasks)
        if not self.config.idle_spin:
            for _ in tasks:
                yield sc.SemPost(self.work_sem)

    # -- task execution ------------------------------------------------------

    def _run_task(self, task: Task):
        if self.config.task_overhead:
            yield sc.Compute(self.config.task_overhead)
        body = task.body()
        result: Any = None
        while True:
            try:
                op = body.send(result)
            except StopIteration:
                break
            if isinstance(op, SpawnTask):
                yield from self._enqueue_tasks([op.task])
                result = None
            else:
                result = yield op
        self.tasks_completed += 1
        if task.meta:
            self._note_service_completion(task)
        follow = list(self.app.on_task_done(task))
        if follow:
            yield from self._enqueue_tasks(follow)
        self._outstanding -= 1
        if self._outstanding == 0:
            yield from self._finish()

    #: EWMA coefficient of the slowdown estimate reported to the server:
    #: heavy enough to follow a load swing within a few requests, damped
    #: enough that one outlier request does not whipsaw the allocation.
    _SLOWDOWN_ALPHA = 0.3

    def _note_service_completion(self, task: Task) -> None:
        """Stamp a finished request (reduce task) into the latency log.

        Latency is measured from the request's *intended* arrival instant
        (carried in ``task.meta``), so dispatcher starvation shows up as
        real latency -- the open-arrival property.  Trace emissions here
        are log appends, not engine events, so they cannot perturb the
        schedule or the golden digests.
        """
        meta = task.meta
        rid = meta.get("service_request")
        if rid is None or self.request_log is None:
            return
        now = self.kernel.now
        latency = self.request_log.append(rid, meta["service_arrival"], now)
        slo = meta.get("service_slo", self.request_log.slo_us)
        self.kernel.trace.emit(
            now,
            "service.request",
            app_id=self.app_id,
            rid=rid,
            latency=latency,
            slo=slo,
        )
        if latency > slo:
            self.kernel.trace.emit(
                now,
                "service.slo_violation",
                app_id=self.app_id,
                rid=rid,
                latency=latency,
                slo=slo,
            )
        slowdown = latency / self.service_profile.nominal_latency_us
        if self._slowdown_ewma is None:
            self._slowdown_ewma = slowdown
        else:
            self._slowdown_ewma = (
                self._SLOWDOWN_ALPHA * slowdown
                + (1.0 - self._SLOWDOWN_ALPHA) * self._slowdown_ewma
            )

    def _finish(self):
        """Run by whichever worker completes the last task."""
        self.finished = True
        self.finished_at = self.kernel.now
        self.kernel.trace.emit(
            self.finished_at,
            "app.finished",
            app_id=self.app_id,
            wall_time=self.wall_time,
        )
        # Wake every suspended worker so it can consume its poison task.
        while self.control.suspended:
            pid = self.control.suspended.popleft()
            self.control.runnable_workers += 1
            yield sc.SendSignal(pid, FINISH)
        yield from self._locked_push([POISON] * self.n_processes)
        if not self.config.idle_spin:
            for _ in range(self.n_processes):
                yield sc.SemPost(self.work_sem)

    # ------------------------------------------------------------------
    # Process control (the safe suspension point)
    # ------------------------------------------------------------------
    # The logic lives in the runtime adapter (repro.threads.adapter); the
    # historical method names stay as thin delegates for callers and docs
    # that address the package directly.

    def _control_point(self, index: int):
        yield from self.adapter.control_point(index)

    def _poll(self):
        yield from self.adapter.poll()
