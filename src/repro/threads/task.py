"""Tasks: the user-level threads multiplexed onto worker processes.

A :class:`Task` is "a small chunk of computation that may potentially
execute in parallel" (Section 1).  Its body is a generator factory: when a
worker process picks the task up, it instantiates the generator and
forwards every yielded kernel syscall, so a task may compute, take
application spinlocks, sleep, and so on.  A task may also yield
:class:`SpawnTask` to add new tasks to the application's queue -- "as the
result of executing a thread of control, that thread may decide to add new
threads to the task queue".
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Generator, Optional

from repro.kernel import syscalls as sc
from repro.sync import SpinLock

#: Type of a task body: a no-argument callable returning a fresh generator.
TaskBody = Callable[[], Generator[Any, Any, None]]


@dataclass
class SpawnTask:
    """Yielded *by a task body* to enqueue a new task dynamically."""

    task: "Task"


@dataclass
class Task:
    """One user-level thread.

    Attributes:
        name: label for traces and debugging.
        body: generator factory executed by whichever worker dequeues the
            task.
        phase: optional phase index (used by phased applications).
        meta: free-form application payload.
        urgent: enqueue at the *front* of the task queue instead of the
            back.  Service applications mark their dispatcher segments
            urgent so request admission keeps pace with the arrival clock
            instead of queueing behind a backlog of stage work -- the
            task-queue analogue of the elevated priority every real
            server gives its accept loop.
    """

    name: str
    body: TaskBody
    phase: int = 0
    meta: dict = field(default_factory=dict)
    urgent: bool = False

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Task {self.name!r} phase={self.phase}>"


def compute_task(
    name: str,
    cost: int,
    lock: Optional[SpinLock] = None,
    critical_cost: int = 0,
    phase: int = 0,
) -> Task:
    """A common task shape: compute, then optionally a short critical section.

    This mirrors how the paper's applications behave: the bulk of a task is
    independent computation, followed by a brief spinlock-protected update
    of shared state (accumulating a result row, merging a partial sum).
    The critical section is what makes untimely preemption expensive.
    """
    if cost < 0 or critical_cost < 0:
        raise ValueError("task costs must be >= 0")

    def body():
        if cost:
            yield sc.Compute(cost)
        if lock is not None and critical_cost:
            yield sc.SpinAcquire(lock)
            yield sc.Compute(critical_cost)
            yield sc.SpinRelease(lock)

    return Task(name=name, body=body, phase=phase)
