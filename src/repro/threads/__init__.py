"""The task-queue threads package (Brown University Threads analogue).

The paper's applications are written against a user-level threads package:
the programmer splits work into *tasks* (user-level threads), worker
*processes* pick tasks off a shared queue and run them, and -- after the
paper's modification -- the package transparently suspends and resumes
worker processes at safe points (between tasks) to track the process-count
target published by the central server.  "The interface to the threads
commands was not changed when process control was added" (Section 5); here,
the same :class:`ThreadsPackage` runs applications with control enabled or
disabled via configuration only.

Public API
----------

- :class:`~repro.threads.task.Task` and :func:`~repro.threads.task.compute_task`
- :class:`~repro.threads.task.SpawnTask` -- in-task dynamic task creation
- :class:`~repro.threads.taskqueue.TaskQueue`
- :class:`~repro.threads.package.ThreadsPackage` /
  :class:`~repro.threads.package.ThreadsPackageConfig`
- :class:`~repro.threads.control.ControlState` -- per-application process
  control bookkeeping.
"""

from repro.threads.task import SpawnTask, Task, compute_task
from repro.threads.taskqueue import TaskQueue
from repro.threads.control import ControlState
from repro.threads.adapter import (
    RUNTIME_NAMES,
    ForkJoinAdapter,
    PipelineAdapter,
    RuntimeAdapter,
    TaskQueueAdapter,
)
from repro.threads.package import ThreadsPackage, ThreadsPackageConfig
from repro.threads.forkjoin import ForkJoinPackage
from repro.threads.pipeline import PipelinePackage

#: Runtime name -> package class (the scenario layer's dispatch table).
PACKAGE_CLASSES = {
    ThreadsPackage.runtime: ThreadsPackage,
    ForkJoinPackage.runtime: ForkJoinPackage,
    PipelinePackage.runtime: PipelinePackage,
}


def make_package(runtime, kernel, app, n_processes, config=None):
    """Build the package for *runtime* (``"taskqueue"`` is the default)."""
    try:
        package_class = PACKAGE_CLASSES[runtime or "taskqueue"]
    except KeyError:
        raise ValueError(
            f"unknown runtime {runtime!r}; expected one of {RUNTIME_NAMES}"
        ) from None
    return package_class(kernel, app, n_processes, config=config)


__all__ = [
    "Task",
    "SpawnTask",
    "compute_task",
    "TaskQueue",
    "ControlState",
    "RuntimeAdapter",
    "TaskQueueAdapter",
    "ForkJoinAdapter",
    "PipelineAdapter",
    "RUNTIME_NAMES",
    "PACKAGE_CLASSES",
    "make_package",
    "ThreadsPackage",
    "ThreadsPackageConfig",
    "ForkJoinPackage",
    "PipelinePackage",
]
