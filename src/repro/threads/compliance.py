"""Per-tenant compliance telemetry.

The paper assumes every application *can* hand processors back at a safe
suspension point shortly after being asked.  Real runtimes differ: a
task-queue package complies within a task, a fork-join runtime only at
the next phase barrier, a pipeline only when a stage drains, and an
uncontrolled tenant never.  The :class:`ComplianceTracker` measures that
difference as three figures every adapter maintains at its safe points:

* **adoption lag** -- time from the server *publishing* a shrink target
  to the runtime's runnable worker count actually conforming to it;
* **residual overshoot** -- workers kept runnable above the published
  target at the moment of a safe point (nonzero while adoption is
  pending, permanently nonzero for a tenant whose structural floor
  exceeds its grant);
* **safe-point interval** -- observed gap between consecutive safe
  suspension points (how often the runtime *could* comply at all).

A :class:`ComplianceReport` snapshot is piggybacked on every control
poll through the :class:`~repro.kernel.ipc.ControlBoard`'s reverse
channel -- a free shared-memory write, like the demand and QoS words --
and consumed by the compliance-aware allocation policy
(:class:`repro.core.allocation.CompliancePolicy`).  All tracker updates
are host-side bookkeeping between simulation yields: they add no events
and cannot move golden digests.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple


@dataclass(frozen=True)
class ComplianceReport:
    """One tenant's compliance snapshot, as written to the board.

    Attributes:
        runtime: the reporting adapter's runtime name (``"taskqueue"``,
            ``"forkjoin"``, ``"pipeline"``).
        floor: the runtime's declared structural floor -- the worker
            count below which it cannot shrink (1 for a task queue, one
            per stage for a pipeline).  Overshoot at or below the floor
            is structural, not misbehaviour.
        overshoot: runnable workers above the *published* target at the
            tenant's most recent safe point (0.0 = fully compliant).
        adoption_lag_us: the most recent shrink's publish-to-conformance
            lag; ``None`` until the first adoption completes.
        max_adoption_lag_us: worst adoption lag observed so far.
        safe_point_gap_us: mean observed gap between safe points;
            ``None`` until two safe points have been seen.
        adoptions: completed target adoptions (shrinks fully honoured).
        reported_at: board timestamp of this report.
    """

    runtime: str
    floor: int
    overshoot: float
    adoption_lag_us: Optional[int]
    max_adoption_lag_us: int
    safe_point_gap_us: Optional[float]
    adoptions: int
    reported_at: int


class ComplianceTracker:
    """Accumulates one runtime's compliance figures at its safe points.

    The tracker is deliberately passive: adapters call
    :meth:`note_safe_point` whenever they reach a point at which they
    could suspend, :meth:`note_published` whenever they *read* a target
    off the board, and :meth:`note_conformed` whenever their runnable
    count is at or below the pending target.  Everything else is
    arithmetic.
    """

    def __init__(self) -> None:
        # Safe-point cadence.
        self.safe_points = 0
        self._last_safe_point: Optional[int] = None
        self.safe_point_gap_total = 0
        self.max_safe_point_gap = 0
        # Pending shrink: (target, published_at), cleared on conformance.
        self._pending: Optional[Tuple[int, int]] = None
        # Adoption-lag statistics.
        self.adoptions = 0
        self.adoption_lag_total = 0
        self.last_adoption_lag: Optional[int] = None
        self.max_adoption_lag = 0
        # Overshoot statistics (sampled at polls/safe points).
        self.overshoot = 0.0
        self.overshoot_peak = 0.0

    # -- safe-point cadence -------------------------------------------------

    def note_safe_point(self, now: int) -> None:
        """Record reaching a safe suspension point at *now*."""
        self.safe_points += 1
        last = self._last_safe_point
        if last is not None and now > last:
            gap = now - last
            self.safe_point_gap_total += gap
            if gap > self.max_safe_point_gap:
                self.max_safe_point_gap = gap
        self._last_safe_point = now

    @property
    def mean_safe_point_gap(self) -> Optional[float]:
        """Mean gap between safe points (``None`` before the second)."""
        if self.safe_points < 2:
            return None
        return self.safe_point_gap_total / (self.safe_points - 1)

    # -- target adoption ----------------------------------------------------

    def note_published(
        self, target: int, runnable: int, now: int,
        published_at: Optional[int] = None,
    ) -> None:
        """A target was read off the board with *runnable* workers up.

        Samples the residual overshoot, and (for a shrink the runtime has
        not yet honoured) starts -- or keeps -- the adoption clock from
        the server's publish instant *published_at* (defaulting to the
        read instant when the board does not know).
        """
        overshoot = float(max(0, runnable - target))
        self.overshoot = overshoot
        if overshoot > self.overshoot_peak:
            self.overshoot_peak = overshoot
        if runnable <= target:
            # Already conforming: the latest published word supersedes
            # any older pending shrink (a growth back to 6 cancels an
            # unadopted shrink to 2 -- no adoption happened).
            self._pending = None
            return
        since = published_at if published_at is not None else now
        pending = self._pending
        if pending is None or pending[0] != target:
            # A new shrink (or a different target) restarts the clock at
            # its own publish instant.
            self._pending = (target, since)

    def note_conformed(self, runnable: int, now: int) -> None:
        """The runtime's runnable count reached the pending target."""
        pending = self._pending
        if pending is None:
            return
        target, since = pending
        if runnable > target:
            return
        lag = max(0, now - since)
        self._pending = None
        self.adoptions += 1
        self.adoption_lag_total += lag
        self.last_adoption_lag = lag
        if lag > self.max_adoption_lag:
            self.max_adoption_lag = lag
        self.overshoot = 0.0

    def note_released(self) -> None:
        """Control released the target (TTL expiry): nothing is pending."""
        self._pending = None
        self.overshoot = 0.0

    @property
    def pending_target(self) -> Optional[int]:
        """The shrink target awaiting adoption, if any."""
        return self._pending[0] if self._pending is not None else None

    @property
    def mean_adoption_lag(self) -> Optional[float]:
        """Mean publish-to-conformance lag (``None`` before the first)."""
        if not self.adoptions:
            return None
        return self.adoption_lag_total / self.adoptions

    # -- reporting ----------------------------------------------------------

    def report(self, runtime: str, floor: int, now: int) -> ComplianceReport:
        """A board-ready snapshot of the current figures."""
        return ComplianceReport(
            runtime=runtime,
            floor=floor,
            overshoot=self.overshoot,
            adoption_lag_us=self.last_adoption_lag,
            max_adoption_lag_us=self.max_adoption_lag,
            safe_point_gap_us=self.mean_safe_point_gap,
            adoptions=self.adoptions,
            reported_at=now,
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<ComplianceTracker overshoot={self.overshoot} "
            f"adoptions={self.adoptions} pending={self._pending}>"
        )
