"""The fork-join runtime: phases separated by real barriers.

The task-queue package can suspend a worker between *any* two tasks; an
OpenMP-style fork-join runtime cannot.  Its workers belong to a phase
team: they run their share of the phase, then wait at a barrier until the
whole phase has drained.  The barrier is the **only** safe suspension
point -- suspending a mid-phase worker would stall the barrier for
everyone (exactly the pathology Section 3 of the paper ascribes to
barrier applications under time-slicing).

:class:`ForkJoinPackage` ports the phased applications in
:mod:`repro.apps` (Jacobi, FFT, Gaussian elimination -- anything built on
:class:`~repro.apps.base.PhasedApplication`) onto that model:

* workers pull the current phase's tasks from the shared queue; a worker
  that finds the queue empty *parks* at the barrier (blocks on a signal)
  instead of busy-waiting;
* the worker whose task completion drains the phase (``on_task_done``
  returns the next phase) is the **closer**: with every peer parked, it
  runs the adapter's barrier point (poll + pending-target adoption) and
  releases exactly the adopted width of workers into the next phase;
* a shrink published mid-phase therefore takes effect one barrier later
  -- the adoption lag the compliance telemetry reports.

Barrier parking is not process-control suspension: it uses its own
bookkeeping (``parked`` / ``active_workers``) and stays off the
``pc.suspend``/``pc.resume``/``pc.wake`` trace protocol, whose pairing
the trace lint enforces for the poll-driven runtimes.  Control-driven
*withholding* (a parked worker not released because the target shrank) is
what increments the ``suspensions``/``resumes`` counters.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Deque, List, Optional, Set

from repro.kernel import Kernel, syscalls as sc
from repro.threads.adapter import ForkJoinAdapter
from repro.threads.control import FINISH, RESUME
from repro.threads.package import ThreadsPackage, ThreadsPackageConfig
from repro.threads.task import SpawnTask, Task


class ForkJoinPackage(ThreadsPackage):
    """Run a phased application as a fork-join team with real barriers."""

    runtime = "forkjoin"
    adapter_class = ForkJoinAdapter

    def __init__(
        self,
        kernel: Kernel,
        app: Any,
        n_processes: int,
        config: Optional[ThreadsPackageConfig] = None,
    ) -> None:
        super().__init__(kernel, app, n_processes, config=config)
        #: Pids parked at the barrier (ran out of phase work, or withheld
        #: by a shrunken target), FIFO.
        self.parked: Deque[int] = deque()
        #: Workers licensed to run the current phase and not parked.
        self.active_workers = n_processes
        #: Pids currently withheld *by control* (parked across a barrier
        #: because the adopted target was below the team size).
        self._withheld: Set[int] = set()
        self.phases_closed = 0
        self.barrier_parks = 0

    # ------------------------------------------------------------------
    # Worker program
    # ------------------------------------------------------------------

    def _worker_program(self, index: int):
        config = self.config
        if index == 0:
            initial = list(self.app.initial_tasks())
            if not initial:
                raise ValueError(
                    f"application {self.app_id!r} produced no initial tasks"
                )
            if config.server_channel is not None and config.control is not None:
                yield from self.adapter.register(len(initial))
            yield from self._enqueue_tasks(initial)
            # Workers spawned behind us may already be parked (they found
            # an empty queue before the seed arrived): wake them.
            yield from self._release_to_width()
        control = self.control
        queue_items = self.queue._items
        while True:
            if self.finished:
                return
            # A worker that raced past a barrier close parks when the
            # adopted width says the new phase is already fully staffed.
            if (
                control.target is not None
                and self.active_workers > max(control.target, 1)
            ):
                payload = yield from self._park(index)
                if payload == FINISH or self.finished:
                    return
                continue
            item = None
            if queue_items:
                item = yield from self._locked_try_pop()
            if item is None:
                if self.finished:
                    return
                # Out of phase work: wait at the barrier for the closer.
                payload = yield from self._park(index)
                if payload == FINISH or self.finished:
                    return
                continue
            yield from self._run_task(item)

    def _park(self, index: int):
        """Block at the barrier until released (returns the wake payload)."""
        my_pid = self.worker_pids[index]
        self.active_workers -= 1
        self.parked.append(my_pid)
        self.barrier_parks += 1
        payload = yield sc.WaitSignal()
        # The releaser already re-counted us among the active workers.
        return payload

    # Fork-join teams never use the blocking-semaphore queue mode: the
    # barrier protocol replaces the idle policy entirely.
    def _enqueue_tasks(self, tasks: List[Task]):
        self._outstanding += len(tasks)
        yield from self._locked_push(tasks)

    # ------------------------------------------------------------------
    # Task execution and the barrier
    # ------------------------------------------------------------------

    def _run_task(self, task: Task):
        if self.config.task_overhead:
            yield sc.Compute(self.config.task_overhead)
        body = task.body()
        result: Any = None
        while True:
            try:
                op = body.send(result)
            except StopIteration:
                break
            if isinstance(op, SpawnTask):
                yield from self._enqueue_tasks([op.task])
                result = None
            else:
                result = yield op
        self.tasks_completed += 1
        if task.meta:
            self._note_service_completion(task)
        follow = list(self.app.on_task_done(task))
        self._outstanding -= 1
        if follow:
            if self._outstanding == 0:
                # My completion drained the phase: I am the closer.
                yield from self._close_phase(follow)
            else:
                # Dynamic same-phase continuation (non-barrier app on the
                # fork-join runtime): extend the current phase and wake
                # parked peers to help drain it.
                yield from self._enqueue_tasks(follow)
                yield from self._release_to_width()
        elif self._outstanding == 0:
            yield from self._finish()

    def _release_to_width(self):
        """Wake parked workers until the team reaches the adopted width."""
        control = self.control
        target = control.target
        live = self.active_workers + len(self.parked)
        width = live if target is None else max(min(target, live), 1)
        released: List[int] = []
        while self.active_workers < width and self.parked:
            pid = self.parked.popleft()
            self.active_workers += 1
            if pid in self._withheld:
                self._withheld.discard(pid)
                control.resumes += 1
            released.append(pid)
        for pid in released:
            yield sc.SendSignal(pid, RESUME)

    def _close_phase(self, follow: List[Task]):
        """Close the phase barrier and open the next (closer only)."""
        self.phases_closed += 1
        # The barrier is the safe point: poll if due, adopt any pending
        # shrink.  Every peer is parked, so adoption is conflict-free.
        yield from self.adapter.barrier_point()
        yield from self._enqueue_tasks(follow)
        yield from self._release_to_width()
        control = self.control
        for pid in self.parked:
            if pid not in self._withheld:
                # Parked across the barrier because the target shrank:
                # this is the fork-join form of a control suspension.
                self._withheld.add(pid)
                control.suspensions += 1
        control.runnable_workers = self.active_workers
        self.adapter.tracker.note_conformed(
            control.runnable_workers, self.kernel.now
        )

    def _finish(self):
        """Run by whichever worker completes the last task."""
        self.finished = True
        self.finished_at = self.kernel.now
        self.kernel.trace.emit(
            self.finished_at,
            "app.finished",
            app_id=self.app_id,
            wall_time=self.wall_time,
        )
        self._withheld.clear()
        while self.parked:
            pid = self.parked.popleft()
            self.active_workers += 1
            yield sc.SendSignal(pid, FINISH)
        # No poison tasks: workers exit on the finished flag.
