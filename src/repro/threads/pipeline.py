"""The pipeline runtime: dedicated stage threads, one queue per stage.

Each worker process is bound to one pipeline stage for life -- the model
of a media or packet pipeline where the decoder thread *is* the decoder.
Items flow stage to stage through per-stage queues, so the package's lock
footprint is one spinlock per stage rather than one global queue lock.

Safe-point semantics (see :class:`~repro.threads.adapter.PipelineAdapter`):

* a stage worker reaches a safe suspension point only when its stage
  queue has drained; mid-stream suspension would dam the pipe for every
  downstream stage;
* the first worker of each stage (indices ``0..n_stages-1``) is the stage
  *primary* and never suspends -- the runtime's declared floor is one
  worker per stage, reported to the server through the compliance
  telemetry;
* surplus workers suspend through the standard ``pc.suspend`` /
  ``pc.resume`` / ``pc.wake`` protocol, so the trace lint's pairing
  invariants hold exactly as for the task-queue runtime.

A target below the floor is adopted *at* the floor: the pipeline cannot
run narrower without stalling a stage entirely.  The residual overshoot
above the published target is reported as structural, and the
``compliance`` allocation policy charges it as uncontrolled load instead
of re-granting processors the pipeline can never release.
"""

from __future__ import annotations

from typing import Any, List, Optional

from repro.kernel import Kernel, syscalls as sc
from repro.threads.adapter import PipelineAdapter
from repro.threads.control import FINISH
from repro.threads.package import ThreadsPackage, ThreadsPackageConfig
from repro.threads.task import SpawnTask, Task
from repro.threads.taskqueue import TaskQueue


class PipelinePackage(ThreadsPackage):
    """Run a :class:`~repro.apps.pipeline.PipelineApp` with stage threads."""

    runtime = "pipeline"
    adapter_class = PipelineAdapter

    def __init__(
        self,
        kernel: Kernel,
        app: Any,
        n_processes: int,
        config: Optional[ThreadsPackageConfig] = None,
    ) -> None:
        n_stages = getattr(app, "n_stages", None)
        if n_stages is None:
            raise ValueError(
                f"application {app.app_id!r} declares no stages; the "
                "pipeline runtime needs a PipelineApp-style application"
            )
        if n_processes < n_stages:
            raise ValueError(
                f"pipeline {app.app_id!r} has {n_stages} stages but only "
                f"{n_processes} workers; every stage needs a dedicated one"
            )
        # The adapter's floor property reads n_stages, so set it before
        # the base constructor builds the adapter.
        self.n_stages = n_stages
        super().__init__(kernel, app, n_processes, config=config)
        self.stage_queues: List[TaskQueue] = [
            TaskQueue(f"{self.app_id}.stage{stage}")
            for stage in range(n_stages)
        ]
        # Keep the base attribute pointing at a real queue (stage 0 feeds
        # the pipe); aggregate accessors go through queue_lock_stats().
        self.queue = self.stage_queues[0]
        #: Stage each worker index is bound to (round-robin, so the first
        #: n_stages workers are the per-stage primaries).
        self.stage_of = [
            index % n_stages for index in range(n_processes)
        ]

    def queue_lock_stats(self) -> "tuple[int, int, int]":
        contended = holder_preempted = spin_time = 0
        for queue in self.stage_queues:
            lock = queue.lock
            contended += lock.contended_acquisitions
            holder_preempted += lock.holder_preempted_encounters
            spin_time += lock.total_spin_time
        return (contended, holder_preempted, spin_time)

    # ------------------------------------------------------------------
    # Worker program
    # ------------------------------------------------------------------

    def _worker_program(self, index: int):
        config = self.config
        if index == 0:
            initial = list(self.app.initial_tasks())
            if not initial:
                raise ValueError(
                    f"application {self.app_id!r} produced no initial tasks"
                )
            if config.server_channel is not None and config.control is not None:
                yield from self.adapter.register(len(initial))
            # Outstanding counts *items in flight*, not stage tasks.
            self._outstanding += len(initial)
            yield from self._locked_push(initial, queue=self.stage_queues[0])
        stage = self.stage_of[index]
        queue = self.stage_queues[stage]
        queue_items = queue._items
        backoff = config.spin_poll_gap
        controlled = config.control is not None
        stage_point = self.adapter.stage_point
        while True:
            if controlled:
                yield from stage_point(index)
            if self.finished:
                return
            item = None
            if queue_items:
                item = yield from self._locked_try_pop(queue=queue)
            if item is None:
                # Stage drained (or lost the race): spin-poll with backoff
                # like the busy-wait task-queue package.
                self.idle_poll_time += backoff
                yield sc.Compute(backoff)
                backoff = min(backoff * 2, config.spin_poll_max_gap)
                continue
            backoff = config.spin_poll_gap
            yield from self._run_stage_task(item, stage)

    # ------------------------------------------------------------------
    # Stage execution
    # ------------------------------------------------------------------

    def _run_stage_task(self, task: Task, stage: int):
        if self.config.task_overhead:
            yield sc.Compute(self.config.task_overhead)
        body = task.body()
        result: Any = None
        while True:
            try:
                op = body.send(result)
            except StopIteration:
                break
            if isinstance(op, SpawnTask):
                # Dynamic work joins the spawning worker's own stage.
                yield from self._locked_push(
                    [op.task], queue=self.stage_queues[stage]
                )
                result = None
            else:
                result = yield op
        self.tasks_completed += 1
        follow = self.app.next_stage_task(task, stage)
        if follow is not None:
            yield from self._locked_push(
                [follow], queue=self.stage_queues[stage + 1]
            )
            return
        # The item cleared the last stage.
        if task.meta:
            self._note_service_completion(task)
        self._outstanding -= 1
        if self._outstanding == 0:
            yield from self._finish()

    def _finish(self):
        """Run by whichever worker drains the last item's last stage."""
        self.finished = True
        self.finished_at = self.kernel.now
        self.kernel.trace.emit(
            self.finished_at,
            "app.finished",
            app_id=self.app_id,
            wall_time=self.wall_time,
        )
        control = self.control
        while control.suspended:
            pid = control.suspended.popleft()
            control.runnable_workers += 1
            yield sc.SendSignal(pid, FINISH)
        # No poison tasks: workers exit on the finished flag.
