"""Per-application process-control state.

One :class:`ControlState` is shared (simulated shared memory) by all worker
processes of an application.  Workers consult and update it at safe
suspension points; the mutations between simulation yields are atomic, just
as short lock-protected updates are on the real machine.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Optional

#: Signal payloads used by the suspension protocol.
RESUME = "pc-resume"
FINISH = "pc-finish"


class ControlState:
    """Shared control block for one application's worker processes.

    Attributes:
        target: the number of runnable processes the server most recently
            told this application to use (``None`` until the first poll,
            and again after a stale-target expiry released control).
        runnable_workers: workers currently not suspended by control.
        suspended: pids of suspended workers, FIFO ("kept on a queue",
            Section 5).
        last_poll: simulation time of the last server poll.
        last_fresh: time of the last poll that returned a fresh target.
        poll_gap: backoff-adjusted effective poll interval (``None`` =
            use the configured base interval).
        polls / suspensions / resumes: statistics for the reports.
        failed_polls / target_expiries: degradation statistics.
    """

    def __init__(self, n_workers: int) -> None:
        if n_workers < 1:
            raise ValueError("an application needs at least one worker")
        self.target: Optional[int] = None
        self.runnable_workers = n_workers
        self.suspended: Deque[int] = deque()
        self.last_poll: Optional[int] = None
        self.last_fresh: Optional[int] = None
        self.poll_gap: Optional[int] = None
        self.consecutive_failures = 0
        self.first_failure: Optional[int] = None
        self.polls = 0
        self.suspensions = 0
        self.resumes = 0
        self.failed_polls = 0
        self.target_expiries = 0

    def note_fresh(self, target: int, now: int) -> None:
        """Adopt a fresh server target; any backoff state is reset."""
        self.target = target
        self.polls += 1
        self.last_fresh = now
        self.poll_gap = None
        self.consecutive_failures = 0
        self.first_failure = None

    def note_fresh_deferred(self, now: int) -> None:
        """Record a fresh poll *without* adopting the width.

        Deferred-adoption runtimes (fork-join, pipeline) reset their
        backoff state the moment the board answers, but move
        :attr:`target` only when their workers actually conform at a safe
        point -- the adapter does that part.
        """
        self.polls += 1
        self.last_fresh = now
        self.poll_gap = None
        self.consecutive_failures = 0
        self.first_failure = None

    def note_failure(
        self,
        now: int,
        base_gap: int,
        max_gap: int,
        ttl: int,
        crash_epoch: Optional[int] = None,
    ) -> bool:
        """Record a failed/stale poll: back off (bounded exponential) and
        check the stale-target TTL.

        *crash_epoch* is the board's recorded server-death time, when one
        is known: the TTL then ages from the crash instant rather than
        from our last successful read, so every worker of every
        application releases a dead server's target on the same schedule
        no matter when it last happened to poll.

        Returns ``True`` when the TTL expired on this failure, in which
        case the target is released (``None``) so the application restores
        full parallelism rather than running forever at a stale width.
        """
        self.failed_polls += 1
        if self.consecutive_failures == 0:
            self.first_failure = now
        self.consecutive_failures += 1
        self.poll_gap = min(base_gap << self.consecutive_failures, max_gap)
        anchor = self.last_fresh if self.last_fresh is not None else self.first_failure
        if crash_epoch is not None:
            # The word was good until the server died, and nothing read
            # after the death is fresh: age from the crash instant -- or
            # from an even earlier failure streak (a wedged server that
            # then died must not have its countdown reset by the death
            # notice).
            anchor = crash_epoch
            if self.first_failure is not None:
                anchor = min(anchor, self.first_failure)
        if self.target is not None and now - anchor >= ttl:
            self.target = None
            self.target_expiries += 1
            return True
        return False

    def should_suspend(self) -> bool:
        """True when this worker ought to park itself at a safe point.

        Never suspends the last runnable worker, mirroring the server's
        guarantee that "each application has at least one runnable process
        to avoid starvation" -- defence in depth on the application side.
        """
        if self.target is None:
            return False
        return self.runnable_workers > max(self.target, 1)

    def should_resume(self) -> bool:
        """True when a suspended peer ought to be woken.

        A released target (``None`` after a stale-target expiry, or before
        the first poll) means control is not constraining us: if anyone is
        suspended, wake them -- the degraded mode is full parallelism, not
        a frozen stale width.
        """
        if not self.suspended:
            return False
        if self.target is None:
            return True
        return self.runnable_workers < self.target

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<ControlState target={self.target} "
            f"runnable={self.runnable_workers} suspended={len(self.suspended)}>"
        )
