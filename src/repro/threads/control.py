"""Per-application process-control state.

One :class:`ControlState` is shared (simulated shared memory) by all worker
processes of an application.  Workers consult and update it at safe
suspension points; the mutations between simulation yields are atomic, just
as short lock-protected updates are on the real machine.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Optional

#: Signal payloads used by the suspension protocol.
RESUME = "pc-resume"
FINISH = "pc-finish"


class ControlState:
    """Shared control block for one application's worker processes.

    Attributes:
        target: the number of runnable processes the server most recently
            told this application to use (``None`` until the first poll).
        runnable_workers: workers currently not suspended by control.
        suspended: pids of suspended workers, FIFO ("kept on a queue",
            Section 5).
        last_poll: simulation time of the last server poll.
        polls / suspensions / resumes: statistics for the reports.
    """

    def __init__(self, n_workers: int) -> None:
        if n_workers < 1:
            raise ValueError("an application needs at least one worker")
        self.target: Optional[int] = None
        self.runnable_workers = n_workers
        self.suspended: Deque[int] = deque()
        self.last_poll: Optional[int] = None
        self.polls = 0
        self.suspensions = 0
        self.resumes = 0

    def should_suspend(self) -> bool:
        """True when this worker ought to park itself at a safe point.

        Never suspends the last runnable worker, mirroring the server's
        guarantee that "each application has at least one runnable process
        to avoid starvation" -- defence in depth on the application side.
        """
        if self.target is None:
            return False
        return self.runnable_workers > max(self.target, 1)

    def should_resume(self) -> bool:
        """True when a suspended peer ought to be woken."""
        if self.target is None or not self.suspended:
            return False
        return self.runnable_workers < self.target

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<ControlState target={self.target} "
            f"runnable={self.runnable_workers} suspended={len(self.suspended)}>"
        )
