"""Runtime adapters: the control-plane side of a threads package.

Historically the control-plane interaction -- registration, the poll
cadence with its stale-target TTL and backoff, the QoS piggyback, and the
suspend/resume protocol -- was fused into :class:`ThreadsPackage`, which
hard-wired the *task-queue* answer to the central question: *when can a
worker safely give a processor back?*  Real oversubscribed machines mix
runtimes whose answers differ.  A :class:`RuntimeAdapter` owns exactly
that interaction for one package:

* :meth:`~RuntimeAdapter.report_demand` -- the backlog figure piggybacked
  on every poll for the demand-aware policies;
* :meth:`~RuntimeAdapter.adopt_target` -- how a target read off the board
  becomes the runtime's adopted width (immediately, at the next phase
  barrier, clamped at a structural floor, ...);
* :meth:`~RuntimeAdapter.safe_points` -- the observed safe-suspension-point
  cadence;
* :meth:`~RuntimeAdapter.compliance_snapshot` -- the per-tenant compliance
  telemetry (adoption lag, residual overshoot, safe-point interval)
  written back to the :class:`~repro.kernel.ipc.ControlBoard` on each
  poll, which the ``compliance`` allocation policy consumes.

Three adapters ship:

* :class:`TaskQueueAdapter` -- the paper's model, extracted verbatim:
  every point between tasks is safe, targets are adopted the instant they
  are read, workers suspend within one control point.  Bit-identical to
  the pre-refactor fused code at default configuration.
* :class:`ForkJoinAdapter` -- phases separated by barriers; the barrier is
  the *only* safe point, so a shrink published mid-phase is held pending
  and honoured when the phase closes (adoption lags by up to a phase).
* :class:`PipelineAdapter` -- dedicated stage threads that can park only
  when their stage drains, with a declared floor of one worker per stage;
  a target below the floor is adopted *at* the floor and the residual
  overshoot is reported as structural.

The adapters deliberately keep the *adopted* width
(:attr:`ControlState.target`, which the sanitizer's share-overrun check
audits) separate from the *published* one: a deferred adapter moves
``control.target`` only when its workers actually conform, so slow
adoption is visible to the allocation policy as telemetry rather than
tripping the invariant checker.
"""

from __future__ import annotations

from typing import Any, Dict, Optional

from repro.kernel import syscalls as sc
from repro.threads.compliance import ComplianceReport, ComplianceTracker
from repro.threads.control import RESUME, ControlState

#: Names of the runtimes a scenario can place a tenant on, in the order
#: they are documented (docs/RUNTIMES.md).
RUNTIME_NAMES = ("taskqueue", "forkjoin", "pipeline")


class RuntimeAdapter:
    """Base class: owns one package's control-plane interaction.

    The adapter holds the shared :class:`ControlState` and the
    :class:`ComplianceTracker`; the package exposes ``adapter.control`` as
    its own ``control`` attribute so every existing consumer (runner,
    sanitizer, tests) keeps reading the same object.
    """

    #: Runtime name, also used by scenario specs to pick the package class.
    runtime: str = "abstract"

    def __init__(self, package: Any) -> None:
        self.package = package
        self.control = ControlState(package.n_processes)
        self.tracker = ComplianceTracker()

    # ------------------------------------------------------------------
    # Protocol surface
    # ------------------------------------------------------------------

    @property
    def floor(self) -> int:
        """Structural floor: the width this runtime cannot shrink below."""
        return 1

    def report_demand(self) -> int:
        """The backlog figure piggybacked on polls (demand policies)."""
        return self.package._outstanding

    def adopt_target(self, target: int, now: int, fresh: bool) -> None:
        """Incorporate a target read off the board.

        *fresh* distinguishes the TTL-checked centralized path (which must
        also reset the poll-backoff state) from the plain adoption tail
        shared with decentralized mode.
        """
        raise NotImplementedError

    def safe_points(self) -> Dict[str, Any]:
        """Observed safe-point cadence (count, mean/max gap in us)."""
        tracker = self.tracker
        return {
            "count": tracker.safe_points,
            "mean_gap_us": tracker.mean_safe_point_gap,
            "max_gap_us": tracker.max_safe_point_gap,
        }

    def compliance_snapshot(self) -> ComplianceReport:
        """The report written to the board's compliance channel."""
        return self.tracker.report(
            self.runtime, self.floor, self.package.kernel.now
        )

    # ------------------------------------------------------------------
    # Shared mechanics
    # ------------------------------------------------------------------

    def register(self, initial_backlog: int):
        """Register with the server (root worker, before the first task).

        The initial backlog rides on the registration message so
        demand-aware policies see a demand figure before the application's
        first poll.
        """
        package = self.package
        config = package.config
        yield sc.ChannelSend(
            config.server_channel,
            (
                "register",
                package.app_id,
                package.worker_pids[0],
                initial_backlog,
            ),
        )
        if package.service_profile is not None and config.board is not None:
            # Announce the tier at registration (neutral slowdown: no
            # request has completed yet) so the SLO policy can classify
            # this tenant from its very first round.
            config.board.report_qos(
                package.app_id,
                0.0,
                package.service_profile.tier,
                package.kernel.now,
            )

    def _note_published(self, target: int, now: int) -> None:
        """Sample overshoot / start the adoption clock for a read target."""
        board = self.package.config.board
        published_at = (
            board.posted_at(self.package.app_id) if board is not None else None
        )
        self.tracker.note_published(
            target, self.control.runnable_workers, now, published_at
        )

    def note_target_released(self) -> None:
        """The stale-target TTL released control: nothing is pending."""
        self.tracker.note_released()

    def poll(self):
        """Ask the server (or the process table) for our current target.

        Verbatim extraction of the fused package's ``_poll``; the only
        additions are host-side compliance bookkeeping (free writes, no
        engine events) and routing adoption through :meth:`adopt_target`.
        """
        package = self.package
        kernel = package.kernel
        config = package.config
        control = self.control
        if config.control == "centralized":
            yield sc.Compute(config.poll_cost)
            board = config.board
            # Piggyback our backlog on the poll: a free shared-memory
            # write that demand-aware policies consume.
            board.report_demand(package.app_id, self.report_demand(), kernel.now)
            # Service tenants additionally piggyback their latency
            # slowdown and tier tag for the SLO-aware policy; ordinary
            # applications never write the QoS word.
            if package._slowdown_ewma is not None:
                board.report_qos(
                    package.app_id,
                    package._slowdown_ewma,
                    package.service_profile.tier,
                    kernel.now,
                )
            # Compliance telemetry rides the same poll (another free
            # write); the snapshot reflects this tenant's state as of its
            # most recent safe point.
            board.report_compliance(package.app_id, self.compliance_snapshot())
            target = board.read(package.app_id)
            ttl = config.stale_target_ttl
            if ttl is not None:
                now = kernel.now
                # A recorded crash epoch marks the word stale immediately
                # (the server is known dead, however recently it wrote);
                # otherwise staleness is the plain write-age test.
                crash_epoch = getattr(board, "crashed_at", None)
                stale = crash_epoch is not None or (
                    board.updated_at is not None
                    and now - board.updated_at > ttl
                )
                if target is not None and not stale:
                    self.adopt_target(target, now, fresh=True)
                    kernel.trace.emit(
                        now, "pc.poll", app_id=package.app_id, target=target
                    )
                elif control.target is not None or control.last_fresh is not None:
                    # The server went silent after having spoken to us:
                    # back off the polling and, past the TTL, release the
                    # stale target (should_resume then restores the full
                    # worker pool).  A server that has not yet published
                    # anything for us is not a failure -- that is the
                    # ordinary state right after arrival.
                    expired = control.note_failure(
                        now,
                        config.poll_interval,
                        config.poll_backoff_max,
                        ttl,
                        crash_epoch=crash_epoch,
                    )
                    kernel.trace.emit(
                        now,
                        "pc.poll_failed",
                        app_id=package.app_id,
                        stale=stale,
                        failures=control.consecutive_failures,
                    )
                    if expired:
                        self.note_target_released()
                        kernel.trace.emit(
                            now, "pc.target_expired", app_id=package.app_id
                        )
                return
        else:
            # Decentralized: scan the process table and partition locally.
            # This is the design Section 4.2 rejects as "too inefficient";
            # the ablation benchmarks quantify why.
            from repro.core.policy import partition_processors

            table = yield sc.GetProcessTable()
            yield sc.Compute(config.poll_cost)
            uncontrolled = sum(
                1 for row in table if row.runnable and not row.controllable
            )
            app_totals: dict = {}
            for row in table:
                if row.controllable and row.app_id is not None:
                    app_totals[row.app_id] = app_totals.get(row.app_id, 0) + 1
            targets = partition_processors(
                kernel.online_processor_count(), uncontrolled, app_totals
            )
            target = targets.get(package.app_id)
        if target is not None:
            self.adopt_target(target, kernel.now, fresh=False)
            kernel.trace.emit(
                kernel.now, "pc.poll", app_id=package.app_id, target=target
            )


class TaskQueueAdapter(RuntimeAdapter):
    """The paper's model: every inter-task point is safe, adoption is
    immediate.  Bit-identical to the pre-refactor fused package."""

    runtime = "taskqueue"

    def adopt_target(self, target: int, now: int, fresh: bool) -> None:
        control = self.control
        self._note_published(target, now)
        if fresh:
            control.note_fresh(target, now)
        else:
            control.target = target
            control.polls += 1

    def control_point(self, index: int):
        """The safe suspension point between tasks.

        Verbatim extraction of the fused package's ``_control_point``; the
        compliance-tracker calls are host-side additions with no yields.
        """
        package = self.package
        config = package.config
        control = self.control
        if config.control is None or package.finished:
            return
        kernel = package.kernel
        now = kernel.now
        self.tracker.note_safe_point(now)
        gap = control.poll_gap
        if gap is None:
            gap = config.poll_interval
        if control.last_poll is None or now - control.last_poll >= gap:
            control.last_poll = now
            yield from self.poll()
        if control.should_resume():
            pid = control.suspended.popleft()
            control.runnable_workers += 1
            control.resumes += 1
            kernel.trace.emit(
                kernel.now, "pc.resume", app_id=package.app_id, pid=pid
            )
            yield sc.SendSignal(pid, RESUME)
        while not package.finished and control.should_suspend():
            my_pid = package.worker_pids[index]
            control.runnable_workers -= 1
            control.suspended.append(my_pid)
            control.suspensions += 1
            self.tracker.note_conformed(control.runnable_workers, kernel.now)
            kernel.trace.emit(
                kernel.now, "pc.suspend", app_id=package.app_id, pid=my_pid
            )
            payload = yield sc.WaitSignal()
            kernel.trace.emit(
                kernel.now,
                "pc.wake",
                app_id=package.app_id,
                pid=my_pid,
                payload=payload,
            )
            # The waker already re-counted us among the runnable workers.


class DeferredAdoptionAdapter(RuntimeAdapter):
    """Shared base for runtimes whose safe points are sparse.

    A published shrink is recorded as *pending* and honoured at the next
    safe point; the adopted width (``control.target``, what the sanitizer
    audits) moves only when the workers actually conform.  Growth -- or a
    target the runtime already satisfies -- is honoured immediately, since
    waking workers is always safe.
    """

    def __init__(self, package: Any) -> None:
        super().__init__(package)
        #: The published target awaiting the next safe point, if any.
        self.pending_target: Optional[int] = None

    def effective_target(self, target: int) -> int:
        """The width this runtime would actually run at for *target*."""
        return max(target, self.floor)

    def adopt_target(self, target: int, now: int, fresh: bool) -> None:
        control = self.control
        self._note_published(target, now)
        if fresh:
            control.note_fresh_deferred(now)
        else:
            control.polls += 1
        effective = self.effective_target(target)
        if effective >= control.runnable_workers:
            # Growth or already conforming: adopt on the spot.
            control.target = effective
            self.pending_target = None
            self.tracker.note_conformed(control.runnable_workers, now)
        else:
            self.pending_target = target

    def note_target_released(self) -> None:
        self.pending_target = None
        super().note_target_released()

    def poll_if_due(self):
        """Run :meth:`poll` when the (backoff-adjusted) interval elapsed."""
        package = self.package
        control = self.control
        now = package.kernel.now
        gap = control.poll_gap
        if gap is None:
            gap = package.config.poll_interval
        if control.last_poll is None or now - control.last_poll >= gap:
            control.last_poll = now
            yield from self.poll()


class ForkJoinAdapter(DeferredAdoptionAdapter):
    """Fork-join phases: the barrier is the only safe point.

    Workers never suspend mid-phase; the phase-closing worker (the one
    whose task completion drains the phase) calls :meth:`barrier_point`
    with every peer parked at the barrier, polls the server if the
    interval elapsed, and adopts any pending shrink by releasing fewer
    workers into the next phase.  Target adoption therefore lags by up to
    one full phase -- the figure the compliance telemetry reports.
    """

    runtime = "forkjoin"

    def report_demand(self) -> int:
        """Demand of a fork-join team: the width the next phase staffs.

        The team polls only at barriers -- the one instant its queue is
        empty by construction -- so the task-queue backlog snapshot is
        always zero there and would cap the team at one processor.  The
        figure that means something for a phased runtime is the worker
        pool the coming phase will use: every live worker (active or
        parked at the barrier) runs again the moment the phase opens.
        """
        package = self.package
        live = package.active_workers + len(package.parked)
        return max(package._outstanding, live)

    def barrier_point(self):
        """The phase barrier (closer only; every peer is parked)."""
        package = self.package
        control = self.control
        if package.config.control is None:
            return
        self.tracker.note_safe_point(package.kernel.now)
        yield from self.poll_if_due()
        if self.pending_target is not None:
            # With the whole pool parked, a shrink is honoured by simply
            # releasing fewer workers: adopt it now.  The package records
            # conformance once it has set the next phase's width.
            control.target = self.effective_target(self.pending_target)
            self.pending_target = None


class PipelineAdapter(DeferredAdoptionAdapter):
    """Dedicated stage threads: a worker's safe point is a drained stage.

    The declared floor is one worker per stage -- the pipeline cannot run
    narrower without stalling a stage entirely -- so a target below the
    floor is adopted *at* the floor and the residual overshoot above the
    published target is reported to the server as structural.  Only the
    surplus workers (beyond one per stage) ever suspend, and only when
    their stage queue is empty.
    """

    runtime = "pipeline"

    @property
    def floor(self) -> int:
        return self.package.n_stages

    def stage_point(self, index: int):
        """Per-iteration control point of stage worker *index*.

        Polling (pure IPC) is safe anywhere; *suspension* happens only
        when this worker's stage has drained, and never takes a stage's
        last worker.
        """
        package = self.package
        config = package.config
        control = self.control
        if config.control is None or package.finished:
            return
        kernel = package.kernel
        yield from self.poll_if_due()
        stage = package.stage_of[index]
        if package.stage_queues[stage]._items:
            # Mid-stream: not a safe point for this worker.
            return
        now = kernel.now
        self.tracker.note_safe_point(now)
        if control.should_resume():
            pid = control.suspended.popleft()
            control.runnable_workers += 1
            control.resumes += 1
            kernel.trace.emit(
                kernel.now, "pc.resume", app_id=package.app_id, pid=pid
            )
            yield sc.SendSignal(pid, RESUME)
        pending = self.pending_target
        if pending is None:
            return
        effective = self.effective_target(pending)
        if index < package.n_stages or control.runnable_workers <= effective:
            # Stage primaries hold the floor; they never park.
            return
        my_pid = package.worker_pids[index]
        control.runnable_workers -= 1
        control.suspended.append(my_pid)
        control.suspensions += 1
        if control.runnable_workers <= effective:
            # The pool now conforms: the floored target is adopted.
            control.target = effective
            self.pending_target = None
            self.tracker.note_conformed(control.runnable_workers, now)
        kernel.trace.emit(
            kernel.now, "pc.suspend", app_id=package.app_id, pid=my_pid
        )
        payload = yield sc.WaitSignal()
        kernel.trace.emit(
            kernel.now,
            "pc.wake",
            app_id=package.app_id,
            pid=my_pid,
            payload=payload,
        )
        # The waker already re-counted us among the runnable workers.
