"""repro -- a reproduction of Tucker & Gupta, "Process Control and
Scheduling Issues for Multiprogrammed Shared-Memory Multiprocessors"
(SOSP 1989).

The package layers, bottom to top:

- :mod:`repro.sim` -- deterministic discrete-event engine.
- :mod:`repro.machine` -- the simulated multiprocessor (the Encore
  Multimax stand-in): processors, caches, costs.
- :mod:`repro.kernel` -- a UMAX-like kernel: processes, syscalls, signals,
  IPC, pluggable schedulers (FIFO, priority decay, coscheduling,
  no-preempt flags, process groups, affinity, space partitioning).
- :mod:`repro.sync` -- spinlocks and blocking primitives.
- :mod:`repro.threads` -- the task-queue threads package with transparent
  process control (the paper's modified Brown threads package).
- :mod:`repro.core` -- the centralized process-control server and its
  partitioning policy (the paper's contribution).
- :mod:`repro.apps` -- fft, sort, gauss, matmul, and synthetic workloads.
- :mod:`repro.workloads` -- scenario descriptions and the runner.
- :mod:`repro.experiments` -- one module per paper figure, plus ablations.
- :mod:`repro.realsys` -- the same control scheme on real OS processes
  (``multiprocessing``), as a live demonstrator.

Quick start::

    from repro import quick_compare
    result = quick_compare()          # two apps, control off vs on
"""

from repro.core import ProcessControlServer, partition_processors
from repro.workloads import (
    AppSpec,
    Scenario,
    ScenarioResult,
    UncontrolledSpec,
    run_scenario,
)

__version__ = "1.0.0"

__all__ = [
    "ProcessControlServer",
    "partition_processors",
    "AppSpec",
    "UncontrolledSpec",
    "Scenario",
    "ScenarioResult",
    "run_scenario",
    "quick_compare",
    "__version__",
]


def quick_compare(scale: float = 0.2, n_processes: int = 24, seed: int = 0):
    """Run two applications together, without and with process control.

    A convenience smoke entry point: returns a dict with both
    :class:`~repro.workloads.runner.ScenarioResult` objects under keys
    ``"uncontrolled"`` and ``"controlled"``.
    """
    from repro.apps import FFT, MatMul
    from repro.sim import units

    # Shrunken applications need a proportionally faster poll, or the runs
    # finish before the 6-second control loop ever engages.
    interval = units.seconds(6) if scale >= 1.0 else units.seconds(2)

    def scenario(control):
        return Scenario(
            apps=[
                AppSpec(lambda: MatMul(scale=scale, seed=seed), n_processes),
                AppSpec(lambda: FFT(scale=scale, seed=seed), n_processes),
            ],
            control=control,
            poll_interval=interval,
            server_interval=interval,
            seed=seed,
        )

    return {
        "uncontrolled": run_scenario(scenario(None)),
        "controlled": run_scenario(scenario("centralized")),
    }
