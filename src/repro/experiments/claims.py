"""Section 6's textual claims, checked quantitatively.

The paper's prose makes several testable statements beyond the figures:

C1. "the speed-up increases up to 16 processes, which is equal to the
    number of processors" (Figure 3, observation 1);
C2. "the dashed and the solid curves are almost identical up to 16
    processes ... the overhead of our implementation is negligible"
    (observation 2);
C3. "beyond the 16 process point, the speed-up with the unmodified threads
    package is significantly worse ... the larger the number of processes,
    the more the difference" (observation 3);
C4. "In many of the test cases the applications execute more than twice as
    quickly when our modified threads package is used" (Section 1);
C5. "the gauss application takes 66 seconds to execute instead of 28"
    (Figure 5 discussion) -- i.e. gauss's uncontrolled/controlled ratio is
    the largest of the mix, around 2.4x on their machine.

``run_claims`` evaluates each against our measured data and reports
pass/fail plus the measured numbers, which EXPERIMENTS.md records.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.experiments.figure3 import Figure3Result, run_figure3
from repro.experiments.figure4 import Figure4Result, run_figure4
from repro.metrics import format_table


@dataclass
class Claim:
    claim_id: str
    description: str
    measured: str
    holds: bool


@dataclass
class ClaimsResult:
    claims: List[Claim]
    preset: str

    @property
    def all_hold(self) -> bool:
        return all(c.holds for c in self.claims)


def evaluate_claims(
    fig3: Figure3Result, fig4: Figure4Result, n_processors: int = 16
) -> ClaimsResult:
    """Check Section 6's claims against measured figure data."""
    claims: List[Claim] = []

    # C1: speedup rises up to the processor count.
    rising = []
    for app, curve in fig3.curves.items():
        upto = [
            s for n, s in zip(curve.counts, curve.speedup_off) if n <= n_processors
        ]
        rising.append(all(b > a for a, b in zip(upto, upto[1:])))
    claims.append(
        Claim(
            "C1",
            "speedup increases up to the number of processors",
            f"monotone-rising to {n_processors} for "
            f"{sum(rising)}/{len(rising)} applications",
            all(rising),
        )
    )

    # C2: curves coincide at or below the processor count (<= 5% apart).
    worst_gap = 0.0
    for curve in fig3.curves.values():
        for n, off, on in zip(curve.counts, curve.speedup_off, curve.speedup_on):
            if n <= n_processors:
                worst_gap = max(worst_gap, abs(on - off) / off)
    claims.append(
        Claim(
            "C2",
            "control overhead negligible at <= 16 processes",
            f"worst on-vs-off gap below 16 processes: {worst_gap * 100:.1f}%",
            worst_gap <= 0.05,
        )
    )

    # C3: beyond 16, controlled beats uncontrolled for every application.
    beats = []
    for curve in fig3.curves.values():
        for n, off, on in zip(curve.counts, curve.speedup_off, curve.speedup_on):
            if n > n_processors:
                beats.append(on > off)
    claims.append(
        Claim(
            "C3",
            "beyond 16 processes the unmodified package is worse",
            f"controlled faster in {sum(beats)}/{len(beats)} beyond-16 points",
            beats != [] and all(beats),
        )
    )

    # C4: more than 2x improvement in at least one test case.
    best = 0.0
    best_at = ""
    for app, curve in fig3.curves.items():
        for n, off, on in zip(curve.counts, curve.speedup_off, curve.speedup_on):
            if n > n_processors and off > 0 and on / off > best:
                best = on / off
                best_at = f"{app}@{n}"
    claims.append(
        Claim(
            "C4",
            "some cases improve by more than a factor of two",
            f"best improvement {best:.2f}x ({best_at})",
            best > 2.0,
        )
    )

    # C5: among the barrier applications of Figure 4, gauss gains the most
    # (66 s -> 28 s in the paper).  matmul is excluded from the comparison:
    # in the paper it is the *least* hurt application in absolute terms,
    # which we also observe (smallest uncontrolled wall time), but its
    # off/on *ratio* here is inflated by how much the decay scheduler
    # favours its fresh processes in the controlled run -- see
    # EXPERIMENTS.md for the discussion of this deviation.
    ratios = {app: fig4.ratio(app) for app in fig4.uncontrolled.apps}
    gauss_best = ratios.get("gauss", 0) >= max(
        v for k, v in ratios.items() if k != "matmul"
    )
    claims.append(
        Claim(
            "C5",
            "gauss benefits most of the barrier apps (fft vs gauss)",
            "off/on ratios: "
            + ", ".join(f"{k}={v:.2f}" for k, v in sorted(ratios.items())),
            gauss_best,
        )
    )
    return ClaimsResult(claims=claims, preset=fig3.preset)


def run_claims(preset: str = "paper", seed: int = 0) -> ClaimsResult:
    """Run Figures 3 and 4, then evaluate the Section 6 claims."""
    fig3 = run_figure3(preset=preset, seed=seed)
    fig4 = run_figure4(preset=preset, seed=seed)
    return evaluate_claims(fig3, fig4)


def format_claims(result: ClaimsResult) -> str:
    rows = [
        (c.claim_id, "PASS" if c.holds else "MISS", c.description, c.measured)
        for c in result.claims
    ]
    return "Section 6 claims, measured:\n" + format_table(
        ["id", "status", "claim", "measured"], rows
    )


def main(preset: str = "paper") -> None:  # pragma: no cover - CLI glue
    print(format_claims(run_claims(preset)))
