"""Command-line entry point for the experiment harnesses.

Usage::

    python -m repro.experiments figure1 [--preset paper|quick]
    python -m repro.experiments all --preset quick
"""

from __future__ import annotations

import argparse
import os

from repro.core.allocation import (
    POLICY_ENV_VAR,
    POLICY_NAMES,
    WEIGHTS_ENV_VAR,
    parse_weights,
)
from repro.core.plane import SHARDS_ENV_VAR
from repro.experiments.parallel import JOBS_ENV_VAR
from repro.faults.campaign import main as chaos_main
from repro.faults.plan import FAULTS_ENV_VAR
from repro.resilience.watchdog import SUPERVISE_ENV_VAR
from repro.sanitize.invariants import SANITIZE_ENV_VAR
from repro.experiments import (
    ablations,
    claims,
    figure1,
    figure2,
    figure3,
    figure4,
    figure5,
    lock_collapse,
    mechanisms,
    mixed_runtime,
    policies,
    recovery,
    service,
    steady_state,
)

_EXPERIMENTS = {
    "figure1": figure1.main,
    "figure2": figure2.main,
    "figure3": figure3.main,
    "figure4": figure4.main,
    "figure5": figure5.main,
    "claims": claims.main,
    "ablations": ablations.main,
    "mechanisms": mechanisms.main,
    "lock-collapse": lock_collapse.main,
    "mixed-runtime": mixed_runtime.main,
    "policies": policies.main,
    "service": service.main,
    "steady-state": steady_state.main,
    "chaos": chaos_main,
    "recovery": recovery.main,
}


def main() -> None:
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments",
        description="Reproduce the paper's figures and ablations.",
    )
    parser.add_argument(
        "experiment",
        choices=sorted(_EXPERIMENTS) + ["all"],
        help="which experiment to run",
    )
    parser.add_argument(
        "--preset",
        choices=["paper", "quick"],
        default="paper",
        help="paper = full-size workloads; quick = reduced (for smoke runs)",
    )
    parser.add_argument(
        "--jobs",
        type=int,
        default=None,
        metavar="N",
        help="worker processes for sweep fan-out (default: $REPRO_JOBS, "
        "then the CPU count); 1 forces serial execution",
    )
    parser.add_argument(
        "--sanitize",
        nargs="?",
        const="strict",
        default=None,
        choices=["strict", "record"],
        metavar="MODE",
        help="run every scenario under the SchedSanitizer invariant "
        "checker (default mode: strict, which aborts on the first "
        "violation; 'record' keeps running and tallies them)",
    )
    parser.add_argument(
        "--faults",
        default=None,
        metavar="SPEC",
        help="fault-injection plan applied to every scenario, e.g. "
        "'cpu-offline:cpu=1,at=10ms;server-crash:at=20ms,down=60ms' "
        "(see docs/FAULTS.md; equivalent to setting $REPRO_FAULTS)",
    )
    parser.add_argument(
        "--policy",
        default=None,
        choices=sorted(POLICY_NAMES) + ["space"],
        help="allocation policy the control server runs in every scenario "
        "that does not pin one itself (equivalent to setting "
        "$REPRO_POLICY; 'space' requires the partition scheduler)",
    )
    parser.add_argument(
        "--weights",
        default=None,
        metavar="SPEC",
        help="per-application priority shares for the control servers, "
        "e.g. 'fft=2,sort=0.5' (apps not named default to 1.0; "
        "equivalent to setting $REPRO_WEIGHTS; ignored when an "
        "explicit --policy/$REPRO_POLICY or a scenario-pinned policy "
        "wins the resolution)",
    )
    parser.add_argument(
        "--shards",
        type=int,
        default=None,
        metavar="N",
        help="process-control server shards in every scenario that does "
        "not pin a count itself (equivalent to setting $REPRO_SHARDS; "
        "default 1 = the paper's single server)",
    )
    parser.add_argument(
        "--supervise",
        action="store_true",
        help="arm the control-plane watchdog (heartbeat monitoring, shard "
        "restart/failover) in every scenario that does not pin "
        "Scenario.supervise itself (equivalent to setting "
        "$REPRO_SUPERVISE=1; see docs/RESILIENCE.md)",
    )
    args = parser.parse_args()
    if args.jobs is not None:
        # The sweep runners consult REPRO_JOBS; routing the flag through
        # the environment reaches every experiment without threading a
        # jobs parameter into each main().
        os.environ[JOBS_ENV_VAR] = str(args.jobs)
    if args.sanitize is not None:
        # Same routing trick as --jobs: run_scenario consults the env var,
        # and the sweep runners re-export it to their worker processes.
        os.environ[SANITIZE_ENV_VAR] = args.sanitize
    if args.faults is not None:
        os.environ[FAULTS_ENV_VAR] = args.faults
    if args.policy is not None:
        # Same env routing as --jobs: run_scenario resolves the policy for
        # every scenario that leaves Scenario.policy unset.
        os.environ[POLICY_ENV_VAR] = args.policy
    if args.weights is not None:
        try:
            parse_weights(args.weights)  # fail fast, before any runs
        except ValueError as exc:
            parser.error(f"--weights: {exc}")
        os.environ[WEIGHTS_ENV_VAR] = args.weights
    if args.shards is not None:
        if args.shards < 1:
            parser.error("--shards must be >= 1")
        os.environ[SHARDS_ENV_VAR] = str(args.shards)
    if args.supervise:
        os.environ[SUPERVISE_ENV_VAR] = "1"
    if args.experiment == "all":
        for name in sorted(_EXPERIMENTS):
            print(f"\n{'=' * 72}\n{name}\n{'=' * 72}")
            _EXPERIMENTS[name](args.preset)
    else:
        _EXPERIMENTS[args.experiment](args.preset)


if __name__ == "__main__":
    main()
