"""Figure 2: the structure of the server-based scheme -- as a live scenario.

Figure 2 is an architecture diagram, not a measurement, but Section 5 walks
through a concrete example on it: "assume the machine has 8 processors.
The central server will determine that 2 processors are being used by
uncontrollable applications, and proceed to distribute the other 6 among
the three controllable applications.  Given that all three have the same
priority, each of them gets two processors.  The first application with
only 2 processes need not suspend any processes ... but the other two
applications will have to suspend one process each."

This module builds exactly that system -- 8 processors, two uncontrollable
stand-alone processes, three controllable applications with 2, 3 and 3
processes -- runs it, and reports the targets the server computed and the
suspensions the applications performed.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from repro.apps import UniformApp
from repro.experiments.config import paper_machine
from repro.sim import units
from repro.workloads import AppSpec, Scenario, UncontrolledSpec, run_scenario


@dataclass
class Figure2Result:
    """Observed server decision and application reactions."""

    targets: Dict[str, int]
    suspensions: Dict[str, int]
    final_runnable_per_app: Dict[str, float]
    uncontrolled_runnable: int


def run_figure2(seed: int = 0) -> Figure2Result:
    """Run the worked example of Section 5 / Figure 2."""

    def app(name: str, n_tasks: int):
        return lambda: UniformApp(
            app_id=name,
            n_tasks=n_tasks,
            task_cost=units.ms(400),
            seed=seed,
        )

    scenario = Scenario(
        apps=[
            AppSpec(app("app1", 120), n_processes=2),
            AppSpec(app("app2", 180), n_processes=3),
            AppSpec(app("app3", 180), n_processes=3),
        ],
        uncontrolled=[
            UncontrolledSpec(name="daemon1", duration=units.seconds(120)),
            UncontrolledSpec(name="daemon2", duration=units.seconds(120)),
        ],
        control="centralized",
        machine=paper_machine(n_processors=8),
        scheduler="decay",
        poll_interval=units.seconds(2),
        server_interval=units.seconds(2),
        seed=seed,
    )
    result = run_scenario(scenario)

    # The server's decision once all applications are up: read the last
    # update that still covered all three applications.
    targets: Dict[str, int] = {}
    for record in result.trace.records("server.update"):
        snapshot = record.data["targets"]
        if len(snapshot) == 3:
            targets = dict(snapshot)
            break
    suspensions = {
        app_id: app_result.suspensions
        for app_id, app_result in result.apps.items()
    }
    # Steady-state runnable counts per application, sampled mid-run.
    mid = min(r.finished_at for r in result.apps.values()) // 2
    final = {
        app_id: series.value_at(mid)
        for app_id, series in result.runnable_per_app.items()
        if app_id.startswith("app")
    }
    uncontrolled = int(
        result.runnable_per_app.get("<none>", None).value_at(mid)
        if "<none>" in result.runnable_per_app
        else 0
    )
    return Figure2Result(
        targets=targets,
        suspensions=suspensions,
        final_runnable_per_app=final,
        uncontrolled_runnable=uncontrolled,
    )


def format_figure2(result: Figure2Result) -> str:
    lines = [
        "Figure 2 worked example: 8 processors, 2 uncontrollable processes,",
        "three controllable applications (2, 3, 3 processes)",
        f"server targets:        {result.targets}",
        f"suspensions performed: {result.suspensions}",
        f"runnable at mid-run:   {result.final_runnable_per_app}",
        f"uncontrolled runnable: {result.uncontrolled_runnable}",
    ]
    return "\n".join(lines)


def main(preset: str = "paper") -> None:  # pragma: no cover - CLI glue
    print(format_figure2(run_figure2()))
