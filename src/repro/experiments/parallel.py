"""Parallel experiment sweep runner.

Every figure and ablation is a sweep of independent, deterministic
simulations -- a perfect fan-out.  :func:`parallel_map` runs sweep cells
across worker processes (simulations are CPU-bound, so threads would gain
nothing under the GIL) while keeping the results in input order, which
together with the per-cell determinism of the simulator makes the parallel
path bit-identical to the serial one.

Job count resolution (first match wins):

1. an explicit ``jobs=`` argument (e.g. from a ``--jobs`` CLI flag);
2. the ``REPRO_JOBS`` environment variable;
3. ``os.cpu_count()``.

The count is clamped to the number of sweep cells, and anything that
prevents multiprocessing (a sandbox that forbids fork, a broken worker)
degrades to the plain serial loop rather than failing the experiment --
cells are pure functions, so re-running them is always safe.

Cells must be picklable: module-level functions taking plain-data argument
tuples and returning plain data (no ``ScenarioResult``, whose scenario
holds closures).  Each experiment module defines its own cell functions.
"""

from __future__ import annotations

import os
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from typing import Callable, Iterable, List, Optional, TypeVar

_T = TypeVar("_T")
_R = TypeVar("_R")

#: Environment variable consulted when no explicit job count is given.
JOBS_ENV_VAR = "REPRO_JOBS"


def resolve_jobs(jobs: Optional[int] = None, n_items: Optional[int] = None) -> int:
    """Resolve the worker count: argument > ``REPRO_JOBS`` > cpu_count.

    The result is clamped to *n_items* (no point spawning idle workers)
    and floored at 1.  ``REPRO_JOBS`` values that are not integers raise
    ``ValueError`` -- a typo should not silently serialize a sweep.
    """
    if jobs is None:
        env = os.environ.get(JOBS_ENV_VAR, "").strip()
        if env:
            try:
                jobs = int(env)
            except ValueError:
                raise ValueError(
                    f"{JOBS_ENV_VAR}={env!r} is not an integer"
                ) from None
        else:
            jobs = os.cpu_count() or 1
    if n_items is not None:
        jobs = min(jobs, n_items)
    return max(1, jobs)


def parallel_map(
    fn: Callable[[_T], _R],
    items: Iterable[_T],
    jobs: Optional[int] = None,
) -> List[_R]:
    """Map *fn* over *items*, possibly across processes; order-preserving.

    With a resolved job count of 1 (the default on a single-core host, or
    ``REPRO_JOBS=1``) this is exactly ``[fn(x) for x in items]`` -- no pool,
    no pickling, no behavioural difference.  Otherwise cells are distributed
    over a :class:`ProcessPoolExecutor`; results come back in input order.

    Falls back to the serial loop if the pool cannot be created or breaks
    (sandboxed environments, killed workers).  Exceptions raised by *fn*
    itself propagate unchanged in both modes.
    """
    cells = list(items)
    n_jobs = resolve_jobs(jobs, n_items=len(cells))
    if n_jobs <= 1 or len(cells) <= 1:
        return [fn(cell) for cell in cells]
    try:
        with ProcessPoolExecutor(max_workers=n_jobs) as pool:
            return list(pool.map(fn, cells))
    except (BrokenProcessPool, OSError):
        # Pool creation or a worker died (fork forbidden, OOM-killed, ...):
        # cells are pure, so redo the whole sweep serially.
        return [fn(cell) for cell in cells]
