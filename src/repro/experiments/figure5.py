"""Figure 5: runnable processes vs time, for the Figure 4 runs.

"In this figure we plot the number of runnable processes in the system as
a function of time ...  We see that with process control turned on, the
total number of processes quickly returns to 16, which is the number of
processors in the system.  The few seconds of delay before the number of
processes starts decreasing is because applications query the central
server only once every six seconds."

The step series come straight from the kernel's runnable-census trace; we
sample them on a one-second grid for display and compute the convergence
diagnostics the paper narrates (equal division during the two-app and
three-app intervals, expansion as applications finish).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.experiments.figure4 import figure4_scenario
from repro.metrics import format_table
from repro.metrics.timeseries import StepSeries
from repro.sim import units
from repro.workloads import ScenarioResult, run_scenario


@dataclass
class Figure5Series:
    """One run's runnable-process series (total and per application)."""

    controlled: bool
    total: StepSeries
    per_app: Dict[str, StepSeries]
    sim_time: int

    def sample_grid(self, step: int = units.seconds(1)) -> List[dict]:
        """Rows of ``{t, total, <app>: count...}`` on a regular grid."""
        rows = []
        t = 0
        while t <= self.sim_time:
            row = {"t": t, "total": self.total.value_at(t)}
            for app_id, series in self.per_app.items():
                row[app_id] = series.value_at(t)
            rows.append(row)
            t += step
        return rows

    def convergence_time(
        self, target: int, after: int = 0, tolerance: int = 1
    ) -> Optional[int]:
        """First time >= *after* at which total runnable stays within
        *tolerance* of *target* for at least one second."""
        hold = units.seconds(1)
        points = [p for p in self.total.points if p[0] >= after]
        for index, (time, value) in enumerate(points):
            if abs(value - target) <= tolerance:
                end = time + hold
                ok = True
                for later_time, later_value in points[index + 1:]:
                    if later_time >= end:
                        break
                    if abs(later_value - target) > tolerance:
                        ok = False
                        break
                if ok:
                    return time
        return None


@dataclass
class Figure5Result:
    on: Figure5Series
    off: Figure5Series
    preset: str


def _series_of(result: ScenarioResult, controlled: bool) -> Figure5Series:
    return Figure5Series(
        controlled=controlled,
        total=result.runnable_total,
        per_app={
            app_id: series
            for app_id, series in result.runnable_per_app.items()
            if app_id != "<none>"
        },
        sim_time=result.sim_time,
    )


def run_figure5(preset: str = "paper", seed: int = 0) -> Figure5Result:
    """Reproduce both halves of Figure 5."""
    on = run_scenario(figure4_scenario("centralized", preset, seed))
    off = run_scenario(figure4_scenario(None, preset, seed))
    return Figure5Result(
        on=_series_of(on, True), off=_series_of(off, False), preset=preset
    )


def format_figure5(
    result: Figure5Result, step: int = units.seconds(2)
) -> str:
    blocks = ["Figure 5: runnable processes vs time (t in seconds)"]
    for series in (result.on, result.off):
        label = "process control ON" if series.controlled else "process control OFF"
        apps = sorted(series.per_app)
        rows = [
            [int(row["t"] / 1e6), int(row["total"])]
            + [int(row.get(app, 0)) for app in apps]
            for row in series.sample_grid(step)
        ]
        blocks.append(
            f"\n[{label}]\n"
            + format_table(["t", "total"] + apps, rows)
        )
    converge = result.on.convergence_time(target=16, after=units.seconds(10))
    if converge is not None:
        blocks.append(
            f"\ncontrol-on: total runnable returned to ~16 at "
            f"t={converge / 1e6:.1f}s (poll interval 6 s)"
        )
    return "\n".join(blocks)


def plot_figure5(result: Figure5Result, width: int = 72) -> str:
    """ASCII area plots of both runs' total-runnable series (the actual
    look of the paper's Figure 5)."""
    from repro.viz import step_plot

    peak = max(result.on.total.maximum(), result.off.total.maximum(), 16.0)
    blocks = []
    for series in (result.on, result.off):
        label = "control ON" if series.controlled else "control OFF"
        blocks.append(
            f"[total runnable processes, {label}]\n"
            + step_plot(
                series.total,
                until=series.sim_time,
                width=width,
                height=8,
                y_max=peak,
            )
        )
    return "\n\n".join(blocks)


def main(preset: str = "paper") -> None:  # pragma: no cover - CLI glue
    result = run_figure5(preset)
    print(format_figure5(result))
    print()
    print(plot_figure5(result))
