"""Allocation policies under overload: equipartition vs demand feedback.

The paper's server divides processors *equally* among applications, capped
only by each application's process count.  That cap is static: an
application that started 12 workers keeps claiming 12-worth of share even
while its task queue holds 4 tasks, and the surplus workers burn their
share busy-waiting on the empty queue (the Section 2 point-2
producer/consumer waste).  The ``demand`` policy closes the loop with the
backlog figure the threads package piggybacks on every poll, capping each
application's share at what it can actually use and water-filling the
slack to applications that can.

This experiment builds exactly that adversarial regime -- two wide
applications (12 workers each, 16 processors) whose phases carry only 4
tasks -- and compares the machine's cycle ledger under each policy.  Under
``equal`` the extra granted workers show up as ``idle_poll`` waste; under
``demand`` the same workload runs with fewer runnable workers and the
idle-poll bucket shrinks.  ``weighted`` with no weight table is included
as a control: it must match ``equal`` (equal priorities degrade to
equipartition).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.analysis.waste import waste_breakdown
from repro.apps.synthetic import BarrierHeavyApp
from repro.experiments.parallel import parallel_map
from repro.machine import MachineConfig
from repro.metrics import format_table
from repro.sim import units
from repro.workloads import AppSpec, Scenario, run_scenario

#: Policies the sweep compares (registry names).
SWEEP_POLICIES: Tuple[str, ...] = ("equal", "weighted", "demand")


def overload_scenario(
    policy: str, preset: str = "quick", seed: int = 0
) -> Scenario:
    """Two 12-worker applications with 4-task phases on 16 processors.

    Every application is overprovisioned threefold relative to its
    per-phase parallelism, so a backlog-blind policy grants share that can
    only be spent busy-waiting.  Exposed separately so tests can replay
    the exact runs the experiment measures.
    """
    phases = 40 if preset == "paper" else 12
    machine = MachineConfig(
        n_processors=16,
        quantum=units.ms(5),
        context_switch_cost=units.us(50),
        dispatch_latency=units.us(10),
        cache_cold_penalty=units.us(500),
        cache_warmup_time=units.ms(2),
        cache_purge_time=units.ms(4),
    )
    apps = [
        AppSpec(
            lambda name=name, offset=offset: BarrierHeavyApp(
                name,
                phases=phases,
                tasks_per_phase=4,
                task_cost=units.ms(2),
                seed=seed + offset,
            ),
            n_processes=12,
            arrival=offset * units.ms(1),
        )
        for offset, name in enumerate(("over-a", "over-b"))
    ]
    return Scenario(
        apps=apps,
        control="centralized",
        scheduler="fifo",
        machine=machine,
        server_interval=units.ms(10),
        poll_interval=units.ms(10),
        policy=policy,
        seed=seed,
        max_time=units.seconds(30),
    )


@dataclass
class PolicyCell:
    """One policy's outcome, reduced to the ledger the comparison needs."""

    policy: str
    makespan_ms: float
    useful_pct: float
    idle_poll_pct: float
    spin_pct: float
    overhead_pct: float
    idle_pct: float
    #: waste = idle_poll + spin + overhead, as a capacity fraction.
    waste_pct: float
    suspensions: int
    mean_target: float


def _policy_cell(args) -> PolicyCell:
    """Sweep cell (module-level so it pickles for the process pool)."""
    policy, preset, seed = args
    result = run_scenario(overload_scenario(policy, preset, seed))
    breakdown = waste_breakdown(result)
    pct = breakdown.as_percentages()
    # Mean granted target across all server updates: the direct view of
    # how much concurrency the policy let each application keep.
    total = 0
    count = 0
    for record in result.trace.records("server.update"):
        for target in record.data["targets"].values():
            total += target
            count += 1
    return PolicyCell(
        policy=policy,
        makespan_ms=result.makespan / 1e3,
        useful_pct=pct["useful"],
        idle_poll_pct=pct["idle_poll"],
        spin_pct=pct["spin"],
        overhead_pct=pct["overhead"],
        idle_pct=pct["idle"],
        waste_pct=round(100.0 * breakdown.waste / breakdown.capacity, 2)
        if breakdown.capacity
        else 0.0,
        suspensions=sum(app.suspensions for app in result.apps.values()),
        mean_target=total / count if count else 0.0,
    )


def run_policies(
    preset: str = "quick",
    seed: int = 0,
    jobs: Optional[int] = None,
    policies: Tuple[str, ...] = SWEEP_POLICIES,
) -> List[PolicyCell]:
    """Run the overload workload once per policy (cells fan out)."""
    return parallel_map(
        _policy_cell, [(policy, preset, seed) for policy in policies], jobs
    )


def format_policies(cells: List[PolicyCell]) -> str:
    headers = [
        "policy",
        "makespan_ms",
        "mean_target",
        "useful%",
        "idle_poll%",
        "spin%",
        "overhead%",
        "idle%",
        "waste%",
        "suspensions",
    ]
    rows = [
        [
            cell.policy,
            f"{cell.makespan_ms:.1f}",
            f"{cell.mean_target:.2f}",
            cell.useful_pct,
            cell.idle_poll_pct,
            cell.spin_pct,
            cell.overhead_pct,
            cell.idle_pct,
            cell.waste_pct,
            cell.suspensions,
        ]
        for cell in cells
    ]
    by_name: Dict[str, PolicyCell] = {cell.policy: cell for cell in cells}
    lines = [
        "Allocation policies under overload "
        "(2 apps x 12 workers, 4-task phases, 16 CPUs)",
        format_table(headers, rows),
    ]
    if "equal" in by_name and "demand" in by_name:
        equal, demand = by_name["equal"], by_name["demand"]
        lines.append(
            f"\ndemand vs equal: idle-poll waste "
            f"{equal.idle_poll_pct:.2f}% -> {demand.idle_poll_pct:.2f}%, "
            f"mean granted target {equal.mean_target:.2f} -> "
            f"{demand.mean_target:.2f}"
        )
    return "\n".join(lines)


def main(preset: str = "paper") -> None:  # pragma: no cover - CLI glue
    print(format_policies(run_policies(preset)))
