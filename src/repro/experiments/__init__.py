"""Experiment harnesses: one module per paper figure, plus ablations.

Every module exposes ``run_*`` functions returning structured results and a
``format_*`` function printing the same rows/series the paper's figure
shows.  ``python -m repro.experiments <name> [--preset quick|paper]`` runs
one from the command line.

Calibration: the simulated machine and application parameters live in
:mod:`repro.experiments.config`; they were tuned so the paper's qualitative
shapes hold (see DESIGN.md section 6 and EXPERIMENTS.md for the
paper-vs-measured record).
"""

from repro.experiments.config import (
    PAPER_PROCESS_COUNTS,
    app_factories,
    paper_machine,
    paper_scenario_defaults,
)

__all__ = [
    "paper_machine",
    "app_factories",
    "paper_scenario_defaults",
    "PAPER_PROCESS_COUNTS",
]
