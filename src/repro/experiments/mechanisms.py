"""Section 2's four degradation mechanisms, each isolated and measured.

The paper enumerates why performance collapses when runnable processes
exceed processors:

1. preemption inside spinlock-controlled critical sections;
2. producer/consumer stalls (consumers scheduled with nothing to do);
3. context-switch overhead;
4. processor cache corruption.

Each ``run_m*`` function below builds a minimal raw-kernel workload that
exhibits exactly one mechanism and sweeps the number of runnable processes
across the processor count, producing the "degradation grows with
oversubscription" rows that justify the paper's central hypothesis.
"""

from __future__ import annotations

from typing import Dict, List

from repro.experiments.config import paper_machine
from repro.kernel import Kernel, syscalls as sc
from repro.machine import Machine
from repro.metrics import format_table
from repro.sim import Engine, units
from repro.sync import Barrier, Semaphore, SpinBarrier, SpinLock, spin_barrier_wait

#: Default oversubscription sweep: 1x, 1.5x, 2x, 3x the processor count.
OVERSUBSCRIPTION = (1.0, 1.5, 2.0, 3.0)


def _build_kernel(n_processors: int = 8, cache: bool = True) -> Kernel:
    machine_config = paper_machine(n_processors)
    machine_config.cache_affinity_enabled = cache
    return Kernel(machine=Machine(machine_config), engine=Engine())


def _finish(kernel: Kernel) -> None:
    kernel.run_until_quiescent(max_time=units.seconds(3600))
    kernel.finalize_accounting()


def run_m1_spinlock_preemption(
    n_processors: int = 8,
    iterations: int = 40,
    work: int = units.ms(8),
    critical: int = units.ms(1),
) -> List[Dict[str, object]]:
    """M1: spin waste explodes once lock holders can be preempted.

    N processes share one spinlock; each loops (compute, lock, critical
    section, unlock).  At N <= processors, contention is the only cost; at
    N > processors, holders get preempted inside the critical section and
    every waiter burns its quantum spinning.
    """
    rows = []
    for factor in OVERSUBSCRIPTION:
        n = int(n_processors * factor)
        kernel = _build_kernel(n_processors, cache=False)
        lock = SpinLock("m1")

        def worker():
            for _ in range(iterations):
                yield sc.Compute(work)
                yield sc.SpinAcquire(lock)
                yield sc.Compute(critical)
                yield sc.SpinRelease(lock)

        for i in range(n):
            kernel.spawn(worker(), name=f"w{i}", app_id="m1")
        _finish(kernel)
        useful = n * iterations * (work + critical)
        total_spin = sum(
            p.stats.spin_time for p in kernel.processes.values()
        )
        rows.append(
            {
                "processes": n,
                "spin_waste_pct": 100.0 * total_spin / useful,
                "holder_preempted": lock.holder_preempted_encounters,
                "cs_preemptions": sum(
                    p.stats.preemptions_in_critical_section
                    for p in kernel.processes.values()
                ),
            }
        )
    return rows


def run_m2_producer_consumer(
    n_processors: int = 8,
    items_per_consumer: int = 30,
    produce_cost: int = units.ms(4),
    consume_cost: int = units.ms(4),
) -> List[Dict[str, object]]:
    """M2: consumers stall while the producer is preempted.

    One producer feeds N-1 consumers through a semaphore.  Consumer wait
    time (blocked on an empty buffer) grows once the producer must share a
    processor -- "the consumer process may be scheduled to run on a
    processor only to realize that there is nothing for it to do".
    """
    rows = []
    for factor in OVERSUBSCRIPTION:
        n = max(2, int(n_processors * factor))
        kernel = _build_kernel(n_processors, cache=False)
        items = Semaphore("m2")
        n_consumers = n - 1
        total_items = n_consumers * items_per_consumer

        def producer():
            for _ in range(total_items):
                yield sc.Compute(produce_cost)
                yield sc.SemPost(items)

        def consumer():
            for _ in range(items_per_consumer):
                yield sc.SemWait(items)
                yield sc.Compute(consume_cost)

        kernel.spawn(producer(), name="producer", app_id="m2")
        for i in range(n_consumers):
            kernel.spawn(consumer(), name=f"c{i}", app_id="m2")
        _finish(kernel)
        consumers = [
            p for p in kernel.processes.values() if p.name.startswith("c")
        ]
        stall = sum(p.stats.block_time for p in consumers)
        useful = total_items * consume_cost
        rows.append(
            {
                "processes": n,
                "consumer_stall_pct": 100.0 * stall / useful,
                "makespan_s": kernel.now / 1e6,
            }
        )
    return rows


def run_m2b_barrier_styles(
    n_processors: int = 8,
    phases: int = 15,
    work: int = units.ms(10),
    jitter: float = 0.3,
) -> List[Dict[str, object]]:
    """M2 variant: busy-wait barriers vs blocking barriers.

    Era threads packages busy-waited at barriers; modern ones block.  With
    processes <= processors both are fine; oversubscribed, spin-barrier
    pollers burn the very quanta the stragglers need.  This is the
    synchronization-flavoured face of the producer/consumer problem and
    the reason the uncontrolled busy-wait package collapses.
    """
    import random as random_module

    rows = []
    for factor in OVERSUBSCRIPTION:
        n = int(n_processors * factor)
        walls = {}
        for style in ("spin", "blocking"):
            kernel = _build_kernel(n_processors, cache=False)
            rng = random_module.Random(42)
            if style == "spin":
                barrier = SpinBarrier(parties=n, poll_gap=units.us(500))
            else:
                barrier = Barrier(parties=n)

            def worker(style=style, barrier=barrier, rng=rng):
                for _ in range(phases):
                    burst = int(work * (1.0 + rng.uniform(-jitter, jitter)))
                    yield sc.Compute(max(burst, 1))
                    if style == "spin":
                        yield from spin_barrier_wait(barrier)
                    else:
                        yield sc.BarrierWait(barrier)

            for i in range(n):
                kernel.spawn(worker(), name=f"w{i}", app_id="m2b")
            _finish(kernel)
            walls[style] = kernel.now
        rows.append(
            {
                "processes": n,
                "spin_makespan_s": walls["spin"] / 1e6,
                "blocking_makespan_s": walls["blocking"] / 1e6,
                "spin_penalty": walls["spin"] / walls["blocking"],
            }
        )
    return rows


def run_m3_context_switching(
    n_processors: int = 8, work_per_process: int = units.seconds(2)
) -> List[Dict[str, object]]:
    """M3: pure context-switch overhead grows with oversubscription
    (cache model disabled to isolate the switch cost itself)."""
    rows = []
    for factor in OVERSUBSCRIPTION:
        n = int(n_processors * factor)
        kernel = _build_kernel(n_processors, cache=False)

        def hog():
            yield sc.Compute(work_per_process)

        for i in range(n):
            kernel.spawn(hog(), name=f"w{i}", app_id="m3")
        _finish(kernel)
        summary = kernel.machine.utilization_summary()
        elapsed = sum(summary.values())
        rows.append(
            {
                "processes": n,
                "overhead_pct": 100.0 * summary["overhead"] / elapsed,
                "dispatches": sum(
                    p.stats.dispatches for p in kernel.processes.values()
                ),
            }
        )
    return rows


def run_m4_cache_corruption(
    n_processors: int = 8, work_per_process: int = units.seconds(2)
) -> List[Dict[str, object]]:
    """M4: with the cache model on, each reschedule refetches the purged
    working set -- the dominant cost on high-miss-penalty machines."""
    rows = []
    for factor in OVERSUBSCRIPTION:
        n = int(n_processors * factor)
        kernel = _build_kernel(n_processors, cache=True)

        def hog():
            yield sc.Compute(work_per_process)

        for i in range(n):
            kernel.spawn(hog(), name=f"w{i}", app_id="m4")
        _finish(kernel)
        summary = kernel.machine.utilization_summary()
        elapsed = sum(summary.values())
        useful = n * work_per_process
        rows.append(
            {
                "processes": n,
                "overhead_pct": 100.0 * summary["overhead"] / elapsed,
                "slowdown": kernel.now / (useful / n_processors),
            }
        )
    return rows


def run_all_mechanisms(n_processors: int = 8) -> Dict[str, List[Dict[str, object]]]:
    """All four mechanism tables (Section 2's taxonomy, quantified)."""
    return {
        "m1_spinlock_preemption": run_m1_spinlock_preemption(n_processors),
        "m2_producer_consumer": run_m2_producer_consumer(n_processors),
        "m2b_barrier_styles": run_m2b_barrier_styles(n_processors),
        "m3_context_switching": run_m3_context_switching(n_processors),
        "m4_cache_corruption": run_m4_cache_corruption(n_processors),
    }


def format_mechanisms(tables: Dict[str, List[Dict[str, object]]]) -> str:
    blocks = ["Section 2 mechanisms, isolated (8 processors):"]
    for name, rows in tables.items():
        headers = list(rows[0].keys())
        blocks.append(
            f"\n[{name}]\n"
            + format_table(headers, [[r[h] for h in headers] for r in rows])
        )
    return "\n".join(blocks)


def main(preset: str = "paper") -> None:  # pragma: no cover - CLI glue
    print(format_mechanisms(run_all_mechanisms()))
