"""Lock-saturation collapse vs Malthusian concurrency restriction.

The head-to-head the literature never had: the paper's 1989 processor
control against lock-level waiter restriction (Malthusian locks; Dice &
Kogan's "Avoiding Scalability Collapse by Restricting Concurrency"),
and both together.  Two measurements:

**Saturation sweep** (16 CPUs, one lock tenant, no overcommit -- the
Dice & Kogan regime).  Thread counts climb through the lock's
saturation knee (``think/cs + 1`` ~ 5 threads).  Unrestricted, every
extra thread joins the spin set and each ownership hand-off pays the
invalidation-storm penalty per remaining spinner: aggregate throughput
*collapses* past the knee.  With ``admission=1`` the lock passivates
every waiter beyond one active spinner and readmits per release:
throughput rises to the knee and stays flat at peak no matter how many
threads pile on.  Processor control cannot help here -- there is no
preemption to fix; the machine is never overcommitted.

**Overcommit head-to-head** (8 CPUs, 24 lock threads + a compute-bound
background tenant).  Now *two* independent pathologies are live: the
spinner storm at the lock, and holder preemption / time-slicing from
machine-level overcommit.  Restriction alone caps the storm but leaves
the holder exposed to preemption; processor control alone removes
preemption but lets every scheduled thread spin; together they beat
either alone -- the composition claim the experiment pins.

The four arms map ``(admission, control)``: ``none`` = (off, off),
``restrict`` = (on, off), ``control`` = (off, centralized),
``combined`` = (on, centralized).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.experiments.parallel import parallel_map
from repro.metrics import format_table
from repro.workloads import run_scenario
from repro.workloads.locks import lock_saturation_scenario

#: Sweep arms (pure saturation; processor control is pointless there).
SWEEP_ARMS: Tuple[str, ...] = ("none", "restrict")

#: Head-to-head arms over the overcommitted machine.
HEAD_TO_HEAD_ARMS: Tuple[str, ...] = ("none", "restrict", "control", "combined")

#: The restriction arms' admission limit: one active spinner; everyone
#: else waits passivated.  The serial path is then one critical section
#: plus one constant hand-off -- the collapse-proof minimum.
ADMISSION = 1

#: Per-preset sizes: (tasks in the lock app, sweep thread counts,
#: head-to-head thread count).
_SIZES: Dict[str, Tuple[int, Tuple[int, ...], int]] = {
    "quick": (96, (2, 4, 6, 8, 10, 12, 14), 24),
    "paper": (192, (2, 3, 4, 5, 6, 8, 10, 12, 14, 16), 32),
}

#: Background tenant in the head-to-head: enough compute-bound workers
#: that the 8-CPU machine is genuinely overcommitted.
_BACKGROUND_WORKERS = 6


def arm_knobs(arm: str) -> Tuple[Optional[int], Optional[str]]:
    """(admission, control) for one arm name."""
    if arm not in HEAD_TO_HEAD_ARMS:
        raise ValueError(f"unknown arm {arm!r}")
    admission = ADMISSION if arm in ("restrict", "combined") else None
    control = "centralized" if arm in ("control", "combined") else None
    return admission, control


def sweep_scenario(arm: str, threads: int, preset: str = "quick", seed: int = 0):
    """One saturation-sweep cell: the lock tenant alone on 16 CPUs."""
    n_tasks, _, _ = _SIZES.get(preset, _SIZES["quick"])
    admission, control = arm_knobs(arm)
    return lock_saturation_scenario(
        threads,
        n_tasks=n_tasks,
        admission=admission,
        control=control,
        n_processors=16,
        seed=seed,
    )


def head_to_head_scenario(arm: str, preset: str = "quick", seed: int = 0):
    """One overcommit cell: lock tenant + background tenant on 8 CPUs."""
    n_tasks, _, threads = _SIZES.get(preset, _SIZES["quick"])
    admission, control = arm_knobs(arm)
    return lock_saturation_scenario(
        threads,
        n_tasks=n_tasks,
        admission=admission,
        control=control,
        background_workers=_BACKGROUND_WORKERS,
        n_processors=8,
        seed=seed,
    )


@dataclass
class LockSweepCell:
    """One (arm, threads) saturation-sweep outcome."""

    arm: str
    threads: int
    throughput_s: float  # completed critical sections per second
    wall_ms: float
    spin_ms: float
    holder_preempted: int
    passivations: int
    readmissions: int
    waiters_peak: int
    handoff_mean_us: float


@dataclass
class LockHeadToHeadCell:
    """One head-to-head arm outcome on the overcommitted machine."""

    arm: str
    throughput_s: float
    wall_ms: float
    makespan_ms: float
    holder_preempted: int
    passivations: int
    suspensions: int
    spin_ms: float


def _throughput(app) -> float:
    return app.tasks_completed / (app.wall_time / 1e6)


def _sweep_cell(args) -> LockSweepCell:
    """Sweep cell (module-level so it pickles for the process pool)."""
    arm, threads, preset, seed = args
    result = run_scenario(sweep_scenario(arm, threads, preset, seed))
    app = result.apps["locks"]
    stats = result.locks["locks.lock"]
    return LockSweepCell(
        arm=arm,
        threads=threads,
        throughput_s=_throughput(app),
        wall_ms=app.wall_time / 1e3,
        spin_ms=app.spin_time / 1e3,
        holder_preempted=stats.holder_preempted_encounters,
        passivations=stats.passivations,
        readmissions=stats.readmissions,
        waiters_peak=stats.waiters_peak,
        handoff_mean_us=stats.handoff_latency_mean,
    )


def _head_to_head_cell(args) -> LockHeadToHeadCell:
    arm, preset, seed = args
    result = run_scenario(head_to_head_scenario(arm, preset, seed))
    app = result.apps["locks"]
    stats = result.locks["locks.lock"]
    return LockHeadToHeadCell(
        arm=arm,
        throughput_s=_throughput(app),
        wall_ms=app.wall_time / 1e3,
        makespan_ms=result.makespan / 1e3,
        holder_preempted=stats.holder_preempted_encounters,
        passivations=stats.passivations,
        suspensions=sum(a.suspensions for a in result.apps.values()),
        spin_ms=app.spin_time / 1e3,
    )


@dataclass
class LockCollapseResult:
    """Both measurements, plus the preset they ran at."""

    preset: str
    sweep: List[LockSweepCell]
    head_to_head: List[LockHeadToHeadCell]


def run_lock_collapse(
    preset: str = "quick",
    seed: int = 0,
    jobs: Optional[int] = None,
    sweep_arms: Tuple[str, ...] = SWEEP_ARMS,
    head_arms: Tuple[str, ...] = HEAD_TO_HEAD_ARMS,
) -> LockCollapseResult:
    """Run the sweep and the head-to-head; cells fan out."""
    _, thread_counts, _ = _SIZES.get(preset, _SIZES["quick"])
    sweep = parallel_map(
        _sweep_cell,
        [
            (arm, threads, preset, seed)
            for arm in sweep_arms
            for threads in thread_counts
        ],
        jobs,
    )
    head = parallel_map(
        _head_to_head_cell, [(arm, preset, seed) for arm in head_arms], jobs
    )
    return LockCollapseResult(preset=preset, sweep=sweep, head_to_head=head)


def collapse_summary(sweep: List[LockSweepCell]) -> Dict[str, Dict[str, float]]:
    """Per-arm peak / past-knee-minimum / end-of-sweep throughput.

    The knee is where the *unrestricted* arm peaks: past it, adding
    threads should cost that arm throughput.  ``drop`` is the fraction
    lost from an arm's own peak to its worst past-knee cell -- the
    number the acceptance criteria bound (unrestricted >= 0.30 lost,
    restricted <= 0.10 lost).
    """
    unrestricted = [cell for cell in sweep if cell.arm == "none"]
    if not unrestricted:
        raise ValueError('collapse_summary needs the "none" arm')
    knee = max(unrestricted, key=lambda cell: cell.throughput_s).threads
    summary: Dict[str, Dict[str, float]] = {}
    for arm in {cell.arm for cell in sweep}:
        cells = sorted(
            (c for c in sweep if c.arm == arm), key=lambda c: c.threads
        )
        peak = max(c.throughput_s for c in cells)
        past_knee = [c.throughput_s for c in cells if c.threads > knee]
        floor = min(past_knee) if past_knee else peak
        summary[arm] = {
            "knee_threads": float(knee),
            "peak_s": peak,
            "past_knee_min_s": floor,
            "end_s": cells[-1].throughput_s,
            "drop": 1.0 - floor / peak,
        }
    return summary


def format_lock_collapse(result: LockCollapseResult) -> str:
    lines = [
        "Lock saturation sweep (16 CPUs, no overcommit): critical "
        "sections/sec vs threads",
        format_table(
            ["arm", "threads", "tput_s", "spin_ms", "holder_preempt",
             "passivated", "readmitted", "peak_waiters", "handoff_us"],
            [
                [
                    cell.arm,
                    cell.threads,
                    f"{cell.throughput_s:.0f}",
                    f"{cell.spin_ms:.1f}",
                    cell.holder_preempted,
                    cell.passivations,
                    cell.readmissions,
                    cell.waiters_peak,
                    f"{cell.handoff_mean_us:.0f}",
                ]
                for cell in sorted(
                    result.sweep, key=lambda c: (c.arm, c.threads)
                )
            ],
        ),
    ]
    summary = collapse_summary(result.sweep)
    none, restrict = summary.get("none"), summary.get("restrict")
    if none and restrict:
        lines.append(
            f"\ncollapse: unrestricted drops {100 * none['drop']:.0f}% from "
            f"its {none['peak_s']:.0f}/s peak past the "
            f"{none['knee_threads']:.0f}-thread knee; restricted holds "
            f"within {100 * restrict['drop']:.0f}% of its "
            f"{restrict['peak_s']:.0f}/s peak"
        )
    if result.head_to_head:
        lines.append(
            "\nOvercommit head-to-head (8 CPUs, "
            "lock tenant + background tenant):"
        )
        lines.append(
            format_table(
                ["arm", "tput_s", "wall_ms", "holder_preempt",
                 "passivated", "suspensions", "spin_ms"],
                [
                    [
                        cell.arm,
                        f"{cell.throughput_s:.0f}",
                        f"{cell.wall_ms:.1f}",
                        cell.holder_preempted,
                        cell.passivations,
                        cell.suspensions,
                        f"{cell.spin_ms:.1f}",
                    ]
                    for cell in result.head_to_head
                ],
            )
        )
        by_arm = {cell.arm: cell for cell in result.head_to_head}
        combined = by_arm.get("combined")
        if combined and "restrict" in by_arm and "control" in by_arm:
            best_single = max(
                by_arm["restrict"].throughput_s, by_arm["control"].throughput_s
            )
            lines.append(
                f"\ncomposition: combined {combined.throughput_s:.0f}/s vs "
                f"best single remedy {best_single:.0f}/s "
                f"({combined.throughput_s / best_single:.1f}x) -- waiter "
                "control and processor control fix different pathologies"
            )
    return "\n".join(lines)


def main(preset: str = "paper") -> None:  # pragma: no cover - CLI glue
    print(format_lock_collapse(run_lock_collapse(preset)))
