"""Figure 3: per-application speedup, unmodified vs process-controlled
threads package.

"For each application we plot the speed-up as the number of parallel
processes is increased.  Two curves are shown for each application: (i)
the dashed line shows the implementation ... on top of the original,
unmodified Brown Threads package, and (ii) the solid line corresponds to
... our modified threads package that controls the number of processes."

Expected shape (the paper's three observations):

1. speedup increases up to 16 processes (the processor count);
2. the two curves are nearly identical up to 16 processes (the control
   machinery costs nothing when no reduction is needed);
3. beyond 16, the unmodified package degrades sharply and monotonically,
   while the controlled package stays near its peak.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro.experiments.config import (
    app_factories,
    paper_scenario_defaults,
    poll_interval,
    process_counts,
)
from repro.experiments.parallel import parallel_map
from repro.metrics import format_table, speedup
from repro.workloads import AppSpec, Scenario, run_scenario

#: Applications plotted by Figure 3, in the paper's order.
FIGURE3_APPS = ("fft", "sort", "gauss", "matmul")


@dataclass
class Figure3Curve:
    """One application's dashed (uncontrolled) and solid (controlled) curves."""

    app: str
    t1: int
    counts: List[int]
    speedup_off: List[float]
    speedup_on: List[float]

    def peak_off(self) -> float:
        return max(self.speedup_off)

    def at(self, n: int, controlled: bool) -> float:
        index = self.counts.index(n)
        return (self.speedup_on if controlled else self.speedup_off)[index]


@dataclass
class Figure3Result:
    curves: Dict[str, Figure3Curve]
    preset: str


def _figure3_cell(args) -> int:
    """Sweep cell: one application's wall time at one (n, control) point."""
    app, n, control, preset, seed = args
    defaults = paper_scenario_defaults(preset, seed)
    factory = app_factories(preset, seed)[app]
    result = run_scenario(
        Scenario(
            apps=[AppSpec(factory, n)],
            control=control,
            machine=defaults.machine,
            scheduler=defaults.scheduler,
            poll_interval=poll_interval(preset),
            server_interval=poll_interval(preset),
            seed=seed,
        )
    )
    return result.apps[app].wall_time


def _app_cells(app: str, sweep, preset: str, seed: int):
    """All of one application's sweep cells: baseline, then off/on per n."""
    cells = [(app, 1, None, preset, seed)]
    for n in sweep:
        cells.append((app, n, None, preset, seed))
        cells.append((app, n, "centralized", preset, seed))
    return cells


def _curve_from_walls(app: str, sweep, walls: List[int]) -> Figure3Curve:
    """Assemble one curve pair from the cell results of :func:`_app_cells`."""
    t1 = walls[0]
    off = [speedup(t1, walls[1 + 2 * i]) for i in range(len(sweep))]
    on = [speedup(t1, walls[2 + 2 * i]) for i in range(len(sweep))]
    return Figure3Curve(
        app=app, t1=t1, counts=list(sweep), speedup_off=off, speedup_on=on
    )


def run_figure3_app(
    app: str,
    preset: str = "paper",
    counts: Sequence[int] = (),
    seed: int = 0,
    jobs: Optional[int] = None,
) -> Figure3Curve:
    """Both curves for one application."""
    sweep = tuple(counts) or process_counts(preset)
    walls = parallel_map(_figure3_cell, _app_cells(app, sweep, preset, seed), jobs)
    return _curve_from_walls(app, sweep, walls)


def run_figure3(
    preset: str = "paper",
    apps: Sequence[str] = FIGURE3_APPS,
    counts: Sequence[int] = (),
    seed: int = 0,
    jobs: Optional[int] = None,
) -> Figure3Result:
    """All four applications' curve pairs.

    The whole figure -- every (application, process count, control) cell --
    is flattened into one :func:`parallel_map` fan-out, so a many-core host
    overlaps the four applications' sweeps instead of finishing them one
    curve at a time.
    """
    sweep = tuple(counts) or process_counts(preset)
    cells = []
    for app in apps:
        cells.extend(_app_cells(app, sweep, preset, seed))
    walls = parallel_map(_figure3_cell, cells, jobs)
    per_app = 1 + 2 * len(sweep)
    curves = {
        app: _curve_from_walls(app, sweep, walls[i * per_app : (i + 1) * per_app])
        for i, app in enumerate(apps)
    }
    return Figure3Result(curves=curves, preset=preset)


def format_figure3(result: Figure3Result) -> str:
    blocks = ["Figure 3: speedup with (solid/on) and without (dashed/off) "
              "process control"]
    for app, curve in result.curves.items():
        rows = [
            (n, curve.speedup_off[i], curve.speedup_on[i])
            for i, n in enumerate(curve.counts)
        ]
        blocks.append(
            f"\n[{app}]  T1 = {curve.t1 / 1e6:.1f}s\n"
            + format_table(["processes", "speedup(off)", "speedup(on)"], rows)
        )
    return "\n".join(blocks)


def plot_figure3(result: Figure3Result, width: int = 56) -> str:
    """ASCII speedup-vs-processes plots, one per application, both curves."""
    from repro.viz import curve_plot

    blocks = []
    for app, curve in result.curves.items():
        curves = {
            "off": list(zip(curve.counts, curve.speedup_off)),
            "on": list(zip(curve.counts, curve.speedup_on)),
        }
        blocks.append(
            f"[{app}: speedup vs processes]\n"
            + curve_plot(curves, width=width, height=12, x_label="processes")
        )
    return "\n\n".join(blocks)


def main(preset: str = "paper") -> None:  # pragma: no cover - CLI glue
    result = run_figure3(preset)
    print(format_figure3(result))
    print()
    print(plot_figure3(result))
