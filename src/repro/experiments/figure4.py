"""Figure 4: wall-clock times of three concurrent applications, with and
without process control.

"Figure 4 shows the results when three applications execute at the same
time, both with and without process control.  The applications were
started at intervals of 10 seconds, each with 16 processes."

Expected shape: fft and gauss take much longer without control; matmul --
which arrives last, with fresh processes the UMAX-style decay scheduler
favours -- shows the smallest absolute increase.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from repro.experiments.config import (
    app_factories,
    paper_scenario_defaults,
    poll_interval,
)
from repro.metrics import format_table
from repro.sim import units
from repro.workloads import AppSpec, Scenario, ScenarioResult, run_scenario

#: Arrival order and stagger of the paper's Figure 4 run.
FIGURE4_ORDER = ("fft", "gauss", "matmul")
FIGURE4_STAGGER = units.seconds(10)
FIGURE4_PROCESSES = 16


def figure4_stagger(preset: str) -> int:
    """Arrival stagger: the paper's 10 s, shrunk for the quick preset so
    the (smaller) quick applications still overlap as in the paper."""
    return FIGURE4_STAGGER if preset == "paper" else units.seconds(3)


def figure4_scenario(
    control: Optional[str],
    preset: str = "paper",
    seed: int = 0,
    scheduler: Optional[str] = None,
) -> Scenario:
    """The Figure 4 (and Figure 5) scenario description."""
    defaults = paper_scenario_defaults(preset, seed)
    factories = app_factories(preset, seed)
    stagger = figure4_stagger(preset)
    return Scenario(
        apps=[
            AppSpec(
                factories[name],
                FIGURE4_PROCESSES,
                arrival=index * stagger,
            )
            for index, name in enumerate(FIGURE4_ORDER)
        ],
        control=control,
        machine=defaults.machine,
        scheduler=scheduler or defaults.scheduler,
        poll_interval=poll_interval(preset),
        server_interval=poll_interval(preset),
        seed=seed,
    )


@dataclass
class Figure4Result:
    uncontrolled: ScenarioResult
    controlled: ScenarioResult
    preset: str

    def wall_times(self, controlled: bool) -> Dict[str, int]:
        result = self.controlled if controlled else self.uncontrolled
        return {app: r.wall_time for app, r in result.apps.items()}

    def ratio(self, app: str) -> float:
        return (
            self.uncontrolled.apps[app].wall_time
            / self.controlled.apps[app].wall_time
        )


def run_figure4(preset: str = "paper", seed: int = 0) -> Figure4Result:
    """Both Figure 4 runs (control off, control on)."""
    return Figure4Result(
        uncontrolled=run_scenario(figure4_scenario(None, preset, seed)),
        controlled=run_scenario(figure4_scenario("centralized", preset, seed)),
        preset=preset,
    )


def format_figure4(result: Figure4Result) -> str:
    rows = []
    for app in FIGURE4_ORDER:
        off = result.uncontrolled.apps[app]
        on = result.controlled.apps[app]
        rows.append(
            (
                app,
                f"{off.wall_time / 1e6:.1f}",
                f"{on.wall_time / 1e6:.1f}",
                f"{result.ratio(app):.2f}",
                on.suspensions,
                on.polls,
            )
        )
    table = format_table(
        ["app", "wall off (s)", "wall on (s)", "off/on", "suspensions", "polls"],
        rows,
    )
    stagger_s = figure4_stagger(result.preset) / 1e6
    return (
        f"Figure 4: three applications started {stagger_s:.0f} s apart, "
        f"{FIGURE4_PROCESSES} processes each\n"
        + table
        + "\nmakespan: off "
        + f"{result.uncontrolled.makespan / 1e6:.1f}s, "
        + f"on {result.controlled.makespan / 1e6:.1f}s"
    )


def main(preset: str = "paper") -> None:  # pragma: no cover - CLI glue
    print(format_figure4(run_figure4(preset)))
