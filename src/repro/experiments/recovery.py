"""Recovery sweep: supervised vs TTL-only control-plane failure handling.

The self-healing claim is quantitative: a watchdog that restarts (and
eventually fails over) dead control-server shards should beat the passive
fallback -- the threads package's stale-target TTL releasing every
orphaned application to full parallelism -- because released applications
oversubscribe the machine for the rest of the run, which is precisely the
Section 2 waste the control plane exists to prevent.

This experiment injects three failure patterns into a lock-heavy
workload (two 6-worker applications with a 15% critical-section
fraction on 8 processors, 2-shard control plane) and runs each one
twice -- supervised and unsupervised -- against a healthy baseline,
reporting:

* **inflation** -- makespan over the healthy baseline's (the acceptance
  metric: the supervised arm must be at or below the unsupervised arm in
  every cell);
* **time-to-reconverge** -- from the first injected crash until every
  application has re-adopted a fresh server target (``-`` = never, the
  unsupervised degraded mode);
* **idle-poll waste** -- the busy-wait share of machine capacity, which
  balloons when TTL release hands workers back to an overloaded machine;
* watchdog action counters (restarts, failovers, expiries).

Failure patterns:

* ``shard-dead`` -- one shard silently dies and never comes back: the
  watchdog restart path, vs TTL release of half the applications.
* ``shard-flap`` -- the same shard is re-killed every 20 ms: the restart
  budget (3 attempts) drains and the watchdog *fails over* the shard's
  region and applications to the survivor.
* ``total-outage`` -- every shard dies at once: supervised runs restart
  the whole plane; unsupervised runs degrade to full parallelism.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.analysis.waste import waste_breakdown
from repro.apps.synthetic import UniformApp
from repro.experiments.parallel import parallel_map
from repro.machine import MachineConfig
from repro.metrics import format_table
from repro.sanitize.invariants import sanitize_mode_from_env
from repro.sim import units
from repro.workloads import AppSpec, Scenario, run_scenario

#: Failure patterns swept by the recovery experiment (fault-plan specs
#: against a 2-shard plane; see :mod:`repro.faults.plan` for the grammar).
RECOVERY_PATTERNS: Dict[str, str] = {
    # Crashes land at >= 25ms so every application has adopted a target
    # first: the unsupervised arm then walks the full degradation path
    # (failed polls -> TTL expiry -> full parallelism).
    "shard-dead": "server-crash:shard=1,at=25ms",
    "shard-flap": (
        "server-crash:shard=1,at=25ms;"
        "server-crash:shard=1,at=45ms;"
        "server-crash:shard=1,at=65ms;"
        "server-crash:shard=1,at=85ms"
    ),
    "total-outage": "server-crash:at=25ms",
}

#: Shard count every cell runs with (patterns name shard 1, so >= 2).
RECOVERY_SHARDS = 2

#: Fraction of each task spent inside a spinlock.  This is what makes the
#: sweep decisive: with pure compute, TTL release to full parallelism is
#: nearly free (the machine stays busy either way), but with critical
#: sections the preempted-lock-holder waste of Section 2 makes the
#: uncontrolled 12-on-8 oversubscription measurably slower than the
#: equipartition a restarted server restores (~1.25x at this fraction).
RECOVERY_CRITICAL_FRACTION = 0.15


def recovery_scenario(seed: int) -> Scenario:
    """The sweep's workload: two lock-heavy apps oversubscribing 8 CPUs.

    The same shape as :func:`repro.faults.campaign.chaos_scenario` (two
    6-worker applications, 10ms intervals, 2-shard plane) but with a
    critical-section fraction so losing control has a real cost.
    """
    machine = MachineConfig(
        n_processors=8,
        quantum=units.ms(5),
        context_switch_cost=units.us(50),
        dispatch_latency=units.us(10),
        cache_cold_penalty=units.us(500),
        cache_warmup_time=units.ms(2),
        cache_purge_time=units.ms(4),
    )
    return Scenario(
        apps=[
            AppSpec(
                lambda: UniformApp(
                    "recovery-a",
                    n_tasks=240,
                    task_cost=units.ms(2),
                    critical_fraction=RECOVERY_CRITICAL_FRACTION,
                    jitter=0.2,
                    seed=seed,
                ),
                n_processes=6,
            ),
            AppSpec(
                lambda: UniformApp(
                    "recovery-b",
                    n_tasks=240,
                    task_cost=units.ms(2),
                    critical_fraction=RECOVERY_CRITICAL_FRACTION,
                    jitter=0.2,
                    seed=seed,
                ),
                n_processes=6,
                arrival=units.ms(2),
            ),
        ],
        control="centralized",
        scheduler="fifo",
        machine=machine,
        server_interval=units.ms(10),
        poll_interval=units.ms(10),
        seed=seed,
        max_time=units.seconds(5),
        shards=RECOVERY_SHARDS,
    )


@dataclass
class RecoveryCell:
    """One (pattern, arm, seed) outcome."""

    pattern: str  # "baseline" for the healthy run
    supervised: bool
    seed: int
    completed: bool
    makespan: int
    violations: int
    #: us from the first injected crash to the last application's first
    #: fresh re-poll; None = some application never reconverged.
    reconverge: Optional[int]
    failed_polls: int
    target_expiries: int
    restarts: int
    failovers: int
    idle_poll_pct: float
    #: makespan / healthy-baseline makespan; 0.0 until the report fills it.
    inflation: float = 0.0


def _reconverge_time(result) -> Optional[int]:
    """us from the first applied crash until every app re-polled fresh."""
    crashes = [
        time
        for time, kind, details in result.fault_events
        if kind == "server_crash" and details.get("applied")
    ]
    if not crashes:
        return None
    first_crash = min(crashes)
    latest: Dict[str, int] = {}
    for record in result.trace.records("pc.poll"):
        app_id = record.data["app_id"]
        if record.time >= first_crash and app_id not in latest:
            latest[app_id] = record.time
    if set(latest) != set(result.apps):
        return None
    return max(latest.values()) - first_crash


def _recovery_cell(args) -> RecoveryCell:
    """Sweep cell (module-level so it pickles for the process pool)."""
    pattern, spec, supervised, seed, sanitize = args
    scenario = recovery_scenario(seed).with_(supervise=supervised)
    # faults="" (not None) so a stray REPRO_FAULTS cannot infect baselines.
    result = run_scenario(scenario, sanitize=sanitize, faults=spec or "")
    completed = all(
        app.finished_at is not None and app.finished_at >= 0
        for app in result.apps.values()
    ) and result.sim_time < scenario.max_time
    counters = result.watchdog_counters or {}
    return RecoveryCell(
        pattern=pattern,
        supervised=supervised,
        seed=seed,
        completed=completed,
        makespan=result.makespan if completed else scenario.max_time,
        violations=result.sanitizer_violations,
        reconverge=_reconverge_time(result) if spec else None,
        failed_polls=sum(app.failed_polls for app in result.apps.values()),
        target_expiries=sum(
            app.target_expiries for app in result.apps.values()
        ),
        restarts=counters.get("restarts", 0),
        failovers=counters.get("failovers", 0),
        idle_poll_pct=waste_breakdown(result).as_percentages()["idle_poll"],
    )


@dataclass
class RecoveryReport:
    """The sweep's cells plus the acceptance logic."""

    cells: List[RecoveryCell]
    baselines: Dict[int, int]  # seed -> healthy makespan
    patterns: Dict[str, str]
    seeds: Tuple[int, ...]
    sanitize: str = "record"
    failures: List[str] = field(default_factory=list)

    def cell(
        self, pattern: str, supervised: bool, seed: int
    ) -> Optional[RecoveryCell]:
        for cell in self.cells:
            if (
                cell.pattern == pattern
                and cell.supervised == supervised
                and cell.seed == seed
            ):
                return cell
        return None

    @property
    def total_violations(self) -> int:
        return sum(cell.violations for cell in self.cells)

    @property
    def deadlocks(self) -> int:
        return sum(1 for cell in self.cells if not cell.completed)

    def check(self) -> List[str]:
        """All acceptance failures (empty list = clean sweep)."""
        failures: List[str] = []
        for cell in self.cells:
            arm = "supervised" if cell.supervised else "unsupervised"
            where = f"{cell.pattern}/{arm}/seed={cell.seed}"
            if not cell.completed:
                failures.append(f"deadlock: {where} missed the time cap")
            if cell.violations:
                failures.append(
                    f"invariants: {where} logged {cell.violations} violations"
                )
        for pattern in self.patterns:
            for seed in self.seeds:
                sup = self.cell(pattern, True, seed)
                unsup = self.cell(pattern, False, seed)
                if sup is None or unsup is None:
                    continue
                if sup.inflation > unsup.inflation:
                    failures.append(
                        f"recovery: {pattern}/seed={seed} supervised "
                        f"inflation {sup.inflation:.3f}x exceeds the "
                        f"unsupervised {unsup.inflation:.3f}x"
                    )
        return failures

    def assert_clean(self) -> None:
        """Raise AssertionError listing every acceptance failure."""
        failures = self.check()
        if failures:
            raise AssertionError(
                "recovery sweep failed:\n  " + "\n  ".join(failures)
            )

    def format_report(self) -> str:
        """Deterministic text report (byte-identical across reruns)."""
        headers = [
            "pattern",
            "arm",
            "seed",
            "makespan_us",
            "inflation",
            "reconverge_us",
            "expiries",
            "restarts",
            "failovers",
            "idle_poll%",
            "ok",
        ]
        rows = []
        for cell in self.cells:
            rows.append(
                [
                    cell.pattern,
                    "supervised" if cell.supervised else "ttl-only",
                    cell.seed,
                    cell.makespan,
                    f"{cell.inflation:.3f}",
                    cell.reconverge if cell.reconverge is not None else "-",
                    cell.target_expiries,
                    cell.restarts,
                    cell.failovers,
                    f"{cell.idle_poll_pct:.2f}",
                    "yes" if cell.completed else "NO",
                ]
            )
        lines = [
            "Recovery sweep: supervised watchdog vs TTL-only degradation "
            f"({len(self.patterns)} failure patterns x {len(self.seeds)} "
            f"seeds, shards={RECOVERY_SHARDS}, sanitize={self.sanitize})",
            format_table(headers, rows),
            "",
            f"violations={self.total_violations} deadlocks={self.deadlocks}",
        ]
        failures = self.check()
        if failures:
            lines.append("FAILURES:")
            lines.extend(f"  {failure}" for failure in failures)
        else:
            lines.append("clean: supervision beat TTL-only in every cell")
        return "\n".join(lines)


def run_recovery(
    preset: str = "quick",
    seeds: Optional[Tuple[int, ...]] = None,
    jobs: Optional[int] = None,
    sanitize: Optional[str] = None,
    patterns: Optional[Dict[str, str]] = None,
) -> RecoveryReport:
    """Run the sweep: healthy baselines + each pattern, both arms.

    *sanitize* defaults to the ``REPRO_SANITIZE`` environment knob, or
    ``"record"`` when unset, so the sweep always runs checked.
    """
    if seeds is None:
        seeds = (0, 1, 2) if preset == "quick" else (0, 1, 2, 3, 4)
    if patterns is None:
        patterns = dict(RECOVERY_PATTERNS)
    if sanitize is None:
        sanitize = sanitize_mode_from_env() or "record"
    seeds = tuple(seeds)

    cells_args = []
    for seed in seeds:
        cells_args.append(("baseline", "", False, seed, sanitize))
    for pattern, spec in patterns.items():
        for supervised in (False, True):
            for seed in seeds:
                cells_args.append((pattern, spec, supervised, seed, sanitize))
    cells: List[RecoveryCell] = parallel_map(_recovery_cell, cells_args, jobs)

    baselines: Dict[int, int] = {
        cell.seed: cell.makespan
        for cell in cells
        if cell.pattern == "baseline"
    }
    for cell in cells:
        base = baselines.get(cell.seed, 0)
        cell.inflation = cell.makespan / base if base else 0.0
    return RecoveryReport(
        cells=cells,
        baselines=baselines,
        patterns=patterns,
        seeds=seeds,
        sanitize=sanitize,
    )


def main(preset: str = "quick") -> None:  # pragma: no cover - CLI glue
    """CLI entry (``python -m repro.experiments recovery``): run + assert."""
    report = run_recovery(preset)
    print(report.format_report())
    report.assert_clean()
