"""Tail latency under rising offered load: the SLO policy's case.

An interactive request-serving tenant (open Poisson arrivals, small
fan-out/reduce DAG per request, a per-request latency objective) shares
an 8-processor machine with a long-lived batch application.  The service
needs more than its equipartition share at the offered loads swept here,
but less than the whole machine -- the regime where *which* allocation
rule the control server runs decides whether the tail is bounded or
grows without limit:

* ``uncontrolled`` -- no process control at all; both applications keep
  all their workers runnable and the kernel time-slices 16 workers over
  8 processors.
* ``equal`` -- the paper's equipartition: the service is pinned at half
  the machine no matter how its latency looks, and its queue grows
  without bound.
* ``demand`` -- backlog feedback: *worse* than equal for the service,
  because an open-arrival tenant's backlog snapshot (taken between
  arrivals) is not a demand signal, and the policy starves it whenever
  the snapshot is small.
* ``slo`` -- the QoS feedback loop: the threads package piggybacks the
  service's latency slowdown and tier tag on its polls, and the policy
  boosts the missing tenant's water-filling weight so the batch
  application absorbs the slack.

The batch workload is sized to outlast the whole arrival stream at its
equipartition share, so the comparison is never contaminated by the
batch job finishing early and donating its processors.  Service
scenarios run the blocking (``idle_spin=False``) package: a busy-wait
worker deep in its idle backoff is just as deaf to a fresh request as a
blocked one, but the backoff adds milliseconds of pickup noise that
would drown the allocation signal the experiment is after.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.apps.service import ServiceApp
from repro.apps.synthetic import UniformApp
from repro.experiments.parallel import parallel_map
from repro.machine import MachineConfig
from repro.metrics import format_table
from repro.sim import units
from repro.workloads import AppSpec, Scenario, run_scenario

#: Arms the sweep compares; ``uncontrolled`` disables process control.
SWEEP_ARMS: Tuple[str, ...] = ("uncontrolled", "equal", "demand", "slo")

#: Offered request rates (per second) per preset.  Per-request work is
#: 4 x 4 ms stages + 2 ms reduce = 18 ms, so the machine-share the
#: service needs is rate * 0.018: ~3.2 CPUs at 180/s up to ~5.4 at 300/s
#: -- past its 4-CPU equipartition share from the middle of the sweep on.
SWEEP_RATES: Dict[str, Tuple[float, ...]] = {
    "quick": (250.0,),
    "paper": (180.0, 250.0, 300.0),
}


def service_mix_scenario(
    arm: str, rate_per_s: float, preset: str = "quick", seed: int = 0
) -> Scenario:
    """Interactive service + long batch job on 8 processors.

    Exposed separately so tests can replay the exact runs the experiment
    measures (the acceptance test pins the quick-preset digest).
    """
    n_requests = 160 if preset == "paper" else 120
    machine = MachineConfig(n_processors=8)

    def service() -> ServiceApp:
        return ServiceApp(
            app_id="svc",
            rate_per_s=rate_per_s,
            n_requests=n_requests,
            fanout=4,
            stage_cost=units.ms(4),
            reduce_cost=units.ms(2),
            slo_us=units.ms(60),
            seed=seed,
        )

    def batch() -> UniformApp:
        # 3.2 s of work: >= 800 ms at its 4-CPU equipartition share,
        # which outlasts every arrival stream in the sweep.
        return UniformApp(
            "batch", n_tasks=400, task_cost=units.ms(8), seed=seed
        )

    return Scenario(
        apps=[
            AppSpec(service, n_processes=8),
            AppSpec(batch, n_processes=8),
        ],
        control=None if arm == "uncontrolled" else "centralized",
        scheduler="fifo",
        machine=machine,
        server_interval=units.ms(10),
        poll_interval=units.ms(10),
        idle_spin=False,
        policy=None if arm == "uncontrolled" else arm,
        seed=seed,
        max_time=units.seconds(60),
    )


@dataclass
class ServiceCell:
    """One (arm, rate) outcome, reduced to the latency figures."""

    arm: str
    rate_per_s: float
    requests: int
    p50_ms: float
    p95_ms: float
    p99_ms: float
    violation_rate: float
    goodput_per_s: float
    batch_finished_ms: float
    suspensions: int


def _service_cell(args) -> ServiceCell:
    """Sweep cell (module-level so it pickles for the process pool)."""
    arm, rate, preset, seed = args
    result = run_scenario(service_mix_scenario(arm, rate, preset, seed))
    stats = result.service["svc"]
    return ServiceCell(
        arm=arm,
        rate_per_s=rate,
        requests=stats.count,
        p50_ms=stats.p50 / 1e3,
        p95_ms=stats.p95 / 1e3,
        p99_ms=stats.p99 / 1e3,
        violation_rate=stats.violation_rate,
        goodput_per_s=stats.goodput_per_s,
        batch_finished_ms=result.apps["batch"].finished_at / 1e3,
        suspensions=sum(app.suspensions for app in result.apps.values()),
    )


def run_service(
    preset: str = "quick",
    seed: int = 0,
    jobs: Optional[int] = None,
    arms: Tuple[str, ...] = SWEEP_ARMS,
) -> List[ServiceCell]:
    """Run the mix once per (arm, offered rate); cells fan out."""
    rates = SWEEP_RATES.get(preset, SWEEP_RATES["quick"])
    return parallel_map(
        _service_cell,
        [(arm, rate, preset, seed) for rate in rates for arm in arms],
        jobs,
    )


def format_service(cells: List[ServiceCell]) -> str:
    headers = [
        "rate/s",
        "arm",
        "requests",
        "p50_ms",
        "p95_ms",
        "p99_ms",
        "viol%",
        "goodput/s",
        "batch_done_ms",
        "suspensions",
    ]
    rows = [
        [
            f"{cell.rate_per_s:.0f}",
            cell.arm,
            cell.requests,
            f"{cell.p50_ms:.1f}",
            f"{cell.p95_ms:.1f}",
            f"{cell.p99_ms:.1f}",
            f"{100.0 * cell.violation_rate:.1f}",
            f"{cell.goodput_per_s:.1f}",
            f"{cell.batch_finished_ms:.0f}",
            cell.suspensions,
        ]
        for cell in cells
    ]
    lines = [
        "Interactive service + batch mix, rising offered load "
        "(8 CPUs, 60 ms SLO)",
        format_table(headers, rows),
    ]
    by_key = {(cell.arm, cell.rate_per_s): cell for cell in cells}
    for rate in sorted({cell.rate_per_s for cell in cells}):
        equal = by_key.get(("equal", rate))
        slo = by_key.get(("slo", rate))
        if equal and slo:
            lines.append(
                f"\n{rate:.0f}/s: slo p99 {slo.p99_ms:.1f} ms vs equal "
                f"{equal.p99_ms:.1f} ms "
                f"({100.0 * (1 - slo.p99_ms / equal.p99_ms):.0f}% lower tail)"
            )
    return "\n".join(lines)


def main(preset: str = "paper") -> None:  # pragma: no cover - CLI glue
    print(format_service(run_service(preset)))
