"""Steady-state multiprogramming: the paper's motivating environment.

Section 1: "the computing environment we consider ... is that of a
multiprogrammed shared-memory multiprocessor, with multiple simultaneously
running parallel applications ... where the number of running applications
is continuously changing".  The figure experiments freeze that environment
into three-application scripts; this experiment runs the environment
itself: a Poisson stream of applications of mixed kinds and sizes, with
and without process control, and reports per-application *slowdown*
(turnaround normalized by the application's ideal time on the whole
machine) -- the long-run metric a time-sharing facility would care about.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.apps import FFT, Gauss, MatMul, MergeSort
from repro.experiments.config import paper_machine, poll_interval
from repro.experiments.parallel import parallel_map
from repro.metrics import format_table
from repro.sim import units
from repro.workloads import Scenario, run_scenario
from repro.workloads.generator import (
    GeneratedWorkloadConfig,
    build_app_specs,
    generate_arrivals,
)

#: Template factories: (app_id, scale, seed) -> Application.
def default_templates():
    return {
        "fft": lambda app_id, scale, seed: FFT(app_id=app_id, scale=scale, seed=seed),
        "gauss": lambda app_id, scale, seed: Gauss(app_id=app_id, scale=scale, seed=seed),
        "matmul": lambda app_id, scale, seed: MatMul(app_id=app_id, scale=scale, seed=seed),
        "sort": lambda app_id, scale, seed: MergeSort(app_id=app_id, scale=scale, seed=seed),
    }


@dataclass
class SteadyStateResult:
    """Paired outcome of one generated workload, control off vs on."""

    n_apps: int
    makespan_off_s: float
    makespan_on_s: float
    mean_slowdown_off: float
    mean_slowdown_on: float
    worst_slowdown_off: float
    worst_slowdown_on: float
    per_app: List[Dict[str, object]]

    @property
    def makespan_gain(self) -> float:
        return self.makespan_off_s / self.makespan_on_s


def _workload_config(preset: str) -> GeneratedWorkloadConfig:
    if preset == "paper":
        return GeneratedWorkloadConfig(
            window=units.seconds(90),
            arrival_rate_per_s=0.08,
            scale_range=(0.3, 0.8),
            min_apps=4,
        )
    return GeneratedWorkloadConfig(
        window=units.seconds(20),
        arrival_rate_per_s=0.25,
        scale_range=(0.15, 0.35),
        min_apps=3,
    )


def steady_state_scenario(
    control: Optional[str], preset: str = "quick", seed: int = 0
) -> Scenario:
    """One control mode's generated-workload scenario.

    Exposed separately so the golden-trace regression tests can replay
    exactly the runs the experiment measures.
    """
    config = _workload_config(preset)
    arrivals = generate_arrivals(config, seed=seed)
    interval = poll_interval(preset)
    return Scenario(
        apps=build_app_specs(arrivals, default_templates(), seed=seed),
        control=control,
        machine=paper_machine(),
        scheduler="decay",
        poll_interval=interval,
        server_interval=interval,
        seed=seed,
        max_time=units.seconds(7200),
    )


def _steady_state_cell(args) -> Dict[str, object]:
    """Sweep cell: one control mode's full run, reduced to plain data.

    The workload is regenerated inside the worker from (preset, seed) --
    generation is deterministic, and shipping plain arguments keeps the
    cell picklable.
    """
    control, preset, seed = args
    result = run_scenario(steady_state_scenario(control, preset, seed))
    return {
        "makespan": result.makespan,
        "walls": {app_id: app.wall_time for app_id, app in result.apps.items()},
    }


def run_steady_state(
    preset: str = "quick", seed: int = 0, jobs: Optional[int] = None
) -> SteadyStateResult:
    """Generate one workload and run it with control off and on.

    The off and on runs are independent simulations of the same generated
    workload, so they fan out as two :func:`parallel_map` cells.
    """
    config = _workload_config(preset)
    arrivals = generate_arrivals(config, seed=seed)
    templates = default_templates()
    machine = paper_machine()

    ideals = {}
    for generated in arrivals:
        app = templates[generated.template](
            generated.app_id, generated.scale, seed
        )
        ideals[generated.app_id] = app.total_work() / machine.n_processors

    reduced = parallel_map(
        _steady_state_cell,
        [(control, preset, seed) for control in (None, "centralized")],
        jobs,
    )
    results = {None: reduced[0], "centralized": reduced[1]}

    per_app: List[Dict[str, object]] = []
    slowdowns = {None: [], "centralized": []}
    for generated in arrivals:
        row: Dict[str, object] = {
            "app": generated.app_id,
            "procs": generated.n_processes,
            "arrival_s": generated.arrival / 1e6,
        }
        for control, label in ((None, "off"), ("centralized", "on")):
            wall = results[control]["walls"][generated.app_id]
            slowdown = wall / max(ideals[generated.app_id], 1)
            slowdowns[control].append(slowdown)
            row[f"slowdown_{label}"] = slowdown
        per_app.append(row)

    return SteadyStateResult(
        n_apps=len(arrivals),
        makespan_off_s=results[None]["makespan"] / 1e6,
        makespan_on_s=results["centralized"]["makespan"] / 1e6,
        mean_slowdown_off=sum(slowdowns[None]) / len(slowdowns[None]),
        mean_slowdown_on=sum(slowdowns["centralized"])
        / len(slowdowns["centralized"]),
        worst_slowdown_off=max(slowdowns[None]),
        worst_slowdown_on=max(slowdowns["centralized"]),
        per_app=per_app,
    )


def format_steady_state(result: SteadyStateResult) -> str:
    headers = list(result.per_app[0].keys())
    table = format_table(
        headers, [[row[h] for h in headers] for row in result.per_app]
    )
    summary = (
        f"\napplications: {result.n_apps}; makespan off/on: "
        f"{result.makespan_off_s:.1f}s / {result.makespan_on_s:.1f}s "
        f"({result.makespan_gain:.2f}x)\n"
        f"mean slowdown off/on: {result.mean_slowdown_off:.2f} / "
        f"{result.mean_slowdown_on:.2f}; worst: "
        f"{result.worst_slowdown_off:.2f} / {result.worst_slowdown_on:.2f}"
    )
    return (
        "Steady-state multiprogramming (random arrivals, control off vs on)\n"
        + table
        + summary
    )


def main(preset: str = "paper") -> None:  # pragma: no cover - CLI glue
    print(format_steady_state(run_steady_state(preset)))
