"""Figure 1: matmul and fft run simultaneously, speedup vs processes/app.

"The graph shows the performance of two simultaneously executing parallel
applications, a matrix multiplication and a one-dimensional FFT ... the
speed-up for the applications as the number of processes executing the
tasks in each application is varied from 1 to 24" on 16 processors, with
the *unmodified* threads package (no process control).

Expected shape: both curves rise until the two applications together fill
the machine (8 processes each on 16 processors), then fall as processes
exceed processors -- and keep falling as the count grows.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro.experiments.config import (
    app_factories,
    paper_scenario_defaults,
    process_counts,
)
from repro.experiments.parallel import parallel_map
from repro.metrics import format_table, speedup
from repro.workloads import AppSpec, Scenario, run_scenario


@dataclass
class Figure1Row:
    """Speedups of both applications at one processes-per-application point."""

    n_processes: int
    speedup_matmul: float
    speedup_fft: float


@dataclass
class Figure1Result:
    rows: List[Figure1Row]
    t1: Dict[str, int]  # single-process baselines, us
    preset: str

    @property
    def peak_processes(self) -> int:
        """Processes/app at which the summed speedup peaks."""
        best = max(self.rows, key=lambda r: r.speedup_matmul + r.speedup_fft)
        return best.n_processes


def _baseline_cell(args) -> int:
    """Sweep cell: single-process wall time of one application."""
    name, preset, seed = args
    defaults = paper_scenario_defaults(preset, seed)
    factories = app_factories(preset, seed)
    result = run_scenario(
        Scenario(
            apps=[AppSpec(factories[name], 1)],
            control=None,
            machine=defaults.machine,
            scheduler=defaults.scheduler,
            seed=seed,
        )
    )
    return result.apps[name].wall_time


def figure1_scenario(n: int, preset: str = "paper", seed: int = 0) -> Scenario:
    """The figure's scenario at one processes-per-application point.

    Exposed separately so the golden-trace regression tests can replay
    exactly the runs the sweep measures.
    """
    defaults = paper_scenario_defaults(preset, seed)
    factories = app_factories(preset, seed)
    return Scenario(
        apps=[
            AppSpec(factories["matmul"], n),
            AppSpec(factories["fft"], n),
        ],
        control=None,
        machine=defaults.machine,
        scheduler=defaults.scheduler,
        seed=seed,
    )


def _sweep_cell(args):
    """Sweep cell: (matmul, fft) wall times at one processes-per-app point."""
    n, preset, seed = args
    result = run_scenario(figure1_scenario(n, preset, seed))
    return result.apps["matmul"].wall_time, result.apps["fft"].wall_time


def run_figure1(
    preset: str = "paper",
    counts: Sequence[int] = (),
    seed: int = 0,
    jobs: Optional[int] = None,
) -> Figure1Result:
    """Reproduce Figure 1's two curves.

    Every point of the sweep is an independent simulation, so the sweep
    fans out over :func:`repro.experiments.parallel.parallel_map` (*jobs*
    workers, default ``REPRO_JOBS`` / cpu count) with bit-identical
    results in any mode.
    """
    sweep = tuple(counts) or process_counts(preset)

    baselines = parallel_map(
        _baseline_cell, [(name, preset, seed) for name in ("matmul", "fft")], jobs
    )
    t1: Dict[str, int] = {"matmul": baselines[0], "fft": baselines[1]}

    walls = parallel_map(_sweep_cell, [(n, preset, seed) for n in sweep], jobs)
    rows: List[Figure1Row] = [
        Figure1Row(
            n_processes=n,
            speedup_matmul=speedup(t1["matmul"], wall_matmul),
            speedup_fft=speedup(t1["fft"], wall_fft),
        )
        for n, (wall_matmul, wall_fft) in zip(sweep, walls)
    ]
    return Figure1Result(rows=rows, t1=t1, preset=preset)


def format_figure1(result: Figure1Result) -> str:
    """Print the figure's two series as a table."""
    table = format_table(
        ["processes/app", "speedup(matmul)", "speedup(fft)"],
        [(r.n_processes, r.speedup_matmul, r.speedup_fft) for r in result.rows],
    )
    return (
        "Figure 1: matmul + fft run simultaneously, no process control\n"
        f"(16 processors; peak at {result.peak_processes} processes/app)\n"
        + table
    )


def plot_figure1(result: Figure1Result, width: int = 56) -> str:
    """ASCII speedup-vs-processes plot, both applications."""
    from repro.viz import curve_plot

    curves = {
        "matmul": [(r.n_processes, r.speedup_matmul) for r in result.rows],
        "fft": [(r.n_processes, r.speedup_fft) for r in result.rows],
    }
    return curve_plot(curves, width=width, height=12, x_label="processes/app")


def main(preset: str = "paper") -> None:  # pragma: no cover - CLI glue
    result = run_figure1(preset)
    print(format_figure1(result))
    print()
    print(plot_figure1(result))
