"""Shared experiment configuration: the calibrated machine and workloads.

The *paper* preset reproduces the evaluation platform: a 16-processor
machine under a UMAX-like priority-decay scheduler, with applications sized
so single-process runs take a few simulated minutes and multiprogrammed
runs line up with Figure 4's tens of seconds.

The *quick* preset keeps every structural property (phase counts relative
to processor counts, critical-section fractions, arrival staggering) but
shrinks task counts, so benchmarks run in seconds of host time while
preserving the figures' shapes.

Calibration notes (also summarized in DESIGN.md section 6):

* quantum 50 ms, context switch 200 us -- era-plausible UMAX values;
* cache cold reload 40 ms/full working set -- deliberately at the high end
  the paper's Section 2 projects for scalable shared-memory machines; this
  is the main driver of the beyond-16-process collapse in Figures 1/3;
* per-application critical sections sized so speedups at 16 processes are
  sub-linear exactly as in Figure 3 (fft ~ 13, gauss ~ 11, sort ~ 5,
  matmul ~ 16 on our machine vs the paper's 7/10/6.5/13.5);
* the priority-decay half-life (15 s) reproduces the paper's observation
  that freshly started applications are favoured by UMAX.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict

from repro.apps import FFT, Gauss, MatMul, MergeSort
from repro.machine import MachineConfig
from repro.sim import units

#: Process counts swept by Figures 1 and 3 (paper: 1 through 24).
PAPER_PROCESS_COUNTS = (1, 2, 4, 8, 12, 16, 20, 24)

#: Reduced sweep for the quick preset.
QUICK_PROCESS_COUNTS = (1, 4, 8, 16, 24)

#: The default kernel scheduler for the paper experiments (UMAX-like).
PAPER_SCHEDULER = "decay"


def paper_machine(n_processors: int = 16) -> MachineConfig:
    """The calibrated 16-processor Multimax stand-in."""
    return MachineConfig(
        n_processors=n_processors,
        quantum=units.ms(50),
        context_switch_cost=units.us(200),
        dispatch_latency=units.us(50),
        cache_cold_penalty=units.ms(40),
        cache_warmup_time=units.ms(20),
        cache_purge_time=units.ms(30),
    )


def app_factories(
    preset: str = "paper", seed: int = 0
) -> Dict[str, Callable[[], object]]:
    """Factories for the four paper applications, by name.

    Each call to a factory builds a fresh application instance (fresh locks
    and jitter streams), as the scenario runner requires.
    """
    if preset == "paper":
        return {
            "matmul": lambda: MatMul(seed=seed),
            "fft": lambda: FFT(seed=seed),
            "gauss": lambda: Gauss(seed=seed),
            "sort": lambda: MergeSort(seed=seed),
        }
    if preset == "quick":
        return {
            "matmul": lambda: MatMul(n_tasks=400, seed=seed),
            "fft": lambda: FFT(phases=8, tasks_per_phase=32, seed=seed),
            "gauss": lambda: Gauss(n_steps=24, seed=seed),
            "sort": lambda: MergeSort(n_lists=32, seed=seed),
        }
    raise ValueError(f"unknown preset {preset!r} (use 'paper' or 'quick')")


def poll_interval(preset: str = "paper") -> int:
    """Server/application polling period: the paper's 6 s, shrunk for the
    quick preset in proportion to its shorter runs."""
    if preset == "paper":
        return units.seconds(6)
    if preset == "quick":
        return units.seconds(2)
    raise ValueError(f"unknown preset {preset!r} (use 'paper' or 'quick')")


def process_counts(preset: str = "paper") -> tuple:
    """Sweep points for the given preset."""
    if preset == "paper":
        return PAPER_PROCESS_COUNTS
    if preset == "quick":
        return QUICK_PROCESS_COUNTS
    raise ValueError(f"unknown preset {preset!r} (use 'paper' or 'quick')")


@dataclass
class ScenarioDefaults:
    """Bundle of scenario fields shared by all paper experiments."""

    machine: MachineConfig
    scheduler: str
    seed: int


def paper_scenario_defaults(
    preset: str = "paper", seed: int = 0, n_processors: int = 16
) -> ScenarioDefaults:
    """Machine + scheduler + seed for a paper-style scenario."""
    return ScenarioDefaults(
        machine=paper_machine(n_processors),
        scheduler=PAPER_SCHEDULER,
        seed=seed,
    )
