"""Ablations: the design choices DESIGN.md calls out, quantified.

Each function isolates one knob:

- :func:`run_scheduler_comparison` -- process control vs the related work
  of Section 3 (coscheduling, no-preempt flags, affinity, process groups)
  and the Section 7 space partitioning, on the Figure 4 mix.
- :func:`run_quantum_sweep` -- quantum length vs degradation (Section 2's
  context-switching overhead).
- :func:`run_cache_sweep` -- cache reload penalty vs degradation
  (Section 2 point 4: the dominant cost on scalable machines).
- :func:`run_poll_interval_sweep` -- the 6-second choice of Section 5.
- :func:`run_control_mode_comparison` -- centralized vs decentralized
  control (Section 4.2's rejected design).
- :func:`run_idle_mode_comparison` -- busy-wait vs blocking threads
  package (Section 2 point 2's producer/consumer waste).
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.experiments.config import (
    app_factories,
    paper_machine,
    paper_scenario_defaults,
    poll_interval as preset_poll_interval,
)
from repro.experiments.figure4 import figure4_scenario
from repro.experiments.parallel import parallel_map
from repro.machine import MachineConfig
from repro.metrics import format_table
from repro.sim import units
from repro.workloads import AppSpec, Scenario, run_scenario

#: Schedulers compared by the scheduler ablation (all of Section 3 + 7).
ABLATION_SCHEDULERS = (
    "fifo",
    "decay",
    "coscheduling",
    "nopreempt",
    "affinity",
    "partition",
)


def _scheduler_comparison_cell(args) -> Dict[str, object]:
    """Sweep cell: Figure 4 mix under one (scheduler, control) pair."""
    scheduler, control, preset, seed = args
    scenario = figure4_scenario(
        control, preset=preset, seed=seed, scheduler=scheduler
    )
    if scheduler == "nopreempt":
        scenario = scenario.with_(use_no_preempt_flags=True)
    result = run_scenario(scenario)
    row: Dict[str, object] = {
        "scheduler": scheduler,
        "control": "on" if control else "off",
        "makespan_s": result.makespan / 1e6,
        "spin_s": result.total_spin_time / 1e6,
        "cs_preemptions": result.total_cs_preemptions,
    }
    for app_id, app_result in result.apps.items():
        row[f"wall_{app_id}_s"] = app_result.wall_time / 1e6
    return row


def run_scheduler_comparison(
    preset: str = "quick", seed: int = 0, jobs: Optional[int] = None
) -> List[Dict[str, object]]:
    """Figure 4 mix under every scheduler, control off and on.

    Twelve independent runs (6 schedulers x off/on), fanned out over
    :func:`parallel_map`.
    """
    cells = [
        (scheduler, control, preset, seed)
        for scheduler in ABLATION_SCHEDULERS
        for control in (None, "centralized")
    ]
    return parallel_map(_scheduler_comparison_cell, cells, jobs)


def _single_app_run(
    app: str,
    n_processes: int,
    control: Optional[str],
    machine: MachineConfig,
    preset: str,
    seed: int,
    idle_spin: bool = True,
    poll_interval: Optional[int] = None,
    scheduler: Optional[str] = None,
):
    defaults = paper_scenario_defaults(preset, seed)
    factory = app_factories(preset, seed)[app]
    interval = (
        poll_interval if poll_interval is not None else preset_poll_interval(preset)
    )
    scenario = Scenario(
        apps=[AppSpec(factory, n_processes)],
        control=control,
        machine=machine,
        scheduler=scheduler or defaults.scheduler,
        idle_spin=idle_spin,
        poll_interval=interval,
        server_interval=interval,
        seed=seed,
    )
    return run_scenario(scenario)


def run_quantum_sweep(
    preset: str = "quick",
    quanta_ms: tuple = (25, 50, 100, 200),
    seed: int = 0,
) -> List[Dict[str, object]]:
    """Uncontrolled fft at 24 processes across scheduling quanta."""
    rows = []
    for quantum_ms in quanta_ms:
        machine = paper_machine()
        machine.quantum = units.ms(quantum_ms)
        t1 = _single_app_run("fft", 1, None, machine, preset, seed)
        t24 = _single_app_run("fft", 24, None, machine, preset, seed)
        rows.append(
            {
                "quantum_ms": quantum_ms,
                "t1_s": t1.apps["fft"].wall_time / 1e6,
                "t24_s": t24.apps["fft"].wall_time / 1e6,
                "speedup_24": t1.apps["fft"].wall_time / t24.apps["fft"].wall_time,
                "preemptions": t24.total_preemptions,
            }
        )
    return rows


def run_cache_sweep(
    preset: str = "quick",
    cold_ms: tuple = (0, 10, 20, 40, 80),
    seed: int = 0,
) -> List[Dict[str, object]]:
    """fft at 24 processes, off vs on, across cache reload penalties."""
    rows = []
    for penalty_ms in cold_ms:
        machine = paper_machine()
        machine.cache_cold_penalty = units.ms(penalty_ms)
        if penalty_ms == 0:
            machine.cache_affinity_enabled = False
        off = _single_app_run("fft", 24, None, machine, preset, seed)
        on = _single_app_run("fft", 24, "centralized", machine, preset, seed)
        rows.append(
            {
                "cold_penalty_ms": penalty_ms,
                "wall_off_s": off.apps["fft"].wall_time / 1e6,
                "wall_on_s": on.apps["fft"].wall_time / 1e6,
                "off_on_ratio": off.apps["fft"].wall_time
                / on.apps["fft"].wall_time,
            }
        )
    return rows


def run_poll_interval_sweep(
    preset: str = "quick",
    intervals_s: tuple = (1, 2, 6, 12, 24),
    seed: int = 0,
) -> List[Dict[str, object]]:
    """How the Section 5 polling period trades convergence vs overhead."""
    rows = []
    for interval_s in intervals_s:
        result = _single_app_run(
            "gauss",
            24,
            "centralized",
            paper_machine(),
            preset,
            seed,
            poll_interval=units.seconds(interval_s),
        )
        app = result.apps["gauss"]
        rows.append(
            {
                "poll_interval_s": interval_s,
                "wall_s": app.wall_time / 1e6,
                "polls": app.polls,
                "suspensions": app.suspensions,
                "server_updates": result.server_updates,
            }
        )
    return rows


def run_control_mode_comparison(
    preset: str = "quick", seed: int = 0
) -> List[Dict[str, object]]:
    """Centralized vs decentralized control vs none (Section 4.2)."""
    rows = []
    for control in (None, "centralized", "decentralized"):
        result = run_scenario(figure4_scenario(control, preset=preset, seed=seed))
        total_polls = sum(r.polls for r in result.apps.values())
        # In decentralized mode every poll is a full process-table scan by
        # every application; centralized mode scans once per server round.
        scans = result.server_updates if control == "centralized" else (
            total_polls if control == "decentralized" else 0
        )
        row: Dict[str, object] = {
            "control": control or "off",
            "makespan_s": result.makespan / 1e6,
            "polls": total_polls,
            "table_scans": scans,
        }
        for app_id, app_result in result.apps.items():
            row[f"wall_{app_id}_s"] = app_result.wall_time / 1e6
        rows.append(row)
    return rows


def run_idle_mode_comparison(
    preset: str = "quick", seed: int = 0
) -> List[Dict[str, object]]:
    """Busy-wait (1989-style) vs blocking threads package, gauss at 24."""
    rows = []
    for idle_spin in (True, False):
        for control in (None, "centralized"):
            result = _single_app_run(
                "gauss",
                24,
                control,
                paper_machine(),
                preset,
                seed,
                idle_spin=idle_spin,
            )
            rows.append(
                {
                    "package": "busy-wait" if idle_spin else "blocking",
                    "control": "on" if control else "off",
                    "wall_s": result.apps["gauss"].wall_time / 1e6,
                }
            )
    return rows


def run_machine_width_sweep(
    preset: str = "quick",
    widths: tuple = (8, 16, 32),
    seed: int = 0,
) -> List[Dict[str, object]]:
    """Where the crossover falls as the machine grows.

    The paper's crossover -- the process count beyond which the unmodified
    package collapses -- sits exactly at the processor count.  Sweeping the
    machine width checks that the crossover tracks it: the same application
    with 1.5x the machine's processors degrades on every width, and the
    controlled package holds its peak.
    """
    rows = []
    factory = app_factories(preset, seed)["fft"]
    interval = preset_poll_interval(preset)
    for width in widths:
        machine = paper_machine(n_processors=width)
        fitting = int(width)
        over = int(width * 1.5)

        def run(n, control):
            return run_scenario(
                Scenario(
                    apps=[AppSpec(factory, n)],
                    control=control,
                    machine=machine,
                    scheduler="decay",
                    poll_interval=interval,
                    server_interval=interval,
                    seed=seed,
                )
            ).apps["fft"].wall_time

        wall_fit = run(fitting, None)
        wall_over_off = run(over, None)
        wall_over_on = run(over, "centralized")
        rows.append(
            {
                "n_processors": width,
                "wall_at_width_s": wall_fit / 1e6,
                "wall_at_1.5x_off_s": wall_over_off / 1e6,
                "wall_at_1.5x_on_s": wall_over_on / 1e6,
                "off_degradation": wall_over_off / wall_fit,
                "on_degradation": wall_over_on / wall_fit,
            }
        )
    return rows


def _seed_stability_cell(args) -> Dict[str, object]:
    """Sweep cell: the off/on makespan pair for one seed."""
    preset, seed = args
    off = run_scenario(figure4_scenario(None, preset=preset, seed=seed))
    on = run_scenario(figure4_scenario("centralized", preset=preset, seed=seed))
    return {
        "seed": seed,
        "makespan_off_s": off.makespan / 1e6,
        "makespan_on_s": on.makespan / 1e6,
        "gain": off.makespan / on.makespan,
    }


def run_seed_stability(
    preset: str = "quick",
    seeds: tuple = (0, 1, 2, 3, 4),
    jobs: Optional[int] = None,
) -> List[Dict[str, object]]:
    """Robustness of the headline result across random seeds.

    The applications carry seeded per-task cost jitter; this replication
    shows the Figure 4 improvement is a property of the system, not of one
    lucky draw.  One :func:`parallel_map` cell per seed.
    """
    rows = parallel_map(
        _seed_stability_cell, [(preset, seed) for seed in seeds], jobs
    )
    gains = [row["gain"] for row in rows]
    rows.append(
        {
            "seed": "mean",
            "makespan_off_s": sum(r["makespan_off_s"] for r in rows) / len(rows),
            "makespan_on_s": sum(r["makespan_on_s"] for r in rows) / len(rows),
            "gain": sum(gains) / len(gains),
        }
    )
    return rows


def run_fairness_experiment(
    preset: str = "quick", seed: int = 0
) -> List[Dict[str, object]]:
    """Section 7's fairness problem and its processor-group fix.

    A well-behaved application ("polite") runs alongside a greedy one that
    refuses process control ("greedy", 16 processes, never suspends).

    * Under plain time sharing with control, the server sees the greedy
      application's 16 runnable processes as uncontrolled load and tells
      the polite application to shrink to almost nothing -- "an application
      that does not control its processes may get an unfair share of the
      processors".
    * Under the Section 7 space-partitioning scheduler with a
      partition-aware server, the polite application keeps its processor
      group and its fair share.
    """
    from repro.apps import UniformApp

    factories = app_factories(preset, seed)
    interval = preset_poll_interval(preset)
    # The greedy application must outlive the polite one, so the fairness
    # (or lack of it) is visible across the polite application's whole run.
    greedy_tasks = 1500 if preset == "quick" else 6000

    def greedy_factory():
        return UniformApp(
            app_id="greedy",
            n_tasks=greedy_tasks,
            task_cost=units.ms(100),
            seed=seed,
        )

    def scenario(scheduler: str, polite_control, partition_aware: bool):
        return Scenario(
            apps=[
                AppSpec(factories["fft"], 16, control=polite_control),
                AppSpec(greedy_factory, 16, control="off"),
            ],
            control="centralized",
            scheduler=scheduler,
            machine=paper_machine(),
            poll_interval=interval,
            server_interval=interval,
            server_partition_aware=partition_aware,
            seed=seed,
        )

    configs = [
        ("time-share, both greedy", scenario("decay", "off", False)),
        ("time-share, polite controlled", scenario("decay", "centralized", False)),
        ("partition, polite controlled", scenario("partition", "centralized", True)),
    ]
    rows = []
    for label, scn in configs:
        result = run_scenario(scn)
        polite = result.apps["fft"]
        greedy = result.apps["greedy"]
        # Average runnable processes the polite application kept during its
        # own lifetime: the direct measure of the share it was allowed.
        polite_runnable = result.runnable_per_app["fft"].time_average(
            polite.arrival, polite.finished_at
        )
        rows.append(
            {
                "configuration": label,
                "polite_wall_s": polite.wall_time / 1e6,
                "greedy_wall_s": greedy.wall_time / 1e6,
                "polite_avg_runnable": polite_runnable,
                "polite_suspensions": polite.suspensions,
            }
        )
    return rows


def format_rows(title: str, rows: List[Dict[str, object]]) -> str:
    """Render an ablation's row dicts as an aligned table."""
    if not rows:
        return f"{title}\n(no rows)"
    headers = list(rows[0].keys())
    table = format_table(
        headers, [[row.get(h, "") for h in headers] for row in rows]
    )
    return f"{title}\n{table}"


def main(preset: str = "quick") -> None:  # pragma: no cover - CLI glue
    print(format_rows("Scheduler comparison (Figure 4 mix)",
                      run_scheduler_comparison(preset)))
    print()
    print(format_rows("Quantum sweep (fft@24, uncontrolled)",
                      run_quantum_sweep(preset)))
    print()
    print(format_rows("Cache cold-penalty sweep (fft@24)",
                      run_cache_sweep(preset)))
    print()
    print(format_rows("Poll interval sweep (gauss@24, controlled)",
                      run_poll_interval_sweep(preset)))
    print()
    print(format_rows("Centralized vs decentralized control",
                      run_control_mode_comparison(preset)))
    print()
    print(format_rows("Busy-wait vs blocking package (gauss@24)",
                      run_idle_mode_comparison(preset)))
    print()
    print(format_rows("Fairness vs a greedy uncontrolled application "
                      "(Section 7)", run_fairness_experiment(preset)))
    print()
    print(format_rows("Machine width sweep (crossover tracks processor "
                      "count)", run_machine_width_sweep(preset)))
    print()
    print(format_rows("Seed stability (Figure 4 mix, 5 seeds)",
                      run_seed_stability(preset)))
