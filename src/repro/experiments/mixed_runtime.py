"""Mixed runtimes on one machine: the compliance policy's case.

Four tenants with four different relationships to process control share
one machine:

* ``tq`` -- a task-queue tenant.  It polls on every queue transition, so
  it adopts a shrunk target within a poll interval: the *prompt
  complier*.
* ``fj`` -- a fork-join tenant with long phases.  Its runtime only
  reaches a safe suspension point at phase barriers, so a shrunk target
  sits unadopted for most of a phase while the extra workers keep
  running: the *slow complier*.  It is compliant -- it always conforms
  at the next barrier -- just structurally late.
* ``pipe`` -- a dedicated-stage-thread pipeline.  It can never shrink
  below one worker per stage, a *structural floor* it reports rather
  than a transient overshoot.
* ``greedy0``/``greedy1``/``greedy2`` -- three staggered waves of an
  uncontrolled tenant (``control="off"``): they never register and never
  release anything, the zero-compliance end of the continuum.  Each
  arriving wave forces the server to shrink everyone's targets; each
  departing wave lets it grow them again, so the run exercises repeated
  shrink/adopt cycles rather than a single one.

The sweep runs this mix under ``equal`` / ``demand`` / ``slo`` /
``compliance`` allocation.  Equipartition keeps re-granting processors
by its own arithmetic while the slow complier's unadopted workers and
the greedy waves are still running -- the machine spends long stretches
overcommitted, everyone time-slices, and the grants are phantoms.  The
compliance policy reads adoption-lag and overshoot telemetry off the
control board, cross-checks it against the kernel census (a mid-phase
holdout never shows up in its own barrier-sampled report), charges
residual overshoot as uncontrolled load, discounts a tenant's
water-filling weight while it sits on unreleased processors, and
reserves the pipeline's floor.  The pinned metric is **overcommitted
processor-time**: the time-integral of runnable load above machine
capacity.  Under ``compliance`` it must come in below ``equal`` -- the
policy keeps the machine at capacity instead of promising processors
that are still occupied.

The compliance arm passes a policy *instance* so its lag grace matches
this experiment's poll cadence (the registry default is sized for
wall-clock services, not a millisecond-scale simulation).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.apps.pipeline import PipelineApp
from repro.apps.synthetic import BarrierHeavyApp, UniformApp
from repro.core.allocation import make_policy
from repro.experiments.parallel import parallel_map
from repro.machine import MachineConfig
from repro.metrics import format_table
from repro.sim import units
from repro.workloads import AppSpec, Scenario, run_scenario

#: Allocation arms the sweep compares over the same four-tenant mix.
SWEEP_ARMS: Tuple[str, ...] = ("equal", "demand", "slo", "compliance")

#: Adoption-lag grace for the compliance arm, sized to this experiment's
#: 10 ms poll interval: the task-queue tenant adopts within a poll or
#: two, the fork-join tenant's lag runs to a phase length (tens of ms).
LAG_GRACE = units.ms(25)

#: Per-preset workload sizes: (tq tasks, fj phases, pipe items, tasks
#: per greedy wave).  Costs are fixed; the paper preset doubles the work.
_SIZES: Dict[str, Tuple[int, int, int, int]] = {
    "quick": (150, 5, 40, 24),
    "paper": (300, 10, 80, 48),
}

#: Arrival times of the three uncontrolled waves.  Staggered so shrink
#: targets land mid-phase for the fork-join tenant more than once.
_WAVE_ARRIVALS: Tuple[int, ...] = (units.ms(50), units.ms(170), units.ms(290))


def mixed_runtime_scenario(arm: str, preset: str = "quick", seed: int = 0) -> Scenario:
    """The four-tenant mixed-runtime scenario under one allocation arm.

    Exposed separately so tests can replay the exact runs the experiment
    measures (the acceptance test pins the quick-preset digests).
    """
    tq_tasks, fj_phases, pipe_items, wave_tasks = _SIZES.get(
        preset, _SIZES["quick"]
    )
    machine = MachineConfig(n_processors=12)

    def tq() -> UniformApp:
        return UniformApp(
            "tq", n_tasks=tq_tasks, task_cost=units.ms(8), seed=seed
        )

    def fj() -> BarrierHeavyApp:
        # Eight 40 ms tasks per phase: at a shrunk width a phase runs
        # ~100+ ms, so a target posted mid-phase waits most of that
        # before the barrier adopts it -- the slow-complier shape.
        return BarrierHeavyApp(
            "fj",
            phases=fj_phases,
            tasks_per_phase=8,
            task_cost=units.ms(40),
            seed=seed + 1,
        )

    def pipe() -> PipelineApp:
        return PipelineApp(
            app_id="pipe",
            n_items=pipe_items,
            stage_costs=(units.ms(4), units.ms(6), units.ms(4)),
            seed=seed + 2,
        )

    def wave(i: int) -> AppSpec:
        def build(i: int = i) -> UniformApp:
            return UniformApp(
                f"greedy{i}",
                n_tasks=wave_tasks,
                task_cost=units.ms(6),
                seed=seed + 3 + i,
            )

        return AppSpec(
            build, n_processes=4, arrival=_WAVE_ARRIVALS[i], control="off"
        )

    if arm == "compliance":
        # Instance, not name: pin the lag grace to the simulation scale.
        policy = make_policy("compliance", lag_grace=LAG_GRACE)
    else:
        policy = arm
    return Scenario(
        apps=[
            AppSpec(tq, n_processes=8),
            AppSpec(fj, n_processes=6, runtime="forkjoin"),
            AppSpec(pipe, n_processes=5, runtime="pipeline"),
            wave(0),
            wave(1),
            wave(2),
        ],
        control="centralized",
        scheduler="fifo",
        machine=machine,
        server_interval=units.ms(10),
        poll_interval=units.ms(10),
        policy=policy,
        seed=seed,
        max_time=units.seconds(120),
    )


@dataclass
class MixedRuntimeCell:
    """One arm's outcome, reduced to the compliance figures."""

    arm: str
    makespan_ms: float
    tq_done_ms: float
    fj_done_ms: float
    pipe_done_ms: float
    adoptions: int
    lag_max_ms: float
    overshoot_peak: float
    suspensions: int
    #: Time-integral of runnable load above machine capacity, in
    #: processor-milliseconds -- the experiment's pinned metric.
    overcommit_cpu_ms: float


def overcommitted_cpu_ms(result, n_processors: int) -> float:
    """Processor-milliseconds the machine spent promised-but-occupied.

    Integrates ``max(0, runnable_total - n_processors)`` over the run:
    every unit of area is a runnable process with no processor to run
    on, i.e. time-slicing the paper's process control exists to avoid.
    """
    pts = result.runnable_total.points
    return (
        sum(
            max(0.0, load - n_processors) * (t1 - t0)
            for (t0, load), (t1, _) in zip(pts, pts[1:])
        )
        / 1e3
    )


def _mixed_runtime_cell(args) -> MixedRuntimeCell:
    """Sweep cell (module-level so it pickles for the process pool)."""
    arm, preset, seed = args
    scenario = mixed_runtime_scenario(arm, preset, seed)
    result = run_scenario(scenario)
    apps = result.apps
    return MixedRuntimeCell(
        arm=arm,
        makespan_ms=result.sim_time / 1e3,
        tq_done_ms=apps["tq"].finished_at / 1e3,
        fj_done_ms=apps["fj"].finished_at / 1e3,
        pipe_done_ms=apps["pipe"].finished_at / 1e3,
        adoptions=sum(app.adoptions for app in apps.values()),
        lag_max_ms=max(app.adoption_lag_max for app in apps.values()) / 1e3,
        overshoot_peak=max(app.overshoot_peak for app in apps.values()),
        suspensions=sum(app.suspensions for app in apps.values()),
        overcommit_cpu_ms=overcommitted_cpu_ms(
            result, scenario.machine.n_processors
        ),
    )


def run_mixed_runtime(
    preset: str = "quick",
    seed: int = 0,
    jobs: Optional[int] = None,
    arms: Tuple[str, ...] = SWEEP_ARMS,
) -> List[MixedRuntimeCell]:
    """Run the mix once per allocation arm; cells fan out."""
    return parallel_map(
        _mixed_runtime_cell, [(arm, preset, seed) for arm in arms], jobs
    )


def format_mixed_runtime(cells: List[MixedRuntimeCell]) -> str:
    headers = [
        "arm",
        "overcommit_cpu_ms",
        "makespan_ms",
        "tq_done_ms",
        "fj_done_ms",
        "pipe_done_ms",
        "adoptions",
        "lag_max_ms",
        "suspensions",
    ]
    rows = [
        [
            cell.arm,
            f"{cell.overcommit_cpu_ms:.1f}",
            f"{cell.makespan_ms:.0f}",
            f"{cell.tq_done_ms:.0f}",
            f"{cell.fj_done_ms:.0f}",
            f"{cell.pipe_done_ms:.0f}",
            cell.adoptions,
            f"{cell.lag_max_ms:.1f}",
            cell.suspensions,
        ]
        for cell in cells
    ]
    lines = [
        "Mixed runtimes (task-queue + fork-join + pipeline + uncontrolled)"
        " on 12 CPUs",
        format_table(headers, rows),
    ]
    by_arm = {cell.arm: cell for cell in cells}
    equal, compliance = by_arm.get("equal"), by_arm.get("compliance")
    if equal and compliance:
        saved = 1 - compliance.overcommit_cpu_ms / equal.overcommit_cpu_ms
        lines.append(
            f"\novercommit: compliance {compliance.overcommit_cpu_ms:.1f}"
            f" cpu-ms vs equal {equal.overcommit_cpu_ms:.1f} cpu-ms"
            f" ({100.0 * saved:.0f}% less time-slicing above capacity)"
        )
    return "\n".join(lines)


def main(preset: str = "paper") -> None:  # pragma: no cover - CLI glue
    print(format_mixed_runtime(run_mixed_runtime(preset)))
