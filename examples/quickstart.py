#!/usr/bin/env python3
"""Quickstart: dynamic process control in 40 lines.

Two parallel applications (a matrix multiply and an FFT) each start 24
worker processes on a simulated 16-processor shared-memory machine --
exactly the overload the paper's Figure 1 shows.  We run the workload
twice: once with the stock threads package, once with the modified package
polling the centralized process-control server, and compare wall times.

Run:  python examples/quickstart.py
"""

from repro import AppSpec, Scenario, run_scenario
from repro.apps import FFT, MatMul
from repro.experiments import paper_machine
from repro.metrics import format_table
from repro.sim import units


def build_scenario(control):
    """24 processes per application on 16 processors."""
    return Scenario(
        apps=[
            AppSpec(lambda: MatMul(n_tasks=400), n_processes=24),
            AppSpec(lambda: FFT(phases=8, tasks_per_phase=32), n_processes=24),
        ],
        control=control,  # None = stock package, "centralized" = the paper
        machine=paper_machine(),
        scheduler="decay",
        poll_interval=units.seconds(2),
        server_interval=units.seconds(2),
    )


def main():
    print("Running 2 x 24 processes on 16 simulated processors...\n")
    uncontrolled = run_scenario(build_scenario(None))
    controlled = run_scenario(build_scenario("centralized"))

    rows = []
    for app in ("matmul", "fft"):
        off = uncontrolled.apps[app]
        on = controlled.apps[app]
        rows.append(
            (
                app,
                f"{off.wall_time / 1e6:.1f}",
                f"{on.wall_time / 1e6:.1f}",
                f"{off.wall_time / on.wall_time:.2f}x",
                on.suspensions,
            )
        )
    print(
        format_table(
            ["app", "uncontrolled (s)", "controlled (s)", "gain", "suspensions"],
            rows,
        )
    )
    print(
        f"\npeak runnable processes: {int(uncontrolled.runnable_total.maximum())}"
        f" (uncontrolled) vs {int(controlled.runnable_total.maximum())}"
        " (controlled, converging to 16)"
    )
    print(f"server updates: {controlled.server_updates}")


if __name__ == "__main__":
    main()
