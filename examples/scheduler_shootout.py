#!/usr/bin/env python3
"""Every scheduler the paper discusses, head to head.

Section 3 reviews coscheduling (Ousterhout), spinlock no-preempt flags
(Zahorjan et al.), process groups (Edler et al.), and cache-affinity
scheduling (Lazowska & Squillante); Section 7 sketches space partitioning.
This example runs the same multiprogrammed workload under each kernel
policy, with and without the paper's user-level process control, and
prints the makespans -- showing that process control composes with (and
usually beats) each kernel-side alternative.

Run:  python examples/scheduler_shootout.py
"""

from repro.experiments.ablations import run_scheduler_comparison
from repro.metrics import format_table


def main():
    rows = run_scheduler_comparison(preset="quick")
    table_rows = [
        (
            row["scheduler"],
            row["control"],
            f"{row['makespan_s']:.1f}",
            f"{row['spin_s']:.1f}",
            row["cs_preemptions"],
        )
        for row in rows
    ]
    print("Figure-4-style workload (fft + gauss + matmul, 16 procs each):\n")
    print(
        format_table(
            ["scheduler", "control", "makespan (s)", "spin waste (s)",
             "cs-preemptions"],
            table_rows,
        )
    )
    best = min(rows, key=lambda r: r["makespan_s"])
    print(
        f"\nbest combination: {best['scheduler']} + control "
        f"{best['control']} ({best['makespan_s']:.1f}s)"
    )
    print(
        "\nNotes: coscheduling fixes spin waste but thrashes caches every "
        "epoch (the paper's\nSection 3 criticism).  Process control improves "
        "every time-sharing scheduler here;\nthe one exception is space "
        "partitioning, where kernel-side partitions and user-side\nprocess "
        "targets fight over the same decision -- the paper's Section 7 "
        "design gives\npartitioning the uncontrolled applications and "
        "process control the rest."
    )


if __name__ == "__main__":
    main()
