#!/usr/bin/env python3
"""A multiprogrammed machine over time (the paper's Figures 4 and 5).

Three applications -- fft, gauss, matmul -- arrive a few seconds apart,
each greedily starting 16 processes on a 16-processor machine.  We plot
(in ASCII) the number of runnable processes over time with process control
on and off, and report per-application wall times.

Run:  python examples/multiprogrammed_timesharing.py
"""

from repro.experiments.figure4 import figure4_scenario
from repro.metrics import format_table
from repro.sim import units
from repro.workloads import run_scenario

PRESET = "quick"  # "paper" for the full-size run (slower)


def sparkline(series, sim_time, width=72, peak=48):
    """Render a step series as one ASCII row per 8 processes of height."""
    step = max(sim_time // width, 1)
    samples = [series.value_at(t) for t in range(0, sim_time, step)]
    bands = []
    for level in range(peak, 0, -8):
        row = "".join(
            "#" if value >= level else ("." if level <= 16 else " ")
            for value in samples
        )
        bands.append(f"{level:3d} |{row}")
    axis = "    +" + "-" * len(samples)
    return "\n".join(bands + [axis])


def main():
    results = {}
    for label, control in (("OFF", None), ("ON", "centralized")):
        results[label] = run_scenario(figure4_scenario(control, preset=PRESET))

    rows = []
    for app in ("fft", "gauss", "matmul"):
        off = results["OFF"].apps[app]
        on = results["ON"].apps[app]
        rows.append(
            (
                app,
                f"{off.arrival / 1e6:.0f}",
                f"{off.wall_time / 1e6:.1f}",
                f"{on.wall_time / 1e6:.1f}",
                f"{off.wall_time / on.wall_time:.2f}x",
            )
        )
    print(
        format_table(
            ["app", "arrival (s)", "wall OFF (s)", "wall ON (s)", "gain"], rows
        )
    )

    for label in ("OFF", "ON"):
        result = results[label]
        print(f"\nrunnable processes over time, control {label} "
              f"(16 processors; '.' marks the <=16 zone):")
        print(sparkline(result.runnable_total, result.sim_time))

    on = results["ON"]
    print(
        "\nWith control ON the total converges back to ~16 within one poll "
        "interval of each arrival;\nsuspensions per app: "
        + ", ".join(f"{a}={r.suspensions}" for a, r in on.apps.items())
    )


if __name__ == "__main__":
    main()
