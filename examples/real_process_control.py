#!/usr/bin/env python3
"""Process control on REAL operating-system processes.

The simulation reproduces the paper's numbers; this demo runs its
*mechanism* live.  Two pools of CPU-bound worker processes (think: two
parallel applications) share this machine.  A central controller
partitions the host's CPUs between them with the same policy function the
simulated server uses; each pool suspends and resumes its own workers at
task boundaries -- the paper's safe suspension points.

Run:  python examples/real_process_control.py
"""

import os
import time

from repro.realsys import CentralController, ControlledPool, TimelineSampler
from repro.realsys import tasks


def main():
    n_cpus = os.cpu_count() or 2
    # Start each application greedy -- more workers than its fair share --
    # so the suspension machinery has something to do even on small hosts.
    n_workers = max(4, n_cpus)
    print(f"host CPUs: {n_cpus}; each application starts {n_workers} workers")

    controller = CentralController(interval=0.1, n_cpus=n_cpus)
    fft_pool = ControlledPool(n_workers=n_workers, name="fft")
    sort_pool = ControlledPool(n_workers=n_workers, name="sort")
    sampler = TimelineSampler(interval=0.05)
    sampler.watch(fft_pool)
    sampler.watch(sort_pool)
    sampler.start()

    fft_pool.start()
    print(f"\n[t=0.0s] 'fft' starts with {n_workers} workers")
    controller.register(fft_pool)
    controller.start()
    print(f"         controller gives it the whole machine: "
          f"target={fft_pool.target}")

    fft_ids = fft_pool.submit_many([(tasks.burn_cpu, (200_000,))] * 64)

    time.sleep(0.5)
    sort_pool.start()
    controller.register(sort_pool)
    print(f"\n[t=0.5s] 'sort' arrives with {n_cpus} workers")
    print(
        "         controller repartitions: "
        f"fft target={fft_pool.target}, sort target={sort_pool.target}"
    )
    sort_ids = sort_pool.submit_many([(tasks.matmul_block, (40,))] * 24)

    time.sleep(0.7)
    print(
        f"\n[t=1.2s] runnable workers now: fft={fft_pool.runnable_workers}, "
        f"sort={sort_pool.runnable_workers} "
        "(suspended at task boundaries, not mid-task)"
    )

    sort_results = sort_pool.join_results(len(sort_ids), timeout=120.0)
    controller.unregister(sort_pool)
    print(
        f"\n'sort' finished ({len(sort_results)} tasks); controller returns "
        f"the machine: fft target={fft_pool.target}"
    )

    fft_results = fft_pool.join_results(len(fft_ids), timeout=120.0)
    print(f"'fft' finished ({len(fft_results)} tasks)")
    print(f"\ncontroller made {controller.updates} partition decisions")

    sampler.stop()
    print("\nrunnable workers over time (the live Figure 5):")
    print(sampler.render(width=24))

    controller.stop()
    fft_pool.shutdown()
    sort_pool.shutdown()
    print("clean shutdown. This is the paper's scheme on live processes.")


if __name__ == "__main__":
    main()
