"""Legacy setup shim.

The offline environment ships a setuptools without wheel support, so
``pip install -e .`` falls back to the legacy ``setup.py develop`` path,
which needs this file.  All metadata lives in ``pyproject.toml``.
"""

from setuptools import setup

setup()
