"""Smoke tests: every shipped example runs to completion and prints its
headline output.  These are the repository's user-facing entry points, so
they are part of the test gate."""

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parent.parent / "examples"


def run_example(name: str, timeout: float = 300.0) -> str:
    result = subprocess.run(
        [sys.executable, str(EXAMPLES / name)],
        capture_output=True,
        text=True,
        timeout=timeout,
    )
    assert result.returncode == 0, (
        f"{name} failed:\nstdout:\n{result.stdout}\nstderr:\n{result.stderr}"
    )
    return result.stdout


def test_quickstart():
    out = run_example("quickstart.py")
    assert "uncontrolled (s)" in out
    assert "matmul" in out and "fft" in out
    assert "server updates" in out


def test_multiprogrammed_timesharing():
    out = run_example("multiprogrammed_timesharing.py")
    assert "wall OFF (s)" in out
    assert "control OFF" in out and "control ON" in out
    assert "#" in out  # the ASCII plot rendered


def test_scheduler_shootout():
    out = run_example("scheduler_shootout.py")
    for scheduler in ("fifo", "decay", "coscheduling", "affinity", "partition"):
        assert scheduler in out
    assert "best combination" in out


def test_real_process_control():
    out = run_example("real_process_control.py")
    assert "controller" in out
    assert "clean shutdown" in out
    assert "runnable workers over time" in out
