"""Hypothesis property tests on the threads package.

Generated phased applications with arbitrary shapes, worker counts, and
control targets must always (a) execute every task exactly once, (b)
terminate cleanly with no suspended workers left behind, and (c) be
deterministic.
"""

from typing import List

from hypothesis import given, settings, strategies as st

from repro.apps.base import PhasedApplication
from repro.kernel.ipc import ControlBoard
from repro.sim import units
from repro.threads import Task, ThreadsPackage, ThreadsPackageConfig, compute_task

from tests.conftest import make_kernel


class GeneratedApp(PhasedApplication):
    """A phased application built from a generated shape."""

    def __init__(self, shape: List[int], task_cost: int):
        super().__init__("genapp")
        self.shape = shape
        self.task_cost = task_cost

    @property
    def n_phases(self) -> int:
        return len(self.shape)

    def phase_tasks(self, phase: int) -> List[Task]:
        return [
            compute_task(f"p{phase}.t{i}", self.task_cost, phase=phase)
            for i in range(self.shape[phase])
        ]

    def total_work(self) -> int:
        return sum(self.shape) * self.task_cost


app_shapes = st.lists(st.integers(min_value=1, max_value=6), min_size=1, max_size=5)


@given(
    shape=app_shapes,
    n_workers=st.integers(min_value=1, max_value=6),
    idle_spin=st.booleans(),
)
@settings(max_examples=30, deadline=None)
def test_every_task_runs_exactly_once(shape, n_workers, idle_spin):
    kernel = make_kernel(n_processors=2)
    app = GeneratedApp(shape, task_cost=units.ms(1))
    package = ThreadsPackage(
        kernel, app, n_workers, ThreadsPackageConfig(idle_spin=idle_spin)
    )
    package.start()
    kernel.run_until_quiescent(max_events=2_000_000)
    assert package.finished
    assert package.tasks_completed == sum(shape)
    assert not package.control.suspended
    for pid in package.worker_pids:
        assert not kernel.processes[pid].alive


@given(
    shape=app_shapes,
    n_workers=st.integers(min_value=2, max_value=6),
    target=st.integers(min_value=1, max_value=6),
)
@settings(max_examples=30, deadline=None)
def test_control_never_loses_tasks(shape, n_workers, target):
    """Whatever the server demands, all work completes and no worker is
    left suspended."""
    kernel = make_kernel(n_processors=2)
    board = ControlBoard()
    board.post({"genapp": target}, now=0)
    app = GeneratedApp(shape, task_cost=units.ms(1))
    package = ThreadsPackage(
        kernel,
        app,
        n_workers,
        ThreadsPackageConfig(
            control="centralized", board=board, poll_interval=units.ms(5)
        ),
    )
    package.start()
    kernel.run_until_quiescent(max_events=2_000_000)
    assert package.finished
    assert package.tasks_completed == sum(shape)
    assert not package.control.suspended
    if target < n_workers:
        assert package.control.suspensions >= 1 or sum(shape) <= 2


@given(shape=app_shapes, n_workers=st.integers(min_value=1, max_value=4))
@settings(max_examples=15, deadline=None)
def test_package_runs_are_deterministic(shape, n_workers):
    def run():
        kernel = make_kernel(n_processors=2)
        app = GeneratedApp(shape, task_cost=units.ms(1))
        package = ThreadsPackage(kernel, app, n_workers)
        package.start()
        kernel.run_until_quiescent(max_events=2_000_000)
        return package.wall_time

    assert run() == run()
