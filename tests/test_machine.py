"""Unit tests for the machine layer: config validation, cache model,
processor accounting."""

import pytest

from repro.machine import CacheModel, Machine, MachineConfig, Processor


class TestMachineConfig:
    def test_defaults_are_paper_like(self):
        config = MachineConfig()
        assert config.n_processors == 16
        assert config.quantum == 100_000

    def test_validation(self):
        with pytest.raises(ValueError):
            MachineConfig(n_processors=0)
        with pytest.raises(ValueError):
            MachineConfig(quantum=0)
        with pytest.raises(ValueError):
            MachineConfig(context_switch_cost=-1)
        with pytest.raises(ValueError):
            MachineConfig(cache_warmup_time=0)


class TestCacheModel:
    def make(self, **kwargs):
        defaults = dict(
            n_processors=2, cold_penalty=1000, warmup_time=100, purge_time=200
        )
        defaults.update(kwargs)
        return CacheModel(**defaults)

    def test_cold_process_pays_full_penalty(self):
        cache = self.make()
        assert cache.reload_penalty(0, pid=1) == 1000

    def test_warm_process_pays_nothing(self):
        cache = self.make()
        cache.note_execution(0, pid=1, ran_for=100)  # fully warm
        assert cache.warmth(0, 1) == 1.0
        assert cache.reload_penalty(0, 1) == 0

    def test_partial_warmth_scales_penalty(self):
        cache = self.make()
        cache.note_execution(0, pid=1, ran_for=50)  # half warm
        assert cache.warmth(0, 1) == pytest.approx(0.5)
        assert cache.reload_penalty(0, 1) == 500

    def test_other_processes_purge_warmth(self):
        cache = self.make()
        cache.note_execution(0, pid=1, ran_for=100)
        cache.note_execution(0, pid=2, ran_for=100)  # purges half of pid 1
        assert cache.warmth(0, 1) == pytest.approx(0.5)
        cache.note_execution(0, pid=2, ran_for=100)
        assert cache.warmth(0, 1) == pytest.approx(0.0)

    def test_warmth_is_per_processor(self):
        cache = self.make()
        cache.note_execution(0, pid=1, ran_for=100)
        assert cache.warmth(1, 1) == 0.0

    def test_disabled_cache_is_free(self):
        cache = self.make(enabled=False)
        assert cache.reload_penalty(0, 1) == 0
        cache.note_execution(0, 1, 100)
        assert cache.warmth(0, 1) == 1.0

    def test_evict_process(self):
        cache = self.make()
        cache.note_execution(0, pid=1, ran_for=100)
        cache.evict_process(1)
        assert cache.warmth(0, 1) == 0.0

    def test_warmest_cpu(self):
        cache = self.make()
        assert cache.warmest_cpu(1) is None
        cache.note_execution(0, pid=1, ran_for=30)
        cache.note_execution(1, pid=1, ran_for=60)
        assert cache.warmest_cpu(1) == 1

    def test_fully_purged_processes_are_dropped(self):
        cache = self.make()
        cache.note_execution(0, pid=1, ran_for=100)
        cache.note_execution(0, pid=2, ran_for=1000)
        assert 1 not in cache.resident_processes(0)

    def test_validation(self):
        with pytest.raises(ValueError):
            self.make(n_processors=0)
        with pytest.raises(ValueError):
            self.make(warmup_time=0)
        with pytest.raises(ValueError):
            self.make(cold_penalty=-5)


class TestProcessorAccounting:
    def test_buckets_sum_to_elapsed(self):
        cpu = Processor(0)
        cpu.account(10, "idle")
        cpu.account(30, "overhead")
        cpu.account(100, "busy")
        cpu.account(130, "spin")
        assert cpu.idle_time == 10
        assert cpu.overhead_time == 20
        assert cpu.busy_time == 70
        assert cpu.spin_time == 30
        assert cpu.total_accounted() == 130

    def test_time_backwards_rejected(self):
        cpu = Processor(0)
        cpu.account(10, "busy")
        with pytest.raises(ValueError):
            cpu.account(5, "busy")

    def test_unknown_kind_rejected(self):
        cpu = Processor(0)
        with pytest.raises(ValueError):
            cpu.account(10, "sleeping")


class TestMachine:
    def test_machine_builds_processors(self):
        machine = Machine(MachineConfig(n_processors=4))
        assert machine.n_processors == 4
        assert len(machine.processors) == 4
        assert machine.idle_processors() == machine.processors
        assert machine.busy_processors() == []

    def test_utilization_summary_aggregates(self):
        machine = Machine(MachineConfig(n_processors=2))
        machine.processors[0].account(10, "busy")
        machine.processors[1].account(10, "idle")
        summary = machine.utilization_summary()
        assert summary == {"busy": 10, "spin": 0, "overhead": 0, "idle": 10}
