"""Per-lock contention telemetry, Malthusian concurrency restriction, and
the sync edges the restriction machinery has to survive: killed holders
and waiters, cpu hot-plug under a contended spin barrier, and a condvar
broadcast racing a process-control suspension safe point."""

import pytest

from repro.kernel import syscalls as sc
from repro.kernel.process import ProcessState
from repro.scenarios.catalog import build_catalog
from repro.sim import TraceLog, dispatch_digest, units
from repro.sync import (
    ConditionVariable,
    LockStats,
    Mutex,
    SpinBarrier,
    SpinLock,
    spin_barrier_wait,
)
from repro.workloads.locks import lock_saturation_scenario
from repro.workloads.runner import run_scenario

from tests.conftest import make_kernel


def _cycle(lock, acquire, release, work=100, order=None, tag=None):
    def program():
        yield acquire(lock)
        if order is not None:
            order.append(tag)
        yield sc.Compute(work)
        yield release(lock)

    return program


def spin_cycle(lock, **kw):
    return _cycle(lock, sc.SpinAcquire, sc.SpinRelease, **kw)


def mutex_cycle(lock, **kw):
    return _cycle(lock, sc.MutexAcquire, sc.MutexRelease, **kw)


class TestTelemetryUnit:
    def test_negative_penalty_rejected(self):
        with pytest.raises(ValueError, match="contention_penalty"):
            SpinLock("l", contention_penalty=-1)

    def test_zero_admission_rejected(self):
        with pytest.raises(ValueError, match="admission"):
            SpinLock("l", admission=0)
        with pytest.raises(ValueError, match="admission"):
            Mutex("m", admission=0)

    def test_handoff_charge_scales_with_remaining_spinners(self):
        lock = SpinLock("l", handoff_cost=3, contention_penalty=40)
        assert lock.handoff_charge() == 3  # nobody waiting
        lock.spinners.extend([object(), object(), object()])
        # The grantee leaves the spin set; two others keep storming.
        assert lock.handoff_charge() == 3 + 40 * 2

    def test_ownership_guards_reject_impossible_transitions(self):
        spin = SpinLock("l")
        spin.note_acquired(1, now=0, contended=False)
        with pytest.raises(RuntimeError, match="while held"):
            spin.note_acquired(2, now=5, contended=True)
        with pytest.raises(RuntimeError, match="release by"):
            spin.note_released(2, now=5)
        mutex = Mutex("m")
        mutex.note_acquired(1, contended=False, now=0)
        with pytest.raises(RuntimeError, match="while held"):
            mutex.note_acquired(2, contended=True, now=5)
        with pytest.raises(RuntimeError, match="release by"):
            mutex.note_released(2)

    def test_release_interval_ewma_tracks_service_rate(self):
        lock = SpinLock("l")
        lock.note_acquired(1, now=0, contended=False)
        lock.note_released(1, now=100)
        assert lock.service_interval_ewma is None  # one release, no interval
        lock.note_acquired(2, now=100, contended=False)
        lock.note_released(2, now=300)
        assert lock.service_interval_ewma == pytest.approx(200.0)
        lock.note_acquired(3, now=300, contended=False)
        lock.note_released(3, now=700)
        assert lock.service_interval_ewma == pytest.approx(
            0.25 * 400 + 0.75 * 200
        )


class TestSpinRestriction:
    def test_excess_spinners_are_culled_and_readmitted(self):
        trace = TraceLog(categories={"lock.cull", "lock.readmit"})
        kernel = make_kernel(n_processors=4, context_switch_cost=0, trace=trace)
        lock = SpinLock("l", admission=1)

        def contender(delay):
            yield sc.Compute(delay)
            yield from spin_cycle(lock, work=units.ms(1))()

        kernel.spawn(spin_cycle(lock, work=units.ms(1))(), name="h")
        for i in range(3):
            kernel.spawn(contender(10 * (i + 1)), name=f"c{i}")
        kernel.run_until_quiescent()

        assert lock.acquisitions == 4
        assert not lock.held and not lock.spinners and not lock.culled
        # One contender spins (the admission), the other two passivate.
        assert lock.passivations == 2
        assert lock.readmissions == 2
        assert lock.culled_peak == 2
        assert not lock.wait_started  # every entry drained on acquire
        assert len(trace.records("lock.cull")) == lock.passivations
        readmits = trace.records("lock.readmit")
        assert len(readmits) == lock.readmissions
        # A readmitted spinlock waiter wakes and retries its acquire.
        assert all(r.data["direct"] is False for r in readmits)

    def test_killed_spinner_turns_readmission_into_direct_grant(self):
        # The admitted spinner dies; the release then finds nobody
        # spinning, and the culled waiter is granted the free lock
        # directly (no barging window).
        trace = TraceLog(categories={"lock.readmit"})
        kernel = make_kernel(n_processors=3, context_switch_cost=0, trace=trace)
        lock = SpinLock("l", admission=1)

        def contender(delay):
            yield sc.Compute(delay)
            yield from spin_cycle(lock, work=200)()

        kernel.spawn(spin_cycle(lock, work=units.ms(2))(), name="h")
        spinner = kernel.spawn(contender(10), name="a")
        kernel.spawn(contender(20), name="b")
        kernel.run_until_quiescent(done=lambda: len(lock.culled) == 1)
        assert kernel.kill(spinner.pid)
        assert not lock.spinners  # settled out of the spin set on exit
        kernel.run_until_quiescent()

        assert lock.acquisitions == 2  # holder + the culled waiter
        assert lock.passivations == 1
        assert lock.readmissions == 1
        readmits = trace.records("lock.readmit")
        assert len(readmits) == 1
        assert readmits[0].data["direct"] is True
        assert not lock.held and not lock.culled and not lock.wait_started

    def test_killed_culled_waiter_never_readmits(self):
        kernel = make_kernel(n_processors=3, context_switch_cost=0)
        lock = SpinLock("l", admission=1)

        def contender(delay):
            yield sc.Compute(delay)
            yield from spin_cycle(lock, work=100)()

        kernel.spawn(spin_cycle(lock, work=units.ms(2))(), name="h")
        kernel.spawn(contender(10), name="a")  # the admitted spinner
        victim = kernel.spawn(contender(20), name="b")  # culled
        kernel.run_until_quiescent(done=lambda: len(lock.culled) == 1)
        assert victim.state is ProcessState.BLOCKED
        assert kernel.kill(victim.pid)
        assert not lock.culled  # detached immediately, not on next release
        assert victim.pid not in lock.wait_started
        kernel.run_until_quiescent()
        assert lock.acquisitions == 2  # holder + the admitted spinner
        assert lock.readmissions == 0
        assert not lock.held and not lock.wait_started

    def test_contention_telemetry_on_the_default_path(self):
        # No admission, no penalty: behaviour is the legacy lock, but the
        # wait histogram and hand-off latency still record.
        kernel = make_kernel(n_processors=3, context_switch_cost=0)
        lock = SpinLock("l")

        def contender(delay):
            yield sc.Compute(delay)
            yield from spin_cycle(lock, work=units.ms(1))()

        kernel.spawn(spin_cycle(lock, work=units.ms(1))(), name="h")
        kernel.spawn(contender(10), name="c1")
        kernel.spawn(contender(20), name="c2")
        kernel.run_until_quiescent()

        assert lock.acquisitions == 3
        assert lock.handoffs == 2
        assert lock.total_wait_time > 0
        # c2 waited through most of two back-to-back critical sections.
        assert lock.handoff_latency_max >= units.ms(1)
        # Holder saw an empty queue, c1 observed depth 0, c2 depth 1.
        assert lock.wait_hist == {0: 2, 1: 1}
        assert lock.passivations == 0 and lock.culled_peak == 0


class TestMutexRestriction:
    def test_culled_mutex_waiters_readmit_lifo(self):
        # Admission 1: the first waiter queues, later ones passivate.
        # Readmission drains the culled set LIFO (the Malthusian
        # cache-warmth rule), so arrival order a,b,c acquires as a,c,b.
        kernel = make_kernel(n_processors=4, context_switch_cost=0)
        lock = Mutex("m", admission=1)
        order = []

        def contender(tag, delay):
            yield sc.Compute(delay)
            yield from mutex_cycle(lock, work=units.ms(1), order=order, tag=tag)()

        kernel.spawn(
            mutex_cycle(lock, work=units.ms(1), order=order, tag="h")(), name="h"
        )
        for i, tag in enumerate(("a", "b", "c")):
            kernel.spawn(contender(tag, 10 * (i + 1)), name=tag)
        kernel.run_until_quiescent()

        assert order == ["h", "a", "c", "b"]
        assert lock.passivations == 2
        assert lock.readmissions == 2
        assert lock.culled_peak == 2
        assert not lock.waiters and not lock.culled and not lock.held
        assert not lock.wait_started

    def test_killed_mutex_holder_leaves_waiters_parked(self):
        # Crash semantics: a kill never releases locks, so the queued
        # waiter and the culled waiter stay blocked forever.  Killing
        # them too must drain every wait list and wait-start anchor.
        kernel = make_kernel(n_processors=2, context_switch_cost=0)
        lock = Mutex("m", admission=1)

        def holder():
            yield sc.MutexAcquire(lock)
            yield sc.Compute(units.ms(50))
            yield sc.MutexRelease(lock)

        def waiter():
            yield sc.Compute(10)
            yield sc.MutexAcquire(lock)
            yield sc.MutexRelease(lock)

        h = kernel.spawn(holder(), name="h")
        w1 = kernel.spawn(waiter(), name="w1")
        w2 = kernel.spawn(waiter(), name="w2")  # culled (admission=1)
        kernel.run_until_quiescent(
            done=lambda: len(lock.waiters) == 1 and len(lock.culled) == 1
        )
        assert kernel.kill(h.pid)
        assert lock.held  # nobody ever released it
        assert w1.state is ProcessState.BLOCKED
        assert w2.state is ProcessState.BLOCKED
        assert kernel.kill(w1.pid) and kernel.kill(w2.pid)
        assert not lock.waiters and not lock.culled
        assert not lock.wait_started

    def test_killed_admitted_waiter_turns_readmission_into_direct_grant(self):
        trace = TraceLog(categories={"lock.readmit"})
        kernel = make_kernel(n_processors=2, context_switch_cost=0, trace=trace)
        lock = Mutex("m", admission=1)

        def contender(delay):
            yield sc.Compute(delay)
            yield from mutex_cycle(lock, work=100)()

        kernel.spawn(mutex_cycle(lock, work=units.ms(2))(), name="h")
        admitted = kernel.spawn(contender(10), name="a")
        kernel.spawn(contender(20), name="b")  # culled
        kernel.run_until_quiescent(
            done=lambda: len(lock.waiters) == 1 and len(lock.culled) == 1
        )
        assert kernel.kill(admitted.pid)
        assert not lock.waiters
        kernel.run_until_quiescent()

        assert lock.acquisitions == 2  # holder + the culled waiter
        assert lock.readmissions == 1
        readmits = trace.records("lock.readmit")
        assert len(readmits) == 1
        assert readmits[0].data["direct"] is True
        assert not lock.held and not lock.culled and not lock.wait_started

    def test_mutex_telemetry_records_wait_latency(self):
        kernel = make_kernel(n_processors=2, context_switch_cost=0)
        lock = Mutex("m")

        def contender():
            yield sc.Compute(10)
            yield from mutex_cycle(lock, work=100)()

        kernel.spawn(mutex_cycle(lock, work=units.ms(1))(), name="h")
        kernel.spawn(contender(), name="c")
        kernel.run_until_quiescent()

        assert lock.acquisitions == 2
        assert lock.contended_acquisitions == 1
        assert lock.handoffs == 1
        assert lock.total_wait_time >= units.ms(1) - 100
        # Holder's uncontended acquire and the contender's depth-0 wait.
        assert lock.wait_hist == {0: 2}


class TestLockStats:
    def test_from_lock_detects_kind_and_snapshots(self):
        spin = SpinLock("s", admission=2)
        spin.note_wait_started(7, now=5)
        spin.note_acquired(7, now=30, contended=True)
        stats = LockStats.from_lock(spin)
        assert stats.kind == "spin"
        assert stats.name == "s"
        assert stats.admission == 2
        assert stats.acquisitions == 1
        assert stats.handoffs == 1
        assert stats.handoff_latency_mean == pytest.approx(25.0)
        assert stats.waiters_peak == 0  # depth 0: nobody was ahead of pid 7

        mutex = Mutex("m")
        assert LockStats.from_lock(mutex).kind == "mutex"

    def test_merged_combines_counters_and_histograms(self):
        a = LockStats(
            name="l", kind="spin", acquisitions=2, contended_acquisitions=1,
            holder_preempted_encounters=0, total_spin_time=50,
            total_hold_time=100, total_wait_time=30, handoffs=1,
            handoff_latency_max=30, waiters_hist={0: 1, 2: 1},
            passivations=1, readmissions=1, culled_peak=1, admission=1,
        )
        b = LockStats(
            name="l", kind="spin", acquisitions=3, contended_acquisitions=2,
            holder_preempted_encounters=1, total_spin_time=70,
            total_hold_time=200, total_wait_time=90, handoffs=2,
            handoff_latency_max=60, waiters_hist={2: 2, 4: 1},
            passivations=2, readmissions=2, culled_peak=3, admission=1,
        )
        merged = a.merged(b)
        assert merged.acquisitions == 5
        assert merged.contended_acquisitions == 3
        assert merged.waiters_hist == {0: 1, 2: 3, 4: 1}
        assert merged.handoff_latency_max == 60
        assert merged.culled_peak == 3
        assert merged.waiters_peak == 4
        assert merged.handoff_latency_mean == pytest.approx(120 / 3)


class TestSpinBarrierHotplug:
    def test_cpu_offline_mid_rendezvous_still_trips(self):
        # Two parties, two CPUs; one CPU goes away after the first
        # arrival, so the poller and the straggler time-slice the
        # surviving processor.  The barrier must still trip, and again
        # after the CPU returns.
        kernel = make_kernel(
            n_processors=2, quantum=units.ms(2), context_switch_cost=0
        )
        barrier = SpinBarrier(parties=2, name="sb")

        def party(delay):
            yield sc.Compute(delay)
            yield from spin_barrier_wait(barrier)
            yield sc.Compute(100)
            yield from spin_barrier_wait(barrier)

        kernel.spawn(party(10), name="fast")
        kernel.spawn(party(units.ms(4)), name="slow")
        kernel.engine.schedule_at(
            units.ms(1), lambda: kernel.cpu_offline(1), "test-offline"
        )
        kernel.engine.schedule_at(
            units.ms(8), lambda: kernel.cpu_online(1), "test-online"
        )
        kernel.run_until_quiescent()
        assert barrier.trips == 2
        assert barrier.arrived == 0
        # The early arrival genuinely burned poll time while sharing the
        # one remaining CPU with the straggler.
        assert barrier.poll_time > 0


class TestCondvarVsSuspension:
    def test_broadcast_races_a_safe_point_suspension(self):
        # One worker parks at a process-control safe point (WaitSignal is
        # exactly how Section 5 suspensions park); at the same time the
        # controller broadcasts a condvar the worker has NOT reached yet.
        # Condvars have no memory: the resumed worker must park on the
        # condvar and stay there until the *next* broadcast, and every
        # wait list must drain cleanly.
        kernel = make_kernel(n_processors=2, context_switch_cost=0)
        mutex = Mutex("m")
        cond = ConditionVariable(mutex, name="cv")
        progress = []

        def suspended_then_waits():
            yield sc.WaitSignal()  # the suspension safe point
            progress.append("resumed")
            yield sc.MutexAcquire(mutex)
            yield sc.CondWait(cond)
            progress.append("woken")
            yield sc.MutexRelease(mutex)

        def controller(target_pid):
            yield sc.Compute(10)
            # The race: broadcast into an empty waiter list, resume the
            # worker immediately after.
            yield sc.MutexAcquire(mutex)
            yield sc.CondBroadcast(cond)
            yield sc.MutexRelease(mutex)
            yield sc.SendSignal(target_pid)
            yield sc.Compute(units.ms(1))
            yield sc.MutexAcquire(mutex)
            yield sc.CondBroadcast(cond)
            yield sc.MutexRelease(mutex)

        worker = kernel.spawn(suspended_then_waits(), name="w")
        kernel.spawn(controller(worker.pid), name="ctl")
        kernel.run_until_quiescent(done=lambda: worker.suspended_by_control)
        assert worker.state is ProcessState.BLOCKED
        kernel.run_until_quiescent()
        assert progress == ["resumed", "woken"]
        assert cond.broadcasts == 2
        assert not cond.waiters
        assert not mutex.held and not mutex.waiters
        assert worker.state is ProcessState.TERMINATED


class TestAdmissionEnvPinning:
    """``REPRO_LOCK_ADMISSION`` semantics: ``None`` defers to the knob,
    an explicit ``0`` pins "unrestricted" so pinned baselines (corpus
    cases, experiment arms) cannot drift under a CI-wide environment."""

    def _run(self, scenario):
        trace = TraceLog(categories={"kernel.dispatch"})
        result = run_scenario(scenario, trace=trace)
        return result, dispatch_digest(trace)

    def _saturated(self, **overrides):
        return lock_saturation_scenario(
            threads=10, n_tasks=24, n_processors=16, **overrides
        )

    def test_env_knob_restricts_a_deferring_scenario(self, monkeypatch):
        monkeypatch.setenv("REPRO_LOCK_ADMISSION", "1")
        scenario = self._saturated().with_(lock_admission=None)
        result, _ = self._run(scenario)
        assert sum(s.passivations for s in result.locks.values()) > 0

    def test_explicit_zero_blocks_the_env_knob(self, monkeypatch):
        scenario = self._saturated()
        assert scenario.lock_admission == 0  # the pinned unrestricted arm
        _, baseline = self._run(scenario)
        monkeypatch.setenv("REPRO_LOCK_ADMISSION", "1")
        result, pinned = self._run(scenario)
        assert pinned == baseline
        assert sum(s.passivations for s in result.locks.values()) == 0

    def test_corpus_cases_pin_the_env_out(self):
        cases = {case.name: case for case in build_catalog()}
        assert cases["locks-collapse-unrestricted"].to_scenario().lock_admission == 0
        assert cases["locks-scenario-admission"].to_scenario().lock_admission == 2
