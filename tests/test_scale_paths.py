"""Tests for the 1024-CPU/10k-app scale machinery.

Covers the pieces the scale tier leans on: the fast (journal-replay)
server scan against the legacy full-table scan, the sparse dirty-set
control board, the kernel's idle-cpu set and per-app process index, the
weight-table CLI plumbing, and the timeline exporter's ``watchdog.*``
surfacing.
"""

import os

import pytest

from repro.core.allocation import parse_weights
from repro.core.server import ProcessControlServer
from repro.kernel.ipc import ControlBoard
from repro.sim import TraceLog, units
from repro.sim.export import dump_timeline, timeline_events
from repro.workloads import Scenario, run_scenario
from repro.workloads.scenario import AppSpec

from tests.conftest import make_kernel
from tests.test_core_server import cpu_bound


class TestFastScanEquivalence:
    """fast_scan=True (journal replay + incremental filler) must reproduce
    the legacy full-table scan's published targets, update times, and
    event counts exactly."""

    @staticmethod
    def _scenario(shards=1):
        from repro.apps.synthetic import UniformApp

        apps = [
            AppSpec(
                factory=lambda i=i: UniformApp(
                    app_id=f"app{i}",
                    n_tasks=6,
                    task_cost=units.ms(30),
                    seed=i,
                ),
                n_processes=2 + (i % 3),
                arrival=i * units.ms(40),
            )
            for i in range(6)
        ]
        return Scenario(
            apps=apps,
            control="centralized",
            shards=shards,
            server_interval=units.ms(60),
            poll_interval=units.ms(60),
        )

    @pytest.mark.parametrize("shards", [1, 3])
    def test_fast_and_legacy_scans_agree(self, shards, monkeypatch):
        fast = run_scenario(self._scenario(shards))
        monkeypatch.setattr(ProcessControlServer, "fast_scan", False, raising=False)
        legacy = run_scenario(self._scenario(shards))
        assert fast.events_fired == legacy.events_fired
        fast_updates = [
            (r.time, r.data["targets"])
            for r in fast.trace.records("server.update")
        ]
        legacy_updates = [
            (r.time, r.data["targets"])
            for r in legacy.trace.records("server.update")
        ]
        assert fast_updates == legacy_updates

    def test_fast_scan_is_the_default(self):
        kernel = make_kernel(n_processors=4)
        server = ProcessControlServer(kernel, interval=units.ms(100))
        assert server.fast_scan is True

    def test_fast_scan_under_sanitizer_runs_both_oracles(self, monkeypatch):
        # REPRO_SANITIZE arms the incremental-vs-batch check inside the
        # server and the census walk inside the kernel; a clean run is
        # the assertion.
        monkeypatch.setenv("REPRO_SANITIZE", "1")
        result = run_scenario(self._scenario(shards=3))
        assert result.events_fired > 0


class TestSparseBoard:
    def test_post_tracks_per_app_dirty_versions(self):
        board = ControlBoard()
        board.post({"a": 2, "b": 3}, now=10)
        assert board.read_app("a") == (2, 1)
        assert board.read_app("b") == (3, 1)
        # Re-posting an unchanged entry does not dirty it.
        board.post({"a": 2, "b": 4}, now=20)
        assert board.read_app("a") == (2, 1)
        assert board.read_app("b") == (4, 2)
        assert board.read_app("missing") == (None, 0)

    def test_post_delta_patches_in_place(self):
        board = ControlBoard()
        board.post({"a": 2, "b": 3, "c": 1}, now=10)
        board.post_delta({"b": 5}, removals=("c",), now=25)
        assert board.targets == {"a": 2, "b": 5}
        assert board.version == 2
        assert board.updated_at == 25
        assert board.read_app("a") == (2, 1)
        assert board.read_app("b") == (5, 2)
        assert board.read_app("c") == (None, 0)

    def test_post_delta_noop_change_stays_clean(self):
        board = ControlBoard()
        board.post({"a": 2}, now=10)
        board.post_delta({"a": 2}, removals=(), now=20)
        assert board.read_app("a") == (2, 1)
        assert board.version == 2  # the scan happened...
        assert board.targets == {"a": 2}  # ...but nothing moved

    def test_post_delta_rejects_negative_targets(self):
        board = ControlBoard()
        with pytest.raises(ValueError):
            board.post_delta({"a": -1}, removals=(), now=0)

    def test_post_delta_clears_crash_stamp(self):
        board = ControlBoard()
        board.post({"a": 1}, now=5)
        board.mark_crashed(9)
        board.post_delta({"a": 2}, removals=(), now=12)
        assert board.crashed_at is None


class TestKernelSparseStructures:
    def test_processes_of_app_matches_table_scan(self):
        kernel = make_kernel(n_processors=4)
        for i in range(3):
            kernel.spawn(
                cpu_bound(units.ms(50)),
                name=f"w{i}",
                app_id="app" if i < 2 else "other",
                controllable=True,
            )
        kernel.run_until_quiescent()
        for app_id in ("app", "other", "ghost"):
            indexed = kernel.processes_of_app(app_id)
            scanned = [
                p for p in kernel.processes.values() if p.app_id == app_id
            ]
            assert indexed == scanned

    def test_idle_cpu_set_tracks_processors(self):
        kernel = make_kernel(n_processors=4)
        assert kernel._idle_cpus == {0, 1, 2, 3}
        kernel.spawn(cpu_bound(units.ms(30)), name="w")
        kernel.run_until_quiescent()
        assert kernel._idle_cpus == {0, 1, 2, 3}

    def test_idle_cpu_set_respects_hotplug(self):
        kernel = make_kernel(n_processors=4)
        assert kernel.cpu_offline(2)
        assert kernel._idle_cpus == {0, 1, 3}
        assert kernel.cpu_online(2)
        assert kernel._idle_cpus == {0, 1, 2, 3}


class TestWeightsPlumbing:
    def test_parse_weights(self):
        assert parse_weights("a=2,b=0.5") == {"a": 2.0, "b": 0.5}
        assert parse_weights(" a = 2 , ") == {"a": 2.0}

    @pytest.mark.parametrize(
        "spec", ["", "a", "a=", "a=x", "a=0", "a=-1", "a=1,a=2"]
    )
    def test_parse_weights_rejects_malformed(self, spec):
        with pytest.raises(ValueError):
            parse_weights(spec)

    def test_env_weights_reach_the_control_plane(self, monkeypatch):
        from repro.apps.synthetic import UniformApp

        monkeypatch.setenv("REPRO_WEIGHTS", "app0=3")
        scenario = Scenario(
            apps=[
                AppSpec(
                    factory=lambda i=i: UniformApp(
                        app_id=f"app{i}", n_tasks=4, task_cost=units.ms(20)
                    ),
                    n_processes=2,
                )
                for i in range(2)
            ],
            control="centralized",
            server_interval=units.ms(50),
            poll_interval=units.ms(50),
        )
        result = run_scenario(scenario)
        updates = result.trace.records("server.update")
        assert updates  # the weighted server ran and published


class TestTimelineExport:
    @staticmethod
    def _trace():
        trace = TraceLog()
        trace.emit(0, "server.update", targets={"a": 2})
        trace.emit(5, "kernel.runnable", total=3, per_app={"a": 3})  # bulk
        trace.emit(10, "watchdog.suspect", shard=0)
        trace.emit(12, "watchdog.failover", shard=0, to=1)
        trace.emit(20, "plane.rebalance", moves=1)
        return trace

    def test_watchdog_events_always_surface(self):
        rows = timeline_events(self._trace())
        cats = [row["cat"] for row in rows]
        assert "watchdog.suspect" in cats
        assert "watchdog.failover" in cats
        assert "kernel.runnable" not in cats  # bulk series stays out
        lanes = {row["cat"]: row["lane"] for row in rows}
        assert lanes["watchdog.failover"] == "watchdog"
        assert lanes["plane.rebalance"] == "plane"
        assert [row["t"] for row in rows] == sorted(row["t"] for row in rows)

    def test_watchdog_surfaces_even_with_custom_categories(self):
        rows = timeline_events(self._trace(), categories={"server.update"})
        cats = {row["cat"] for row in rows}
        assert cats == {"server.update", "watchdog.suspect", "watchdog.failover"}

    def test_dump_timeline_round_trip(self, tmp_path):
        import json

        path = tmp_path / "timeline.jsonl"
        count = dump_timeline(self._trace(), path)
        lines = [
            json.loads(line)
            for line in path.read_text().splitlines()
            if line
        ]
        assert len(lines) == count == 4
        assert lines[1]["lane"] == "watchdog"
