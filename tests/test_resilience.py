"""Tests for the self-healing control plane (``repro.resilience``).

Units cover the heartbeat word, the crash epoch's TTL anchoring, the
watchdog timing derivations, policy hot-swap, and the demand policy's
EWMA/report-TTL knobs; integration runs drive the full escalation ladder
(restart -> failover -> degraded mode) through ``run_scenario`` with
shard-targeted crash faults, plus the env/CLI plumbing, the sharded chaos
campaign, and a pinned golden recovery report.
"""

import json
import os
from pathlib import Path

import pytest

from repro.apps.synthetic import UniformApp
from repro.core.allocation import (
    AllocationRequest,
    DemandPolicy,
    EquipartitionPolicy,
)
from repro.core.server import ProcessControlServer
from repro.faults import FaultPlan, parse_spec
from repro.faults.campaign import chaos_scenario, run_campaign, shard_injectors
from repro.kernel.ipc import ControlBoard
from repro.machine.config import MachineConfig
from repro.resilience import SUPERVISE_ENV_VAR, Watchdog, WatchdogConfig
from repro.sim import TraceLog, units
from repro.threads.control import ControlState
from repro.workloads import AppSpec, Scenario, run_scenario

from tests.conftest import make_kernel

GOLDEN_DIR = Path(__file__).parent / "golden"


def mini_scenario(seed: int = 0, shards: int = 1, **overrides) -> Scenario:
    """A ~50ms supervised-friendly workload: 2 apps x 3 workers on 4 CPUs.

    The 5ms quantum keeps worst-case dispatch delay well inside the
    watchdog's heartbeat deadline, so every suspect in these tests is a
    real failure, never scheduling noise.
    """

    def app(app_id: str, app_seed: int):
        return lambda: UniformApp(
            app_id=app_id,
            n_tasks=60,
            task_cost=units.ms(1),
            jitter=0.2,
            seed=app_seed,
        )

    scenario = Scenario(
        apps=[
            AppSpec(app("mini-a", seed), 3),
            AppSpec(app("mini-b", seed + 1), 3),
        ],
        control="centralized",
        machine=MachineConfig(n_processors=4, quantum=units.ms(5)),
        scheduler="decay",
        poll_interval=units.ms(5),
        server_interval=units.ms(5),
        seed=seed,
        max_time=units.seconds(2),
        shards=shards,
        supervise=True,
    )
    return scenario.with_(**overrides) if overrides else scenario


def flap_spec(shard=None, times=(8, 14, 20, 26, 32)) -> str:
    """Re-kill one shard (or the whole plane) every few milliseconds."""
    prefix = f"shard={shard}," if shard is not None else ""
    return ";".join(f"server-crash:{prefix}at={t}ms" for t in times)


class TestHeartbeatWord:
    def test_beat_stamps_time_and_advances_seq(self):
        board = ControlBoard()
        assert board.heartbeat_at is None
        assert board.heartbeat_seq == 0
        board.beat(100)
        board.beat(200)
        assert board.heartbeat_at == 200
        assert board.heartbeat_seq == 2

    def test_crash_epoch_set_and_cleared_by_post(self):
        board = ControlBoard()
        board.mark_crashed(500)
        assert board.crashed_at == 500
        # A post proves a live writer: the death notice is stale.
        board.post({"a": 2}, now=600)
        assert board.crashed_at is None


class TestCrashEpochAnchor:
    TTL = 1000

    def _control(self) -> ControlState:
        control = ControlState(4)
        control.note_fresh(2, now=0)
        return control

    def test_ttl_ages_from_crash_not_from_last_read(self):
        control = self._control()
        # The crash happened at 100; the first failed poll lands at 900.
        # Without the epoch the anchor would be this first failure and
        # the target would survive until 1900; with it, the countdown
        # started at the crash and expires at 1100.
        assert not control.note_failure(
            900, 10, 1000, self.TTL, crash_epoch=100
        )
        assert control.target == 2
        assert control.note_failure(
            1100, 10, 1000, self.TTL, crash_epoch=100
        )
        assert control.target is None
        assert control.target_expiries == 1

    def test_earlier_failure_streak_beats_the_epoch(self):
        # A wedged server failed us at 50, then died at 800: the death
        # notice must not reset the countdown that began at 50.
        control = self._control()
        assert not control.note_failure(50, 10, 1000, self.TTL)
        assert control.note_failure(
            1060, 10, 1000, self.TTL, crash_epoch=800
        )

    def test_no_epoch_keeps_the_legacy_anchor(self):
        control = self._control()
        control.last_fresh = 500
        assert not control.note_failure(1400, 10, 1000, self.TTL)
        assert control.note_failure(1501, 10, 1000, self.TTL)


class TestWatchdogConfig:
    def test_derivations_from_interval(self):
        config = WatchdogConfig().resolve(units.ms(10))
        assert config.check_period == units.ms(5)
        assert config.deadline == units.ms(30)
        assert config.restart_backoff == units.ms(5)
        assert config.reset_after == units.ms(120)

    def test_slack_widens_only_the_derived_deadline(self):
        derived = WatchdogConfig().resolve(units.ms(10), slack=units.ms(200))
        assert derived.deadline == units.ms(230)
        explicit = WatchdogConfig(deadline=units.ms(25)).resolve(
            units.ms(10), slack=units.ms(200)
        )
        assert explicit.deadline == units.ms(25)

    def test_watchdog_reads_dispatch_slack_from_the_machine(self):
        kernel = make_kernel(quantum=units.ms(100))
        server = ProcessControlServer(kernel, interval=units.ms(10))
        watchdog = Watchdog(kernel, server)
        assert watchdog.config.deadline == units.ms(30) + 2 * units.ms(100)

    def test_invalid_timings_rejected(self):
        with pytest.raises(ValueError):
            WatchdogConfig(check_period=0).resolve(units.ms(10))
        with pytest.raises(ValueError):
            WatchdogConfig(max_restarts=-1).resolve(units.ms(10))

    def test_double_start_rejected(self):
        kernel = make_kernel()
        server = ProcessControlServer(kernel, interval=units.ms(10))
        watchdog = Watchdog(kernel, server)
        watchdog.start()
        with pytest.raises(RuntimeError):
            watchdog.start()


class TestPolicyHotSwap:
    def test_set_policy_swaps_stamps_and_traces(self):
        trace = TraceLog(categories={"pc.policy_swap"})
        kernel = make_kernel(trace=trace)
        server = ProcessControlServer(kernel, interval=units.ms(50))
        old = server.policy
        previous = server.set_policy(DemandPolicy())
        assert previous is old
        assert server.policy.name == "demand"
        assert server.policy_swaps == 1
        assert server.policy_swapped_at == kernel.now
        records = trace.records("pc.policy_swap")
        assert len(records) == 1
        assert records[0].data["old"] == "equal"
        assert records[0].data["new"] == "demand"

    def test_swap_back_restores_the_original_instance(self):
        kernel = make_kernel()
        server = ProcessControlServer(kernel, interval=units.ms(50))
        original = server.policy
        saved = server.set_policy(EquipartitionPolicy())
        server.set_policy(saved)
        assert server.policy is original
        assert server.policy_swaps == 2


class TestDemandPolicyKnobs:
    def _request(self, demands, reported_at=None, now=0):
        return AllocationRequest(
            n_processors=8,
            uncontrolled_runnable=0,
            app_totals={"a": 6, "b": 6},
            demands=demands,
            demand_reported_at=reported_at or {},
            now=now,
        )

    def test_defaults_match_the_unsmoothed_policy(self):
        plain = DemandPolicy()
        knobbed = DemandPolicy(smoothing=1.0)
        request = self._request({"a": 2, "b": 6})
        assert plain.allocate(request) == knobbed.allocate(request)

    def test_ewma_damps_a_backlog_collapse(self):
        policy = DemandPolicy(smoothing=0.5)
        request1 = self._request({"a": 6, "b": 6})
        policy.allocate(request1)
        # a's backlog collapses 6 -> 0; the EWMA only halves it, so a
        # keeps ceil(3.0) = 3 grantable slots this round instead of 1.
        request2 = self._request({"a": 0, "b": 6})
        targets = policy.allocate(request2)
        assert targets["a"] == 3

    def test_report_ttl_reverts_stale_telemetry_to_full_cap(self):
        policy = DemandPolicy(smoothing=0.5, report_ttl=units.ms(10))
        fresh = self._request(
            {"a": 1, "b": 6}, reported_at={"a": 0, "b": 0}, now=0
        )
        assert policy.allocate(fresh)["a"] == 1
        # 20ms later nothing has re-reported: a's cap is back to its
        # process total, and its EWMA state is gone (no half-life decay
        # from a figure nobody stands behind).
        stale = self._request(
            {"a": 1, "b": 6},
            reported_at={"a": 0, "b": 0},
            now=units.ms(20),
        )
        assert policy.allocate(stale)["a"] == 4
        assert "a" not in policy._smoothed

    def test_tracker_prunes_vanished_apps(self):
        policy = DemandPolicy(smoothing=0.5)
        policy.allocate(self._request({"a": 3, "b": 3}))
        request = AllocationRequest(
            n_processors=8,
            uncontrolled_runnable=0,
            app_totals={"b": 6},
            demands={"b": 3},
        )
        policy.allocate(request)
        assert "a" not in policy._smoothed

    def test_knob_validation(self):
        with pytest.raises(ValueError):
            DemandPolicy(smoothing=0.0)
        with pytest.raises(ValueError):
            DemandPolicy(smoothing=1.5)
        with pytest.raises(ValueError):
            DemandPolicy(report_ttl=0)

    def test_describe_shows_the_knobs(self):
        assert DemandPolicy().describe() == "demand"
        assert (
            DemandPolicy(smoothing=0.25, report_ttl=units.ms(30)).describe()
            == "demand(ewma=0.25,report_ttl=30000us)"
        )


class TestShardFaultGrammar:
    def test_shard_field_parses_and_round_trips(self):
        spec = "server-crash:at=8ms,down=140ms,shard=1"
        (injector,) = parse_spec(spec)
        assert injector.shard == 1
        plan = FaultPlan.from_spec(spec, seed=0)
        assert FaultPlan.from_spec(plan.describe(), seed=0).describe() == (
            plan.describe()
        )
        assert "shard=1" in plan.describe()

    def test_shardless_spec_round_trips_without_the_field(self):
        plan = FaultPlan.from_spec("server-crash:at=8ms", seed=0)
        assert "shard" not in plan.describe()

    def test_shard_injectors_one_plan_per_shard(self):
        plans = shard_injectors(2)
        assert set(plans) == {"shard0-crash", "shard1-crash"}
        assert "shard=0" in plans["shard0-crash"]
        assert "shard=1" in plans["shard1-crash"]
        with pytest.raises(ValueError):
            shard_injectors(0)


class TestShardCrashIsolation:
    def test_other_regions_apps_keep_their_targets(self):
        # Unsupervised: shard 1 dies and stays dead.  mini-a (routed to
        # shard 0 by round-robin) must ride through with zero failed
        # polls; mini-b is re-routed to the survivor by the plane's
        # crash-path rebalance and still completes.
        result = run_scenario(
            mini_scenario(shards=2, supervise=False),
            sanitize="record",
            faults="server-crash:shard=1,at=12ms",
        )
        assert result.sanitizer_violations == 0
        assert result.apps["mini-a"].failed_polls == 0
        assert result.apps["mini-a"].target_expiries == 0
        for app in result.apps.values():
            assert app.finished_at is not None
        (crash,) = [
            details
            for _, kind, details in result.fault_events
            if kind == "server_crash"
        ]
        assert crash == {"applied": True, "shard": 1}


class TestWatchdogEscalation:
    def test_restart_recovers_a_crashed_shard(self):
        result = run_scenario(
            mini_scenario(shards=2),
            sanitize="record",
            faults="server-crash:shard=1,at=12ms",
        )
        counters = result.watchdog_counters
        assert counters["suspects"] == 1
        assert counters["restarts"] == 1
        assert counters["recoveries"] == 1
        assert counters["failovers"] == 0
        assert counters["degraded"] == 0
        assert result.sanitizer_violations == 0
        # The restart beat the stale-target TTL: nobody ever degraded.
        assert all(
            app.target_expiries == 0 for app in result.apps.values()
        )

    def test_flapping_shard_drains_the_budget_into_failover(self):
        result = run_scenario(
            mini_scenario(shards=2),
            sanitize="record",
            faults=flap_spec(shard=1),
        )
        counters = result.watchdog_counters
        assert counters["restarts"] == 3  # the full budget
        assert counters["failovers"] == 1
        assert counters["degraded"] == 0  # shard 0 survives
        assert result.sanitizer_violations == 0
        for app in result.apps.values():
            assert app.finished_at is not None
        kinds = [kind for _, kind, _ in result.watchdog_events]
        assert kinds.index("failover") > kinds.index("restart")

    def test_total_flap_ends_in_degraded_mode(self):
        result = run_scenario(
            mini_scenario(shards=1),
            sanitize="record",
            faults=flap_spec(),
        )
        counters = result.watchdog_counters
        assert counters["failovers"] == 1
        assert counters["degraded"] == 1
        assert result.sanitizer_violations == 0
        # Degraded is terminal: the last watchdog event, after which the
        # TTL released every app to full parallelism and the run finished.
        assert result.watchdog_events[-1][1] == "degraded"
        for app in result.apps.values():
            assert app.finished_at is not None

    def test_cold_telemetry_swaps_demand_policy_out_and_back(self):
        # policy_cold_ttl arms the telemetry guard: before any backlog
        # report exists the demand policy is hot-swapped to equipartition
        # (allocation must not follow telemetry nobody produces), and
        # swapped back once the applications start reporting.  The
        # sanitizer's policy-transition window keeps the swap clean.
        scenario = mini_scenario(shards=1).with_(
            policy="demand",
            watchdog=WatchdogConfig(policy_cold_ttl=units.ms(12)),
        )
        result = run_scenario(scenario, sanitize="record")
        counters = result.watchdog_counters
        assert counters["policy_swaps"] == 1
        assert counters["policy_restores"] == 1
        assert result.sanitizer_violations == 0
        swaps = [
            details
            for _, kind, details in result.watchdog_events
            if kind == "policy_swap"
        ]
        assert swaps[0]["reason"] == "telemetry-cold"
        assert swaps[0]["newest_report"] is None
        assert swaps[1]["reason"] == "telemetry-warm"

    def test_supervised_healthy_run_never_fires(self):
        result = run_scenario(mini_scenario(shards=2), sanitize="record")
        counters = result.watchdog_counters
        assert counters["ticks"] > 0
        assert counters["suspects"] == 0
        assert counters["restarts"] == 0


class TestPerShardConfig:
    def _plane_watchdog(self, config):
        kernel = make_kernel(n_processors=4, quantum=units.ms(5))
        from repro.core.plane import ControlPlane

        plane = ControlPlane(kernel, shards=2, interval=units.ms(10))
        return Watchdog(kernel, plane, config=config)

    def test_mapping_resolves_each_shard_with_defaults_for_the_rest(self):
        watchdog = self._plane_watchdog(
            {1: WatchdogConfig(deadline=units.ms(15), max_restarts=0)}
        )
        assert watchdog.config_for(0).deadline == units.ms(30) + 2 * units.ms(5)
        assert watchdog.config_for(0).max_restarts == 3
        assert watchdog.config_for(1).deadline == units.ms(15)
        assert watchdog.config_for(1).max_restarts == 0
        # Back-compat alias: the first shard's resolved config.
        assert watchdog.config is watchdog.config_for(0)

    def test_tick_runs_at_the_fastest_per_shard_cadence(self):
        watchdog = self._plane_watchdog(
            {
                0: WatchdogConfig(check_period=units.ms(2)),
                1: WatchdogConfig(check_period=units.ms(8)),
            }
        )
        assert watchdog.check_period == units.ms(2)
        assert watchdog.config_for(1).check_period == units.ms(8)

    def test_single_config_still_covers_every_shard(self):
        watchdog = self._plane_watchdog(WatchdogConfig(max_restarts=1))
        assert all(c.max_restarts == 1 for c in watchdog.configs)
        assert watchdog.check_period == watchdog.config.check_period

    def test_unknown_shard_index_rejected(self):
        with pytest.raises(ValueError, match="unknown shard"):
            self._plane_watchdog({7: WatchdogConfig()})

    def test_zero_budget_shard_fails_over_while_the_default_restarts(self):
        # Shard 1 carries max_restarts=0: its first crash goes straight
        # to failover.  Shard 0 keeps the default budget and recovers
        # from its own crash via restart.  One watchdog, two policies.
        result = run_scenario(
            mini_scenario(shards=2).with_(
                watchdog={1: WatchdogConfig(max_restarts=0)}
            ),
            sanitize="record",
            faults="server-crash:shard=0,at=12ms;server-crash:shard=1,at=12ms",
        )
        counters = result.watchdog_counters
        assert counters["failovers"] == 1
        assert counters["restarts"] == 1
        assert counters["degraded"] == 0
        assert result.sanitizer_violations == 0
        failovers = [
            details
            for _, kind, details in result.watchdog_events
            if kind == "failover"
        ]
        assert [f["shard"] for f in failovers] == [1]
        restarts = [
            details
            for _, kind, details in result.watchdog_events
            if kind == "restart"
        ]
        assert [r["shard"] for r in restarts] == [0]
        for app in result.apps.values():
            assert app.finished_at is not None

    def test_telemetry_guard_applies_only_where_configured(self):
        # Only shard 0 arms policy_cold_ttl: the demand policy on shard 1
        # must never be swapped, however cold its telemetry runs.
        scenario = mini_scenario(shards=2).with_(
            policy="demand",
            watchdog={0: WatchdogConfig(policy_cold_ttl=units.ms(12))},
        )
        result = run_scenario(scenario, sanitize="record")
        swaps = [
            details
            for _, kind, details in result.watchdog_events
            if kind == "policy_swap"
        ]
        assert swaps, "the armed shard should have swapped at least once"
        assert {s["shard"] for s in swaps} == {0}


class TestBareServerSupervision:
    def test_watchdog_restarts_and_writes_off_a_bare_server(self):
        # No ControlPlane at all: the watchdog supervises one server
        # directly.  Restart still works; exhausting the budget "fails
        # over" to nothing (there is no survivor to absorb the region)
        # and degrades immediately.
        from repro.kernel import syscalls as sc

        kernel = make_kernel(n_processors=2, quantum=units.ms(5))
        server = ProcessControlServer(kernel, interval=units.ms(5))
        server.start()
        watchdog = Watchdog(
            kernel, server, config=WatchdogConfig(max_restarts=1)
        )
        watchdog.start()

        def worker():
            remaining = units.ms(120)
            while remaining > 0:
                remaining -= units.ms(1)
                yield sc.Compute(units.ms(1))

        kernel.spawn(worker(), name="w", app_id="app", controllable=True)
        for at in (units.ms(10), units.ms(20)):
            kernel.engine.schedule_at(
                at, lambda: server.pid is not None and server.crash(),
                "test-crash",
            )
        kernel.run_until_quiescent(max_time=units.ms(200))
        assert watchdog.counters["restarts"] == 1
        assert watchdog.counters["failovers"] == 1
        assert watchdog.counters["degraded"] == 1
        assert watchdog.degraded


class TestSupervisePlumbing:
    def test_env_knob_arms_the_watchdog(self, monkeypatch):
        monkeypatch.setenv(SUPERVISE_ENV_VAR, "1")
        result = run_scenario(mini_scenario().with_(supervise=None))
        assert result.watchdog_counters is not None

    def test_explicit_false_pins_the_watchdog_off(self, monkeypatch):
        # The unsupervised experiment arm must stay unsupervised even
        # under a CI-wide REPRO_SUPERVISE=1.
        monkeypatch.setenv(SUPERVISE_ENV_VAR, "1")
        result = run_scenario(mini_scenario().with_(supervise=False))
        assert result.watchdog_counters is None

    def test_default_is_unsupervised(self, monkeypatch):
        monkeypatch.delenv(SUPERVISE_ENV_VAR, raising=False)
        result = run_scenario(mini_scenario().with_(supervise=None))
        assert result.watchdog_counters is None


class TestShardedChaosCampaign:
    def test_shard_targeted_campaign_is_clean(self):
        # The acceptance sweep: shard-targeted crash plans across 2
        # shards x 3 seeds -- zero violations, zero deadlocks.
        report = run_campaign(
            injectors=shard_injectors(2),
            schedulers=("fifo",),
            seeds=(0, 1, 2),
            shards=2,
        )
        report.assert_clean()
        crash_cells = [
            cell for cell in report.cells if cell.injector != "baseline"
        ]
        assert len(crash_cells) == 6
        assert all(cell.fault_events > 0 for cell in crash_cells)


class TestGoldenRecoveryReport:
    """Pinned recovery report: the sweep's text output is bit-stable.

    To regenerate after an intentional behaviour change::

        REPRO_UPDATE_GOLDEN=1 PYTHONPATH=src python -m pytest \
            tests/test_resilience.py -k golden

    and commit the diff (a golden update is a behaviour change, not a
    formality).
    """

    def test_recovery_report_matches_golden(self):
        from repro.experiments.recovery import RECOVERY_PATTERNS, run_recovery

        report = run_recovery(
            "quick",
            seeds=(0,),
            patterns={"shard-dead": RECOVERY_PATTERNS["shard-dead"]},
            sanitize="record",
        )
        report.assert_clean()
        text = report.format_report() + "\n"
        golden_path = GOLDEN_DIR / "recovery_shard_dead.txt"
        if os.environ.get("REPRO_UPDATE_GOLDEN"):
            GOLDEN_DIR.mkdir(exist_ok=True)
            golden_path.write_text(text)
        assert golden_path.exists(), (
            f"missing golden file {golden_path}; generate with "
            "REPRO_UPDATE_GOLDEN=1"
        )
        assert text == golden_path.read_text(), (
            "recovery report diverged from the committed golden copy; if "
            "intentional, regenerate with REPRO_UPDATE_GOLDEN=1 and commit"
        )
